"""Quantifying "small" leaks (Example 5's hand-wave, made precise).

    *The reason this program is workable in practice is that the amount
    of information obtained by the user is "small".*

Soundness is all-or-nothing; practice tolerates unsound mechanisms whose
leaks are tiny (passwords!).  This module quantifies the leak of an
arbitrary mechanism against a policy, over a finite domain with a
uniform prior, using the measures later literature standardised:

- :func:`shannon_leakage` — expected Shannon leakage: the average over
  policy classes of the entropy of the mechanism's output within the
  class.  (The output is a deterministic function of the input, so
  within a class this entropy *is* the mutual information between the
  denied information and the observation.)
- :func:`min_entropy_leakage` — Smith-style min-entropy leakage:
  ``log2`` of the factor by which one observation multiplies an
  attacker's chance of guessing the full input in one try.
- :func:`worst_class_leakage` — the max-partition bound
  (:func:`~repro.core.soundness.max_leaked_bits` under a new name, for
  comparison): what the *luckiest* query can reveal.

All three are 0 exactly when the mechanism is sound; they differ in how
they weigh rare-but-revealing outputs — the logon program is the
canonical spread (worst-case 1 bit, expected ≪ 1 bit).
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from .mechanism import ProtectionMechanism
from .policy import SecurityPolicy
from .soundness import max_leaked_bits


def _class_partition(mechanism: ProtectionMechanism,
                     policy: SecurityPolicy, domain) -> Dict:
    """{policy_value: {output: count}} over the domain."""
    partition: Dict = {}
    for point in domain:
        outputs = partition.setdefault(policy(*point), {})
        output = mechanism(*point)
        outputs[output] = outputs.get(output, 0) + 1
    return partition


def shannon_leakage(mechanism: ProtectionMechanism, policy: SecurityPolicy,
                    domain=None) -> float:
    """Expected Shannon leakage in bits (uniform prior).

    ``Σ_class p(class) · H(M's output within the class)`` — zero iff
    sound; at most ``log2(max class size)``.
    """
    domain = domain if domain is not None else mechanism.domain
    partition = _class_partition(mechanism, policy, domain)
    total = sum(sum(outputs.values()) for outputs in partition.values())
    leakage = 0.0
    for outputs in partition.values():
        class_size = sum(outputs.values())
        class_weight = class_size / total
        entropy = 0.0
        for count in outputs.values():
            probability = count / class_size
            entropy -= probability * math.log2(probability)
        leakage += class_weight * entropy
    return leakage


def min_entropy_leakage(mechanism: ProtectionMechanism,
                        policy: SecurityPolicy, domain=None) -> float:
    """Smith's min-entropy leakage in bits, *beyond the policy*.

    The attacker legitimately sees the policy value, so the prior is
    the one-guess vulnerability given the policy value alone
    (``#classes / |D|`` under a uniform prior); the posterior adds the
    mechanism's output (``#(class, output) cells / |D|``).  Leakage is
    ``log2(V_post / V_prior) = log2(#cells / #classes)`` — zero exactly
    when the mechanism is sound (outputs refine nothing).
    """
    domain = domain if domain is not None else mechanism.domain
    classes = set()
    cells = set()
    for point in domain:
        policy_value = policy(*point)
        classes.add(policy_value)
        cells.add((policy_value, mechanism(*point)))
    return math.log2(len(cells) / len(classes))


def worst_class_leakage(mechanism: ProtectionMechanism,
                        policy: SecurityPolicy, domain=None) -> float:
    """The max-partition bound: bits the luckiest observation reveals."""
    return max_leaked_bits(mechanism, policy, domain)


class LeakageProfile:
    """All three measures for one mechanism, for reports and benches."""

    def __init__(self, shannon: float, min_entropy: float,
                 worst_class: float) -> None:
        self.shannon = shannon
        self.min_entropy = min_entropy
        self.worst_class = worst_class

    @property
    def sound(self) -> bool:
        return self.worst_class == 0.0

    def __repr__(self) -> str:
        return (f"LeakageProfile(shannon={self.shannon:.4f}, "
                f"min_entropy={self.min_entropy:.4f}, "
                f"worst={self.worst_class:.4f})")


def leakage_profile(mechanism: ProtectionMechanism,
                    policy: SecurityPolicy,
                    domain=None) -> LeakageProfile:
    """Compute all three leakage measures at once."""
    return LeakageProfile(
        shannon_leakage(mechanism, policy, domain),
        min_entropy_leakage(mechanism, policy, domain),
        worst_class_leakage(mechanism, policy, domain),
    )
