"""Programs as total functions (Section 2, first definition).

    *Define Q to be a program provided Q : D1 x ... x Dk -> E where Q is
    a total function and Di is the range of the i-th input and E is the
    range of the output.*

A :class:`Program` wraps a Python callable together with its declared
input domains.  Used as a *view function* (the confinement question the
paper studies), the only thing that matters about ``Q`` is its
input/output behaviour — so any callable qualifies, including the
flowchart interpreter, the Minsky machine, and the file-system model.

Programs are memoised: soundness and completeness checks evaluate the
same inputs repeatedly, and the paper's programs are pure functions.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from .domains import ProductDomain
from .errors import ArityMismatchError, ProgramError


class Program:
    """A total function ``Q : D1 x ... x Dk -> E`` with declared domains.

    Parameters
    ----------
    fn:
        The underlying callable.  It must be total on the declared
        domain (the interpreters in this library guarantee totality via
        fuel bounds).
    domain:
        The :class:`~repro.core.domains.ProductDomain` the function is
        studied over.  Universal statements (soundness, completeness)
        are checked against this domain.
    name:
        Used in reports and reprs.
    """

    def __init__(self, fn: Callable, domain: ProductDomain,
                 name: str = "Q") -> None:
        if not callable(fn):
            raise ProgramError(f"program body must be callable, got {type(fn).__name__}")
        self._fn = fn
        self.domain = domain
        self.name = name
        self._cache: dict = {}

    @property
    def arity(self) -> int:
        return self.domain.arity

    def __call__(self, *inputs):
        if len(inputs) != self.arity:
            raise ArityMismatchError(
                f"program {self.name} takes {self.arity} inputs, got {len(inputs)}"
            )
        key = inputs
        try:
            return self._cache[key]
        except KeyError:
            pass
        except TypeError:
            # Unhashable inputs: evaluate without caching.
            return self._fn(*inputs)
        value = self._fn(*inputs)
        self._cache[key] = value
        return value

    def on(self, domain: ProductDomain, name: Optional[str] = None) -> "Program":
        """The same function restricted/extended to another domain."""
        if domain.arity != self.arity:
            raise ArityMismatchError(
                f"cannot re-domain {self.name}: arity {self.arity} vs {domain.arity}"
            )
        return Program(self._fn, domain, name or self.name)

    def table(self) -> Tuple[Tuple[Tuple, object], ...]:
        """The full graph of the function over its domain, as (input, output) pairs."""
        return tuple((point, self(*point)) for point in self.domain)

    def is_constant(self) -> bool:
        """True iff Q takes one value on its whole (finite) domain."""
        iterator = iter(self.domain)
        first = self(*next(iterator))
        return all(self(*point) == first for point in iterator)

    def __repr__(self) -> str:
        return f"Program({self.name}: {self.domain!r})"


def program(domain: ProductDomain, name: str = "Q") -> Callable[[Callable], Program]:
    """Decorator form: ``@program(domain)`` over a plain function.

    >>> from repro.core.domains import ProductDomain
    >>> @program(ProductDomain.integer_grid(0, 3, 2), name="add")
    ... def add(x1, x2):
    ...     return x1 + x2
    >>> add(1, 2)
    3
    """

    def wrap(fn: Callable) -> Program:
        return Program(fn, domain, name=name if name != "Q" else fn.__name__)

    return wrap
