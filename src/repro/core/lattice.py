"""The lattice of sound protection mechanisms (Section 2 remark).

    *Indeed, if we assume only a single violation notice, it can easily
    be shown that the sound protection mechanisms form a lattice.*

With a single notice Λ, a sound mechanism for (Q, I) over a finite
domain is determined by its acceptance set A(M) = {a : M(a) = Q(a)}, and
the sets that arise are exactly the unions of *good* policy classes —
classes on which Q is constant.  Hence the sound mechanisms form a
(finite, Boolean) lattice isomorphic to the powerset of good classes:

- bottom: the null mechanism (accept nothing — pull the plug),
- top: the maximal mechanism of Theorem 2 (accept every good class),
- join: the ∨ of Theorem 1 (union of acceptance sets),
- meet: intersection of acceptance sets.

This module materialises that lattice for small instances so the E19
bench can verify the lattice laws by enumeration.
"""

from __future__ import annotations

import itertools
from typing import FrozenSet, List, Tuple

from .mechanism import LAMBDA, ProtectionMechanism
from .policy import SecurityPolicy
from .program import Program


class SoundMechanismLattice:
    """All sound single-notice mechanisms for (Q, I) over a finite domain.

    Elements are represented canonically by frozensets of accepted
    *class keys* (policy values of good classes).  ``realise`` turns an
    element back into a concrete :class:`ProtectionMechanism`.
    """

    def __init__(self, program: Program, policy: SecurityPolicy,
                 domain=None) -> None:
        self.program = program
        self.policy = policy
        self.domain = domain if domain is not None else program.domain
        self._classes = policy.classes(self.domain)
        self._good_classes = {}
        for policy_value, members in self._classes.items():
            outputs = {program(*point) for point in members}
            if len(outputs) == 1:
                self._good_classes[policy_value] = (tuple(members), outputs.pop())

    @property
    def good_class_keys(self) -> Tuple:
        """Policy values of classes on which Q is constant."""
        return tuple(self._good_classes)

    def elements(self) -> List[FrozenSet]:
        """Every lattice element (exponential — intended for small cases)."""
        keys = self.good_class_keys
        result = []
        for size in range(len(keys) + 1):
            for subset in itertools.combinations(keys, size):
                result.append(frozenset(subset))
        return result

    def __len__(self) -> int:
        return 2 ** len(self._good_classes)

    @property
    def bottom(self) -> FrozenSet:
        return frozenset()

    @property
    def top(self) -> FrozenSet:
        return frozenset(self._good_classes)

    @staticmethod
    def join(first: FrozenSet, second: FrozenSet) -> FrozenSet:
        return first | second

    @staticmethod
    def meet(first: FrozenSet, second: FrozenSet) -> FrozenSet:
        return first & second

    @staticmethod
    def leq(first: FrozenSet, second: FrozenSet) -> bool:
        """first <= second in the completeness order."""
        return first <= second

    def realise(self, element: FrozenSet,
                name: str = "M-lattice") -> ProtectionMechanism:
        """Materialise a lattice element as a concrete mechanism."""
        unknown = element - set(self._good_classes)
        if unknown:
            raise ValueError(f"not good classes of this instance: {unknown!r}")
        table = {}
        for policy_value in element:
            members, output = self._good_classes[policy_value]
            for point in members:
                table[point] = output

        def lookup(*inputs):
            return table.get(inputs, LAMBDA)

        return ProtectionMechanism(lookup, self.program, name=name)

    def canonical(self, mechanism: ProtectionMechanism) -> FrozenSet:
        """Map a sound single-notice mechanism to its lattice element.

        Raises ``ValueError`` if the mechanism accepts part of a class
        (then it is not sound) or accepts a non-constant class (then it
        cannot equal Q on all of it).
        """
        accepted = set()
        for policy_value, members in self._classes.items():
            passes = [mechanism.passes(*point) for point in members]
            if any(passes) and not all(passes):
                raise ValueError(
                    f"mechanism splits policy class {policy_value!r}: not sound"
                )
            if all(passes):
                if policy_value not in self._good_classes:
                    raise ValueError(
                        f"mechanism accepts non-constant class {policy_value!r}"
                    )
                accepted.add(policy_value)
        return frozenset(accepted)
