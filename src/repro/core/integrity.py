"""The second security question: data security (Section 2).

    *If Q is used as an operator function, then the security question
    is: does the value of Q(d1, ..., dk) contain ALL the information
    that it should?  This second question has sometimes been called
    "data security" (Popek).  It concerns itself with whether or not
    information, such as a system table, has been illegally altered and
    hence lost.  We do, however, assert without proof that the same
    methods used here to study this case can also be used to study the
    second case.*

This module carries out that assertion.  Where confinement asks that a
mechanism reveal *no more* than the policy value (M factors **through**
I), data security asks that the output *retain* everything an integrity
policy designates (I factors **through** M):

    M preserves R  iff  there is G with  G(M(d1..dk)) = R(d1..dk).

On finite domains this is the mirror-image check: partition the domain
by M's outputs and require R constant on each class.  Everything else
dualises too — the trivial preserving mechanism is the *identity*
(where "pull the plug" was the trivial confining one), preservation is
*anti*-monotone in suppression, and the two questions meet in
:func:`check_guarded`: a mechanism that is simultaneously sound for a
confinement policy and preserving for an integrity policy.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from .errors import ArityMismatchError
from .mechanism import ProtectionMechanism
from .policy import SecurityPolicy
from .program import Program
from .soundness import SoundnessReport, check_soundness


class IntegrityPolicy(SecurityPolicy):
    """A designation of the information the output must *retain*.

    Formally identical to a :class:`SecurityPolicy` — a function
    ``R : D1 x ... x Dk -> 𝔍`` — but used in the opposite direction:
    ``R(a)`` is what a downstream consumer must still be able to
    recover from the mechanism's output.
    """

    def __repr__(self) -> str:
        return f"IntegrityPolicy({self.name}, arity={self.arity})"


def must_retain(fn: Callable, arity: int,
                name: str = "R") -> IntegrityPolicy:
    """Construct an integrity policy from a designation function."""
    return IntegrityPolicy(fn, arity, name=name)


def retain_inputs(*indices: int, arity: int) -> IntegrityPolicy:
    """The integrity analogue of allow(): the output must determine the
    listed (1-based) input positions.

    ``retain_inputs(2, arity=3)`` demands that d2 be recoverable from
    the output — e.g. "the system table must not be lost".
    """
    for index in indices:
        if not (1 <= index <= arity):
            raise ArityMismatchError(
                f"retain index {index} out of range 1..{arity}")
    label = ", ".join(str(index) for index in indices)
    return IntegrityPolicy(
        lambda *inputs: tuple(inputs[i - 1] for i in indices),
        arity, name=f"retain({label})")


class PreservationWitness:
    """A counterexample to preservation: two inputs with distinct
    designated information that M maps to the same output — the
    information is *lost*."""

    __slots__ = ("first", "second", "output", "first_designation",
                 "second_designation")

    def __init__(self, first: Tuple, second: Tuple, output,
                 first_designation, second_designation) -> None:
        self.first = first
        self.second = second
        self.output = output
        self.first_designation = first_designation
        self.second_designation = second_designation

    def __repr__(self) -> str:
        return (
            f"PreservationWitness(M{self.first!r} == M{self.second!r} == "
            f"{self.output!r}, but R values {self.first_designation!r} != "
            f"{self.second_designation!r} — information lost)"
        )


class PreservationReport:
    """Outcome of a finite-domain preservation check.

    When preserving, ``recovery`` is the reconstructed
    ``G : outputs -> 𝔍`` whose existence is the definition.
    """

    def __init__(self, preserving: bool,
                 witness: Optional[PreservationWitness],
                 recovery: Optional[dict], outputs_seen: int,
                 inputs_checked: int) -> None:
        self.preserving = preserving
        self.witness = witness
        self.recovery = recovery
        self.outputs_seen = outputs_seen
        self.inputs_checked = inputs_checked

    def __bool__(self) -> bool:
        return self.preserving

    def __repr__(self) -> str:
        verdict = ("preserving" if self.preserving
                   else f"LOSSY ({self.witness!r})")
        return (f"PreservationReport({verdict}, outputs={self.outputs_seen},"
                f" inputs={self.inputs_checked})")

    def recovery_function(self) -> Callable:
        """The recovery map G (only when preserving)."""
        if not self.preserving or self.recovery is None:
            raise ValueError("no recovery function: information is lost")
        table = dict(self.recovery)

        def recover(output):
            return table[output]

        return recover


def check_preservation(mechanism: ProtectionMechanism,
                       policy: IntegrityPolicy,
                       domain=None,
                       stop_at_first_witness: bool = True) -> PreservationReport:
    """Decide whether ``mechanism`` preserves ``policy`` over a domain.

    The mirror image of :func:`repro.core.soundness.check_soundness`:
    map each mechanism output to the designation first seen with it;
    any input producing the same output with a different designation
    witnesses information loss.  Violation notices are outputs like any
    other — a mechanism that collapses distinct system tables into one
    notice has lost them.
    """
    if policy.arity != mechanism.arity:
        raise ArityMismatchError(
            f"integrity-policy arity {policy.arity} != mechanism arity "
            f"{mechanism.arity}")
    domain = domain if domain is not None else mechanism.domain

    recovery: dict = {}
    representative: dict = {}
    witness: Optional[PreservationWitness] = None
    inputs_checked = 0

    for point in domain:
        inputs_checked += 1
        output = mechanism(*point)
        designation = policy(*point)
        if output not in recovery:
            recovery[output] = designation
            representative[output] = point
            continue
        if recovery[output] != designation and witness is None:
            witness = PreservationWitness(
                representative[output], point, output,
                recovery[output], designation)
            if stop_at_first_witness:
                break

    if witness is not None:
        return PreservationReport(False, witness, None, len(recovery),
                                  inputs_checked)
    return PreservationReport(True, None, recovery, len(recovery),
                              inputs_checked)


def preserves(mechanism: ProtectionMechanism, policy: IntegrityPolicy,
              domain=None) -> bool:
    """Convenience wrapper returning only the verdict."""
    return check_preservation(mechanism, policy, domain).preserving


class GuardReport:
    """Joint verdict for the two security questions on one mechanism."""

    def __init__(self, confinement: SoundnessReport,
                 integrity: PreservationReport) -> None:
        self.confinement = confinement
        self.integrity = integrity

    @property
    def guarded(self) -> bool:
        """Sound for the confinement policy AND preserving for the
        integrity policy."""
        return self.confinement.sound and self.integrity.preserving

    def __repr__(self) -> str:
        return (f"GuardReport(sound={self.confinement.sound}, "
                f"preserving={self.integrity.preserving})")


def check_guarded(mechanism: ProtectionMechanism,
                  confinement_policy: SecurityPolicy,
                  integrity_policy: IntegrityPolicy,
                  domain=None) -> GuardReport:
    """Check both Section 2 questions at once.

    The interesting tension: confinement rewards suppressing outputs,
    integrity punishes it.  ``check_guarded`` makes the trade explicit —
    e.g. the null mechanism is maximally confining and maximally lossy;
    the identity is the reverse; a *guarded* mechanism threads both,
    which is possible exactly when the designated information is itself
    allowed (R factors through I on the domain).
    """
    return GuardReport(
        check_soundness(mechanism, confinement_policy, domain),
        check_preservation(mechanism, integrity_policy, domain),
    )


def system_table_program(table_count: int, domain,
                         name: str = "Q-table-update") -> Program:
    """The paper's motivating data-security scenario, as a program.

    Popek's concern: "whether or not information, such as a system
    table, has been illegally altered and hence lost".  The program
    models an OS call that rewrites system state: inputs are
    ``table_count`` table entries followed by one user request; the
    output is the updated table tuple.  A buggy/hostile mechanism that
    suppresses or collapses outputs loses table state — which
    :func:`check_preservation` detects.
    """

    def update(*state):
        tables = state[:table_count]
        request = state[table_count]
        # The request may update table 1; others pass through.
        updated = (request,) + tuple(tables[1:])
        return updated + (request,)

    return Program(update, domain, name=name)
