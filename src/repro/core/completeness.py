"""The completeness order on protection mechanisms (Section 2).

    *M1 is as complete as M2 (M1 >= M2) provided, for all inputs a, if
    M2(a) = Q(a) then M1(a) = Q(a).  M1 is more complete than M2
    (M1 > M2) provided M1 >= M2 and, for some a, M1(a) = Q(a) and
    M2(a) != Q(a).*

Soundness alone is not enough — "pulling the plug" is sound and useless.
Completeness is the practically motivated order: a more complete
mechanism never gives a violation notice where a less complete one does
not.  Different violation notices are deliberately *not* distinguished.

On finite domains the order is just set inclusion of acceptance sets,
which is what :func:`compare` computes, together with witnesses in both
directions when the mechanisms are incomparable.
"""

from __future__ import annotations

import enum
from typing import Optional, Tuple

from .errors import ProgramError
from .mechanism import ProtectionMechanism


class Order(enum.Enum):
    """Possible relationships of two mechanisms in the completeness order."""

    EQUAL = "equal"                    # same acceptance set
    FIRST_MORE = "first-more"          # M1 > M2
    SECOND_MORE = "second-more"        # M2 > M1
    INCOMPARABLE = "incomparable"      # neither >= the other

    def __str__(self) -> str:
        return self.value


class Comparison:
    """Result of comparing two mechanisms over a finite domain.

    ``first_only`` / ``second_only`` are example inputs accepted by
    exactly one mechanism (None when no such input exists); acceptance
    counts give the magnitude of the gap — the "by roughly what factor"
    of the paper's qualitative claims.
    """

    def __init__(self, order: Order,
                 first_accepts: int, second_accepts: int, domain_size: int,
                 first_only: Optional[Tuple], second_only: Optional[Tuple]) -> None:
        self.order = order
        self.first_accepts = first_accepts
        self.second_accepts = second_accepts
        self.domain_size = domain_size
        self.first_only = first_only
        self.second_only = second_only

    def __repr__(self) -> str:
        return (
            f"Comparison({self.order}, |A(M1)|={self.first_accepts}, "
            f"|A(M2)|={self.second_accepts}, |D|={self.domain_size})"
        )

    @property
    def first_as_complete(self) -> bool:
        """M1 >= M2 (non-strict)."""
        return self.order in (Order.EQUAL, Order.FIRST_MORE)

    @property
    def second_as_complete(self) -> bool:
        """M2 >= M1 (non-strict)."""
        return self.order in (Order.EQUAL, Order.SECOND_MORE)


def compare(first: ProtectionMechanism, second: ProtectionMechanism,
            domain=None) -> Comparison:
    """Place two mechanisms for the same program in the completeness order.

    Walks the (finite) domain once, classifying each input by which
    mechanisms pass the program output through at it.
    """
    if first.program.domain != second.program.domain:
        raise ProgramError("compare(): mechanisms protect different domains")
    domain = domain if domain is not None else first.domain

    first_accepts = 0
    second_accepts = 0
    domain_size = 0
    first_only: Optional[Tuple] = None
    second_only: Optional[Tuple] = None

    for point in domain:
        domain_size += 1
        first_pass = first.passes(*point)
        second_pass = second.passes(*point)
        if first_pass:
            first_accepts += 1
        if second_pass:
            second_accepts += 1
        if first_pass and not second_pass and first_only is None:
            first_only = point
        if second_pass and not first_pass and second_only is None:
            second_only = point

    if first_only is None and second_only is None:
        order = Order.EQUAL
    elif second_only is None:
        order = Order.FIRST_MORE
    elif first_only is None:
        order = Order.SECOND_MORE
    else:
        order = Order.INCOMPARABLE
    return Comparison(order, first_accepts, second_accepts, domain_size,
                      first_only, second_only)


def as_complete(first: ProtectionMechanism, second: ProtectionMechanism,
                domain=None) -> bool:
    """``first >= second`` in the completeness order."""
    return compare(first, second, domain).first_as_complete


def more_complete(first: ProtectionMechanism, second: ProtectionMechanism,
                  domain=None) -> bool:
    """``first > second`` (strict)."""
    return compare(first, second, domain).order is Order.FIRST_MORE


def is_maximal_among(candidate: ProtectionMechanism,
                     others, domain=None) -> bool:
    """True iff ``candidate >= m`` for every mechanism in ``others``."""
    return all(as_complete(candidate, other, domain) for other in others)


def utility_row(mechanism: ProtectionMechanism, domain=None) -> dict:
    """A report row: acceptance count/rate for one mechanism.

    Shared by several benches so their tables have a uniform shape.
    """
    domain = domain if domain is not None else mechanism.domain
    accepted = sum(1 for point in domain if mechanism.passes(*point))
    total = len(domain)
    return {
        "mechanism": mechanism.name,
        "accepts": accepted,
        "domain": total,
        "acceptance_rate": accepted / total if total else 0.0,
    }
