"""Input domains for programs, policies, and mechanisms.

The paper treats a program as a total function ``Q : D1 x ... x Dk -> E``.
Soundness and completeness are universally quantified statements over
``D1 x ... x Dk``; on *finite* domains they are decidable by enumeration.
This module provides the finite-domain machinery used throughout:
:class:`Domain` (one input position) and :class:`ProductDomain`
(``D1 x ... x Dk``), both enumerable and sized.

Theorem 4 of the paper shows that over unbounded domains the maximal
sound mechanism cannot be effectively constructed; our checkers are
therefore exact on finite restrictions and sampled (via ``hypothesis``
in the test suite) beyond them.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, Sequence, Tuple

from .errors import DomainError


class Domain:
    """A finite, ordered set of values for one input position.

    Values must be hashable.  Order is preserved from construction so
    enumeration is deterministic (important for reproducible benches).
    """

    def __init__(self, values: Iterable, name: str = "D") -> None:
        seen = set()
        ordered = []
        for value in values:
            if value not in seen:
                seen.add(value)
                ordered.append(value)
        if not ordered:
            raise DomainError(f"domain {name!r} must be non-empty")
        self._values: Tuple = tuple(ordered)
        self._set = seen
        self.name = name

    @classmethod
    def integers(cls, low: int, high: int, name: str = "Z") -> "Domain":
        """The integer interval ``[low, high]`` (inclusive both ends)."""
        if low > high:
            raise DomainError(f"empty integer interval [{low}, {high}]")
        return cls(range(low, high + 1), name=name)

    @classmethod
    def booleans(cls, name: str = "B") -> "Domain":
        return cls((False, True), name=name)

    def __iter__(self) -> Iterator:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, value) -> bool:
        return value in self._set

    def __getitem__(self, index: int):
        return self._values[index]

    def __eq__(self, other) -> bool:
        if not isinstance(other, Domain):
            return NotImplemented
        return self._values == other._values

    def __hash__(self) -> int:
        return hash(self._values)

    def __repr__(self) -> str:
        preview = ", ".join(repr(v) for v in self._values[:4])
        if len(self._values) > 4:
            preview += ", ..."
        return f"Domain({self.name}: {{{preview}}}, size={len(self)})"

    @property
    def values(self) -> Tuple:
        return self._values


class ProductDomain:
    """The cartesian product ``D1 x ... x Dk`` of input domains.

    Iterating yields input tuples ``(d1, ..., dk)`` in row-major order.
    """

    def __init__(self, *components: Domain) -> None:
        if not components:
            raise DomainError("a product domain needs at least one component")
        for component in components:
            if not isinstance(component, Domain):
                raise DomainError(
                    f"product components must be Domain, got {type(component).__name__}"
                )
        self.components: Tuple[Domain, ...] = tuple(components)

    @classmethod
    def uniform(cls, component: Domain, arity: int) -> "ProductDomain":
        """``component ** arity`` — the same domain at every position."""
        if arity < 1:
            raise DomainError(f"arity must be >= 1, got {arity}")
        return cls(*([component] * arity))

    @classmethod
    def integer_grid(cls, low: int, high: int, arity: int) -> "ProductDomain":
        """``[low, high] ** arity`` — the workhorse for exhaustive checks."""
        return cls.uniform(Domain.integers(low, high), arity)

    @property
    def arity(self) -> int:
        return len(self.components)

    def __len__(self) -> int:
        size = 1
        for component in self.components:
            size *= len(component)
        return size

    def __iter__(self) -> Iterator[Tuple]:
        return itertools.product(*self.components)

    def __contains__(self, point) -> bool:
        if not isinstance(point, tuple) or len(point) != self.arity:
            return False
        return all(value in dom for value, dom in zip(point, self.components))

    def __eq__(self, other) -> bool:
        if not isinstance(other, ProductDomain):
            return NotImplemented
        return self.components == other.components

    def __repr__(self) -> str:
        names = " x ".join(c.name for c in self.components)
        return f"ProductDomain({names}, size={len(self)})"

    def validate(self, point: Sequence) -> Tuple:
        """Check ``point`` lies in the product; return it as a tuple."""
        point = tuple(point)
        if len(point) != self.arity:
            raise DomainError(
                f"expected {self.arity} inputs, got {len(point)}: {point!r}"
            )
        for position, (value, domain) in enumerate(zip(point, self.components), 1):
            if value not in domain:
                raise DomainError(
                    f"input {position} value {value!r} is outside domain {domain.name}"
                )
        return point

    def sample(self, count: int, seed: int = 0) -> Iterator[Tuple]:
        """Yield ``count`` pseudo-random points (with replacement).

        Deterministic for a given seed, so sampled soundness checks in
        benches are reproducible.
        """
        import random

        rng = random.Random(seed)
        for _ in range(count):
            yield tuple(dom[rng.randrange(len(dom))] for dom in self.components)
