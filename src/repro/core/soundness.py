"""Soundness: the bridge between policy and mechanism (Section 2).

    *M is sound provided there is a function M' : 𝔍 -> E ∪ F such that
    for all (d1, ..., dk), M(d1,...,dk) = M'(I(d1,...,dk)).*

Equivalently: **M factors through I** — M behaves as if it received not
the raw input but only the policy-filtered value.  On a finite domain
this is decidable: partition the domain into policy-equivalence classes
and check M is constant on each class.  That check, witness extraction
when it fails, and reconstruction of the factor ``M'`` when it holds,
live here.

Ruzzo's observation (Section 4) — that soundness of a given mechanism is
undecidable in general — is why these are *finite-domain* procedures;
the library demonstrates the undecidability flavour in
:mod:`repro.core.maximal` and experiment E17.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from .errors import ArityMismatchError
from .mechanism import ProtectionMechanism
from .policy import SecurityPolicy


class SoundnessWitness:
    """A counterexample to soundness: two policy-equal inputs M separates.

    ``I(first) == I(second) == policy_value`` but
    ``M(first) != M(second)`` — so M's output reveals information the
    policy filtered out.
    """

    __slots__ = ("first", "second", "policy_value", "first_output", "second_output")

    def __init__(self, first: Tuple, second: Tuple, policy_value,
                 first_output, second_output) -> None:
        self.first = first
        self.second = second
        self.policy_value = policy_value
        self.first_output = first_output
        self.second_output = second_output

    def __repr__(self) -> str:
        return (
            f"SoundnessWitness(I{self.first!r} == I{self.second!r} == "
            f"{self.policy_value!r}, but M{self.first!r} = {self.first_output!r} "
            f"!= M{self.second!r} = {self.second_output!r})"
        )

    def leaked_bits(self) -> float:
        """At least one bit: the user distinguishes two filtered-equal inputs."""
        return 1.0


class SoundnessReport:
    """Outcome of a finite-domain soundness check.

    Attributes
    ----------
    sound:
        Whether M factored through I on the checked domain.
    witness:
        A :class:`SoundnessWitness` when unsound, else None.
    factor:
        When sound, the reconstructed ``M' : 𝔍 -> E ∪ F`` as a dict
        ``{policy_value: output}`` — the object whose *existence* is the
        definition of soundness.
    classes_checked / inputs_checked:
        Work accounting (drives the Theorem 4 cost experiment).
    """

    def __init__(self, sound: bool, witness: Optional[SoundnessWitness],
                 factor: Optional[dict], classes_checked: int,
                 inputs_checked: int) -> None:
        self.sound = sound
        self.witness = witness
        self.factor = factor
        self.classes_checked = classes_checked
        self.inputs_checked = inputs_checked

    def __bool__(self) -> bool:
        return self.sound

    def __repr__(self) -> str:
        verdict = "sound" if self.sound else f"UNSOUND ({self.witness!r})"
        return (
            f"SoundnessReport({verdict}, classes={self.classes_checked}, "
            f"inputs={self.inputs_checked})"
        )

    def factor_function(self) -> Callable:
        """The factor M' as a callable (only when sound)."""
        if not self.sound or self.factor is None:
            raise ValueError("no factor function: the mechanism is not sound")
        factor = dict(self.factor)

        def m_prime(policy_value):
            return factor[policy_value]

        return m_prime


def check_soundness(mechanism: ProtectionMechanism, policy: SecurityPolicy,
                    domain=None, stop_at_first_witness: bool = True) -> SoundnessReport:
    """Decide soundness of ``mechanism`` for ``policy`` over a finite domain.

    Procedure: walk the domain once, mapping each policy value to the
    mechanism output first seen for it.  Any later input in the same
    policy class with a different output is a witness of unsoundness.

    With ``stop_at_first_witness=False`` the walk completes regardless,
    so ``inputs_checked`` equals the domain size (useful for cost
    accounting in benches).
    """
    if policy.arity != mechanism.arity:
        raise ArityMismatchError(
            f"policy arity {policy.arity} != mechanism arity {mechanism.arity}"
        )
    domain = domain if domain is not None else mechanism.domain

    factor: dict = {}
    representative: dict = {}
    witness: Optional[SoundnessWitness] = None
    inputs_checked = 0

    for point in domain:
        inputs_checked += 1
        policy_value = policy(*point)
        output = mechanism(*point)
        if policy_value not in factor:
            factor[policy_value] = output
            representative[policy_value] = point
            continue
        if factor[policy_value] != output and witness is None:
            witness = SoundnessWitness(
                representative[policy_value], point, policy_value,
                factor[policy_value], output,
            )
            if stop_at_first_witness:
                break

    if witness is not None:
        return SoundnessReport(False, witness, None, len(factor), inputs_checked)
    return SoundnessReport(True, None, factor, len(factor), inputs_checked)


def is_sound(mechanism: ProtectionMechanism, policy: SecurityPolicy,
             domain=None) -> bool:
    """Convenience wrapper returning only the verdict."""
    return check_soundness(mechanism, policy, domain).sound


def check_soundness_with_accepts(mechanism: ProtectionMechanism,
                                 policy: SecurityPolicy,
                                 domain=None) -> Tuple[SoundnessReport, int]:
    """Soundness verdict *and* acceptance count from a single domain walk.

    The Theorem 3/3′ sweeps need both the factorization verdict and the
    number of inputs where M passes Q's output through (the mechanism's
    position in the completeness order).  Both derive from the same
    per-point mechanism output, so this walks the domain exactly once
    and evaluates each point exactly once — the sweep harness and the
    parallel runner build on it instead of running ``check_soundness``
    and a separate ``passes`` loop.

    The walk never stops early (the acceptance count needs every
    point), so ``inputs_checked`` always equals the domain size, and
    the returned witness — when one exists — is the first in domain
    order, as with ``check_soundness(stop_at_first_witness=False)``.
    """
    from .mechanism import is_violation

    if policy.arity != mechanism.arity:
        raise ArityMismatchError(
            f"policy arity {policy.arity} != mechanism arity {mechanism.arity}"
        )
    domain = domain if domain is not None else mechanism.domain

    factor: dict = {}
    representative: dict = {}
    witness: Optional[SoundnessWitness] = None
    inputs_checked = 0
    accepts = 0

    for point in domain:
        inputs_checked += 1
        policy_value = policy(*point)
        output = mechanism(*point)
        if not is_violation(output):
            accepts += 1
        if policy_value not in factor:
            factor[policy_value] = output
            representative[policy_value] = point
        elif factor[policy_value] != output and witness is None:
            witness = SoundnessWitness(
                representative[policy_value], point, policy_value,
                factor[policy_value], output,
            )

    if witness is not None:
        return (SoundnessReport(False, witness, None, len(factor),
                                inputs_checked), accepts)
    return (SoundnessReport(True, None, factor, len(factor),
                            inputs_checked), accepts)


def distinguishable_pairs(mechanism: ProtectionMechanism,
                          policy: SecurityPolicy, domain=None,
                          limit: Optional[int] = None):
    """Yield *all* soundness witnesses (up to ``limit``).

    Each yielded pair is one concrete leak: the user, seeing only M's
    output, can tell apart two inputs the policy says must look alike.
    The number of such pairs is a crude leak-surface measure used by the
    covert-channel experiments.
    """
    domain = domain if domain is not None else mechanism.domain
    by_class: dict = {}
    found = 0
    for point in domain:
        by_class.setdefault(policy(*point), []).append(point)
    for policy_value, points in by_class.items():
        outputs = [(point, mechanism(*point)) for point in points]
        for i, (first, first_output) in enumerate(outputs):
            for second, second_output in outputs[i + 1:]:
                if first_output != second_output:
                    yield SoundnessWitness(first, second, policy_value,
                                           first_output, second_output)
                    found += 1
                    if limit is not None and found >= limit:
                        return


def leak_partition_sizes(mechanism: ProtectionMechanism,
                         policy: SecurityPolicy, domain=None) -> dict:
    """For each policy class: how many distinct M-outputs it splits into.

    A sound mechanism maps every class to exactly 1 output.  The
    maximum over classes, log2'd, bounds the bits a single query leaks
    beyond the policy — the quantity Example 5 calls "small" for the
    logon program.
    """
    domain = domain if domain is not None else mechanism.domain
    by_class: dict = {}
    for point in domain:
        by_class.setdefault(policy(*point), set()).add(mechanism(*point))
    return {policy_value: len(outputs) for policy_value, outputs in by_class.items()}


def max_leaked_bits(mechanism: ProtectionMechanism, policy: SecurityPolicy,
                    domain=None) -> float:
    """log2 of the worst-case class split — 0.0 iff sound."""
    import math

    sizes = leak_partition_sizes(mechanism, policy, domain)
    worst = max(sizes.values()) if sizes else 1
    return math.log2(worst)
