"""Enforcing history-dependent policies (Section 2's database remark).

    *We also include policies (such as might be found in a data base
    system) where what a user is permitted to view is dependent upon a
    history of the user's previous queries.*

:class:`~repro.core.policy.HistoryPolicy` gave such policies a
denotation: a session of n queries is one big program, and the policy
filters the whole query sequence.  This module supplies the matching
*mechanism* side:

- :class:`SessionMechanism` — a stateful gatekeeper: per query it
  either answers or issues a notice, and advances its state;
- :func:`unroll` — flatten a stateful mechanism over length-n sessions
  into an ordinary :class:`~repro.core.mechanism.ProtectionMechanism`
  on the session program, so the *stateless* soundness machinery
  decides whether the stateful gatekeeper enforces the history policy;
- :func:`budget_gatekeeper` — the canonical instance: answer the first
  k queries through a per-query mechanism, refuse the rest.

The subtlety the framework exposes: a session mechanism's *state
updates* are part of its behaviour.  A gatekeeper whose remaining
budget depends on secret data leaks through later answers — unrolling
makes that an ordinary soundness failure.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from .domains import ProductDomain
from .errors import ArityMismatchError
from .mechanism import ProtectionMechanism, ViolationNotice
from .program import Program


class SessionMechanism:
    """A stateful per-query gatekeeper.

    ``step(state, inputs) -> (output, next_state)`` where ``output`` is
    a query answer or a :class:`ViolationNotice`.
    """

    def __init__(self, initial_state, step: Callable, arity: int,
                 name: str = "M-session") -> None:
        self.initial_state = initial_state
        self._step = step
        self.arity = arity
        self.name = name

    def answer_query(self, state, inputs: Tuple):
        """One query: returns ``(answer_or_notice, next_state)``."""
        if len(inputs) != self.arity:
            raise ArityMismatchError(
                f"session mechanism {self.name} takes {self.arity} inputs "
                f"per query, got {len(inputs)}")
        return self._step(state, inputs)

    def __repr__(self) -> str:
        return f"SessionMechanism({self.name}, arity={self.arity})"


def session_program(per_query: Program, length: int) -> Program:
    """The n-query session as one program: the tuple of per-query answers."""
    arity = per_query.arity

    def run(*flat_inputs):
        outputs = []
        for query_index in range(length):
            chunk = flat_inputs[query_index * arity:(query_index + 1) * arity]
            outputs.append(per_query(*chunk))
        return tuple(outputs)

    domain = ProductDomain(*(per_query.domain.components * length))
    return Program(run, domain, name=f"{per_query.name}^{length}")


def unroll(mechanism: SessionMechanism, per_query: Program,
           length: int) -> ProtectionMechanism:
    """Flatten a stateful gatekeeper over length-n sessions.

    The result protects :func:`session_program`'s program; its output is
    the tuple of per-query outputs (answers and notices mixed).  The
    Section 2 contract is kept by treating any session containing a
    notice as a violation-notice output whose message is the rendered
    tuple — distinct notice patterns stay distinguishable, so leaks
    through *which queries got refused* are visible to the checker.
    """
    protected = session_program(per_query, length)
    arity = per_query.arity

    def run_session(*flat_inputs):
        state = mechanism.initial_state
        outputs = []
        any_notice = False
        for query_index in range(length):
            chunk = flat_inputs[query_index * arity:(query_index + 1) * arity]
            output, state = mechanism.answer_query(state, tuple(chunk))
            if isinstance(output, ViolationNotice):
                any_notice = True
            outputs.append(output)
        if any_notice:
            rendered = ", ".join(str(output) for output in outputs)
            return ViolationNotice(f"({rendered})")
        return tuple(outputs)

    return ProtectionMechanism(run_session, protected,
                               name=f"{mechanism.name}^{length}")


def budget_gatekeeper(per_query_mechanism: ProtectionMechanism,
                      budget: int,
                      name: Optional[str] = None) -> SessionMechanism:
    """Answer the first ``budget`` queries via the per-query mechanism,
    refuse everything after — the enforcement of
    :class:`HistoryPolicy`-style query budgets.

    The state (queries used so far) advances on *every* query, answered
    or refused, so the budget consumption never depends on query
    contents — keeping the gatekeeper's refusal pattern a function of
    query count alone.
    """

    def step(queries_so_far, inputs):
        if queries_so_far < budget:
            return (per_query_mechanism(*inputs), queries_so_far + 1)
        return (ViolationNotice("budget exhausted"), queries_so_far + 1)

    return SessionMechanism(
        0, step, per_query_mechanism.arity,
        name=name or f"M-budget[{budget}]({per_query_mechanism.name})")


def content_triggered_gatekeeper(per_query_mechanism: ProtectionMechanism,
                                 trip: Callable[..., bool],
                                 name: str = "M-tripwire") -> SessionMechanism:
    """A *deliberately risky* gatekeeper: refuse everything after any
    query satisfies ``trip(*inputs)``.

    If ``trip`` reads information the policy denies, the refusal
    pattern of later queries encodes it — a stateful negative-inference
    channel that :func:`unroll` + soundness checking exposes.  Provided
    as the canonical counterexample (tested, and used in bench E25).
    """

    def step(tripped, inputs):
        if tripped:
            return (ViolationNotice("session locked"), True)
        return (per_query_mechanism(*inputs), bool(trip(*inputs)))

    return SessionMechanism(False, step, per_query_mechanism.arity,
                            name=name)
