"""The Observability Postulate, as code.

    *The output value Q(d1, ..., dk) must be assumed to encode all
    information available about the input value (d1, ..., dk).*

Section 2 of the paper shows that "forgotten" observables — running
time, page movement, resource usage — are exactly the covert channels
that break otherwise-plausible soundness arguments.  The framework
therefore lets a program declare *what its output is*: just the computed
value, or the value together with observable attributes such as the
number of steps executed.

Two output models from Section 3 are built in:

- :data:`VALUE_ONLY` — the range of ``Q`` is ``Z``; running time is not
  observable by the user.
- :data:`VALUE_AND_TIME` — the range of ``Q`` is ``Z x Z``: the computed
  value together with the number of steps executed ("we will be encoding
  the running time of our flowcharts").

:class:`Observation` is the concrete output record; extra observables
(e.g. page-fault counts for the password attack of Section 2) ride in
``attributes``.
"""

from __future__ import annotations

from typing import Mapping, Optional, Tuple


class OutputModel:
    """Declares which attributes of an execution are user-observable."""

    def __init__(self, name: str, time_observable: bool,
                 extra_observables: Tuple[str, ...] = ()) -> None:
        self.name = name
        self.time_observable = time_observable
        self.extra_observables = tuple(extra_observables)

    def __repr__(self) -> str:
        extras = f", extras={list(self.extra_observables)}" if self.extra_observables else ""
        return f"OutputModel({self.name}, time_observable={self.time_observable}{extras})"

    def __eq__(self, other) -> bool:
        if not isinstance(other, OutputModel):
            return NotImplemented
        return (self.name == other.name
                and self.time_observable == other.time_observable
                and self.extra_observables == other.extra_observables)

    def __hash__(self) -> int:
        return hash((self.name, self.time_observable, self.extra_observables))

    def project(self, observation: "Observation"):
        """Reduce a full execution record to what this model lets a user see.

        The projection *is* the output of ``Q`` under this model: two
        executions are user-distinguishable iff their projections differ.
        """
        visible = [observation.value]
        if self.time_observable:
            visible.append(observation.steps)
        for attribute in self.extra_observables:
            visible.append(observation.attributes.get(attribute))
        if len(visible) == 1:
            return visible[0]
        return tuple(visible)


#: Range of Q is Z: only the computed value is observable.
VALUE_ONLY = OutputModel("value-only", time_observable=False)

#: Range of Q is Z x Z: (value, number of steps executed).
VALUE_AND_TIME = OutputModel("value-and-time", time_observable=True)


def with_extras(*extra_observables: str, time_observable: bool = True) -> OutputModel:
    """An output model that also exposes named attributes (e.g. page faults)."""
    label = "+".join(("time",) + extra_observables if time_observable else extra_observables)
    return OutputModel(f"value+{label}", time_observable, extra_observables)


class Observation:
    """Everything a single execution produced, before projection.

    ``value`` is the computed output; ``steps`` the number of steps
    executed; ``attributes`` any further measurable side effects
    (page faults, tape-head movement, ...).
    """

    __slots__ = ("value", "steps", "attributes")

    def __init__(self, value, steps: int = 0,
                 attributes: Optional[Mapping[str, object]] = None) -> None:
        self.value = value
        self.steps = steps
        self.attributes = dict(attributes) if attributes else {}

    def __repr__(self) -> str:
        extra = f", attributes={self.attributes}" if self.attributes else ""
        return f"Observation(value={self.value!r}, steps={self.steps}{extra})"

    def __eq__(self, other) -> bool:
        if not isinstance(other, Observation):
            return NotImplemented
        return (self.value == other.value
                and self.steps == other.steps
                and self.attributes == other.attributes)

    def __hash__(self) -> int:
        return hash((self.value, self.steps, tuple(sorted(self.attributes.items()))))
