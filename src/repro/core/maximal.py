"""The maximal sound protection mechanism (Theorems 2 and 4).

Theorem 2: for any program Q and policy I there *exists* a maximal sound
mechanism — the join of all sound mechanisms.  Theorem 4: there is *no
effective procedure* that constructs it from (Q, I); indeed (Ruzzo) the
maximal mechanism need not even be recursive.

On a **finite** domain, however, the maximal mechanism is directly
constructible, and its construction makes Theorem 4 vivid:

    For each policy-equivalence class C of the domain, output Q(a) on C
    iff Q is constant on C; otherwise output Λ on C.

Correctness: a sound mechanism is constant on each class, so on a class
where Q is non-constant it can never equal Q everywhere — Λ everywhere
on that class dominates.  On a class where Q *is* constant, passing that
constant through is sound and accepts the whole class.  Hence the
construction pointwise dominates every sound mechanism.

The construction must examine **every** point of every class to certify
constancy — this is exactly the ``∀x. A(x) = 0`` question of the
Theorem 4 proof, which is why no finite procedure settles it over an
unbounded domain.  :func:`maximality_cost` exposes the work so
experiment E17 can chart its growth, and :func:`theorem4_family`
packages the paper's reduction program family.
"""

from __future__ import annotations

from typing import Callable, Optional

from .mechanism import (LAMBDA, ProtectionMechanism, ViolationNotice,
                        mechanism_from_table)
from .policy import SecurityPolicy
from .program import Program


class MaximalConstruction:
    """The finite-domain maximal mechanism plus its cost accounting.

    Attributes
    ----------
    mechanism:
        The maximal sound mechanism, materialised as a table.
    classes:
        Number of policy-equivalence classes examined.
    constant_classes:
        Classes on which Q was constant (these are accepted).
    evaluations:
        Total program evaluations performed — the "work" whose
        unboundedness in the general case is Theorem 4's content.
    """

    def __init__(self, mechanism: ProtectionMechanism, classes: int,
                 constant_classes: int, evaluations: int) -> None:
        self.mechanism = mechanism
        self.classes = classes
        self.constant_classes = constant_classes
        self.evaluations = evaluations

    def __repr__(self) -> str:
        return (
            f"MaximalConstruction(classes={self.classes}, "
            f"constant={self.constant_classes}, evaluations={self.evaluations})"
        )


def maximal_mechanism(program: Program, policy: SecurityPolicy,
                      domain=None,
                      notice: ViolationNotice = LAMBDA) -> MaximalConstruction:
    """Construct the maximal sound mechanism for (Q, I) on a finite domain.

    Returns a :class:`MaximalConstruction`; its ``mechanism`` satisfies,
    for every sound mechanism M' on the same domain, ``Mmax >= M'``
    (verified exhaustively in the test suite, Theorem 2's claim).
    """
    domain = domain if domain is not None else program.domain
    classes = policy.classes(domain)

    table: dict = {}
    constant_classes = 0
    evaluations = 0
    for members in classes.values():
        outputs = []
        for point in members:
            outputs.append(program(*point))
            evaluations += 1
        first = outputs[0]
        if all(output == first for output in outputs[1:]):
            constant_classes += 1
            for point in members:
                table[point] = first
        # Non-constant class: leave out of the table -> Λ.

    mechanism = mechanism_from_table(program, table, name="M-max")
    # Replace the default Λ with the requested notice if different.
    if notice != LAMBDA:
        inner = mechanism

        def with_notice(*inputs):
            value = inner(*inputs)
            return notice if isinstance(value, ViolationNotice) else value

        mechanism = ProtectionMechanism(with_notice, program, name="M-max")
    return MaximalConstruction(mechanism, len(classes), constant_classes,
                               evaluations)


def maximality_cost(program: Program, policy: SecurityPolicy,
                    domain=None) -> int:
    """Program evaluations needed by the maximal construction.

    Grows linearly with the domain restriction — with no finite bound as
    the domain grows, which is the effective-procedure obstruction of
    Theorem 4 seen from the finite side.
    """
    return maximal_mechanism(program, policy, domain).evaluations


def theorem4_family(arbitrary_total_function: Callable[[int], int],
                    domain) -> Program:
    """The program family from the proof of Theorem 4.

    The proof considers a recursive program that, on input x, runs a
    flowchart fragment P assigning ``r := A(x)`` (A an arbitrary total
    function with A(0) = 0) and outputs r.  Under ``allow()`` a maximal
    sound mechanism M must be constant, and::

        M(0) = 0  iff  ∀x. A(x) = 0

    so effectively constructing M would decide a Π1-complete question.
    This helper builds Q for a given A; the E17 bench instantiates A
    with step-bounded halting predicates to chart how certifying
    ``M(0) = 0`` requires examining unboundedly many inputs.
    """

    def body(x: int) -> int:
        return arbitrary_total_function(x)

    return Program(body, domain, name="Q-thm4")


def decide_theorem4_output_at_zero(construction: MaximalConstruction,
                                   zero_point=(0,)) -> bool:
    """Did the (finite-domain) maximal mechanism put M(0) = 0?

    True iff A was identically 0 on the examined domain — the (*)
    equivalence of the Theorem 4 proof, restricted to the finite
    window.  Extending the window can flip this verdict, which is the
    whole point: no finite amount of checking settles it.
    """
    value = construction.mechanism(*zero_point)
    return value == 0


def certify_maximal(candidate: ProtectionMechanism, program: Program,
                    policy: SecurityPolicy, domain=None) -> bool:
    """Check a candidate equals the maximal mechanism on a finite domain.

    Equality is extensional, identifying all violation notices — the
    same convention the completeness order uses.
    """
    domain = domain if domain is not None else program.domain
    construction = maximal_mechanism(program, policy, domain)
    maximal = construction.mechanism
    for point in domain:
        candidate_output = candidate(*point)
        maximal_output = maximal(*point)
        candidate_violates = isinstance(candidate_output, ViolationNotice)
        maximal_violates = isinstance(maximal_output, ViolationNotice)
        if candidate_violates != maximal_violates:
            return False
        if not candidate_violates and candidate_output != maximal_output:
            return False
    return True
