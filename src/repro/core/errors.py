"""Exception hierarchy for the Jones & Lipton reproduction.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class DomainError(ReproError):
    """An input value lies outside a declared domain, or a domain is misused."""


class ProgramError(ReproError):
    """A program object is malformed or was applied to bad inputs."""


class ArityMismatchError(ProgramError):
    """A program, policy, or mechanism was applied with the wrong arity."""


class FlowchartError(ReproError):
    """A flowchart violates the wellformedness rules of Section 3."""


class ExecutionError(ReproError):
    """Runtime failure while executing a flowchart or machine program."""


class FuelExhaustedError(ExecutionError):
    """Execution exceeded its step budget.

    The paper's programs are total functions; a fuel bound turns our
    interpreters into total functions too.  Hitting the bound signals
    either a diverging program or a budget that is too small.
    """

    def __init__(self, fuel: int, message: str = "") -> None:
        detail = message or f"execution exceeded the fuel budget of {fuel} steps"
        super().__init__(detail)
        self.fuel = fuel


class ValueCapExceededError(ExecutionError):
    """Execution produced a value wider than the bit-length budget.

    Fuel bounds running *time*; the value cap bounds running *space*: a
    program like ``x := x * x`` in a loop doubles its bit-length every
    step and would exhaust memory long before any realistic fuel budget
    — a crash, and therefore (Observability Postulate) an undeclared
    observable.  The cap makes magnitude blow-up a *declared* fault:
    ``cap`` is the maximum permitted bit-length of any assigned value.
    """

    def __init__(self, cap: int, message: str = "") -> None:
        detail = message or (
            f"execution exceeded the value-magnitude cap of {cap} bits")
        super().__init__(detail)
        self.cap = cap


class MessageError(ExecutionError):
    """A typed-channel message operation failed.

    Raised by the engines when a ``recv ch(v)`` box finds nothing to
    receive (no matching ``send`` ever executed) and by the distributed
    runtime when an envelope arrives corrupted.  ``detail`` is a short
    machine-stable token — ``empty:CH`` or ``corrupt:CH#SEQ`` — because
    the totalized notice ``Λ!msg[detail]`` must be bit-identical across
    serial, thread, process, and distributed executions of the same
    point (the factorization check treats each notice text as its own
    output class).
    """

    def __init__(self, detail: str, message: str = "") -> None:
        text = message or f"channel message fault: {detail}"
        super().__init__(text)
        self.detail = detail


class SweepInterruptedError(ReproError):
    """A sweep stopped early (signal or deadline) after draining.

    Raised by the parallel sweep runner once in-flight chunks have been
    drained and the checkpoint (when one is attached) holds every
    completed chunk summary — the sweep can be resumed from it.
    """

    def __init__(self, reason: str, completed_chunks: int,
                 total_chunks: int, checkpoint: str = "") -> None:
        detail = (f"sweep interrupted ({reason}) after "
                  f"{completed_chunks}/{total_chunks} chunks")
        if checkpoint:
            detail += f"; resume from checkpoint {checkpoint!r}"
        super().__init__(detail)
        self.reason = reason
        self.completed_chunks = completed_chunks
        self.total_chunks = total_chunks
        self.checkpoint = checkpoint


class MechanismContractError(ReproError):
    """A claimed protection mechanism violated its defining contract.

    By definition (Section 2), for every input ``a`` a protection
    mechanism ``M`` for ``Q`` must satisfy ``M(a) == Q(a)`` or
    ``M(a) in F`` (a violation notice).  This error reports a witness
    input where neither held.
    """

    def __init__(self, witness, got, expected) -> None:
        super().__init__(
            f"mechanism contract violated at input {witness!r}: "
            f"returned {got!r}, program returned {expected!r}, "
            "and the returned value is not a violation notice"
        )
        self.witness = witness
        self.got = got
        self.expected = expected


class PolicyError(ReproError):
    """A security policy is malformed (e.g. bad allow() indices)."""


class UndefinedSemanticsError(ReproError):
    """Execution reached a point the modelled semantics leaves undefined.

    Used by the Fenton data-mark machine (Example 1): the behaviour of a
    ``halt`` statement whose program counter is ``priv`` and which is the
    last program statement is undefined in Fenton's model.
    """
