"""The paper's primary contribution: policies, mechanisms, soundness.

Public surface of :mod:`repro.core` — everything Section 2 defines:

- programs as total functions (:class:`Program`),
- security policies (:class:`SecurityPolicy`, :func:`allow`),
- protection mechanisms (:class:`ProtectionMechanism`, violation
  notices, the trivial mechanisms, Theorem 1's union),
- soundness as factorization (:func:`check_soundness`),
- the completeness order (:func:`compare`),
- the maximal mechanism (Theorem 2 / Theorem 4,
  :func:`maximal_mechanism`),
- the observability postulate (:data:`VALUE_ONLY`,
  :data:`VALUE_AND_TIME`).
"""

from .domains import Domain, ProductDomain
from .errors import (ArityMismatchError, DomainError, ExecutionError,
                     FlowchartError, FuelExhaustedError,
                     MechanismContractError, PolicyError, ProgramError,
                     ReproError, UndefinedSemanticsError)
from .observability import (VALUE_AND_TIME, VALUE_ONLY, Observation,
                            OutputModel, with_extras)
from .program import Program, program
from .policy import (AllowPolicy, HistoryPolicy, SecurityPolicy, allow,
                     allow_all, allow_none, content_dependent)
from .mechanism import (LAMBDA, ProtectionMechanism, ViolationNotice,
                        is_violation, join, mechanism_from_table,
                        null_mechanism, program_as_mechanism, union)
from .soundness import (SoundnessReport, SoundnessWitness, check_soundness,
                        check_soundness_with_accepts, distinguishable_pairs,
                        is_sound, leak_partition_sizes, max_leaked_bits)
from .completeness import (Comparison, Order, as_complete, compare,
                           is_maximal_among, more_complete, utility_row)
from .maximal import (MaximalConstruction, certify_maximal,
                      decide_theorem4_output_at_zero, maximal_mechanism,
                      maximality_cost, theorem4_family)
from .integrity import (GuardReport, IntegrityPolicy, PreservationReport,
                        PreservationWitness, check_guarded,
                        check_preservation, must_retain, preserves,
                        retain_inputs, system_table_program)
from .lattice import SoundMechanismLattice
from .leakage import (LeakageProfile, leakage_profile, min_entropy_leakage,
                      shannon_leakage, worst_class_leakage)
from .session import (SessionMechanism, budget_gatekeeper,
                      content_triggered_gatekeeper, session_program,
                      unroll)

__all__ = [
    # domains
    "Domain", "ProductDomain",
    # errors
    "ReproError", "DomainError", "ProgramError", "ArityMismatchError",
    "FlowchartError", "ExecutionError", "FuelExhaustedError",
    "MechanismContractError", "PolicyError", "UndefinedSemanticsError",
    # observability
    "OutputModel", "Observation", "VALUE_ONLY", "VALUE_AND_TIME",
    "with_extras",
    # programs
    "Program", "program",
    # policies
    "SecurityPolicy", "AllowPolicy", "HistoryPolicy", "allow", "allow_all",
    "allow_none", "content_dependent",
    # mechanisms
    "ProtectionMechanism", "ViolationNotice", "LAMBDA", "is_violation",
    "null_mechanism", "program_as_mechanism", "mechanism_from_table",
    "union", "join",
    # soundness
    "SoundnessReport", "SoundnessWitness", "check_soundness",
    "check_soundness_with_accepts", "is_sound",
    "distinguishable_pairs", "leak_partition_sizes", "max_leaked_bits",
    # completeness
    "Comparison", "Order", "compare", "as_complete", "more_complete",
    "is_maximal_among", "utility_row",
    # maximal
    "MaximalConstruction", "maximal_mechanism", "maximality_cost",
    "certify_maximal", "theorem4_family", "decide_theorem4_output_at_zero",
    # lattice
    "SoundMechanismLattice",
    # integrity (the data-security dual)
    "IntegrityPolicy", "must_retain", "retain_inputs",
    "PreservationWitness", "PreservationReport", "check_preservation",
    "preserves", "GuardReport", "check_guarded", "system_table_program",
    # history-dependent enforcement
    "SessionMechanism", "session_program", "unroll", "budget_gatekeeper",
    "content_triggered_gatekeeper",
    # quantitative leakage
    "LeakageProfile", "leakage_profile", "shannon_leakage",
    "min_entropy_leakage", "worst_class_leakage",
]
