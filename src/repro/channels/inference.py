"""Negative inference: learning from what *didn't* happen (Example 1).

    Inspector: "Is there any other point to which you would wish to draw
    my attention?"
    Holmes: "To the curious incident of the dog in the night-time."
    Inspector: "The dog did nothing in the night-time."
    Holmes: "That was the curious incident."

A mechanism whose *silences* are informative is unsound even if every
individual message looks harmless.  This module provides generic
constructors for notice-channel mechanisms and their analysis, tying
together Example 1 (Fenton's halt), Example 4 (notice leaks), and the
paper's Holmes illustration.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..core.domains import ProductDomain
from ..core.mechanism import LAMBDA, ProtectionMechanism, ViolationNotice
from ..core.policy import SecurityPolicy
from ..core.program import Program
from ..core.soundness import check_soundness

#: The paper's Doyle citation, for docs and demo output.
HOLMES_QUOTE = (
    'Holmes: "To the curious incident of the dog in the nighttime." / '
    'Inspector: "The dog did nothing in the nighttime." / '
    'Holmes: "That was the curious incident."'
)


def conditional_notice_mechanism(program: Program,
                                 warn_when: Callable[..., bool],
                                 notice: ViolationNotice = LAMBDA,
                                 name: str = "M-conditional") -> ProtectionMechanism:
    """A gatekeeper that warns exactly when ``warn_when(*inputs)`` holds.

    The shape of every negative-inference bug: whether the notice
    appears is itself a predicate of the inputs.  If that predicate is
    not a function of the *policy-filtered* inputs, the mechanism is
    unsound — the absence of the message tells the user ``not
    warn_when(inputs)``.
    """

    def mechanism_fn(*inputs):
        if warn_when(*inputs):
            return notice
        return program(*inputs)

    return ProtectionMechanism(mechanism_fn, program, name=name)


def fenton_halt_mechanism(program: Program,
                          secret_is_zero_index: int = 1) -> ProtectionMechanism:
    """The Example 1 shape: an error message iff the secret input is 0.

    "a program can be written that will output an error message if and
    only if x = 0 ... the absence of an error message would indicate
    that x != 0."
    """
    position = secret_is_zero_index - 1

    def zero_secret(*inputs):
        return inputs[position] == 0

    return conditional_notice_mechanism(
        program, zero_secret,
        notice=ViolationNotice("error"),
        name="M-fenton-halt")


class InferenceAnalysis:
    """What the presence/absence of a notice reveals, over a domain."""

    def __init__(self, sound: bool, notice_inputs: int, quiet_inputs: int,
                 revealed_predicate: Optional[str]) -> None:
        self.sound = sound
        self.notice_inputs = notice_inputs
        self.quiet_inputs = quiet_inputs
        self.revealed_predicate = revealed_predicate

    def __repr__(self) -> str:
        return (f"InferenceAnalysis(sound={self.sound}, "
                f"notice_on={self.notice_inputs}, quiet_on={self.quiet_inputs})")


def analyse_notice_channel(mechanism: ProtectionMechanism,
                           policy: SecurityPolicy,
                           domain: Optional[ProductDomain] = None) -> InferenceAnalysis:
    """Quantify a mechanism's notice channel.

    Sound mechanisms partition each policy class wholly into "notice"
    or "quiet"; an unsound one splits some class, and the split *is*
    the leaked predicate.
    """
    domain = domain if domain is not None else mechanism.domain
    report = check_soundness(mechanism, policy, domain)
    notice_inputs = sum(1 for point in domain if not mechanism.passes(*point))
    quiet_inputs = len(domain) - notice_inputs
    revealed = None
    if not report.sound and report.witness is not None:
        revealed = (
            f"distinguishes {report.witness.first!r} from "
            f"{report.witness.second!r} within policy class "
            f"{report.witness.policy_value!r}"
        )
    return InferenceAnalysis(report.sound, notice_inputs, quiet_inputs,
                             revealed)
