"""The one-way tape and the ``tab(i)`` operation (Section 2).

    *Let programs have inputs placed on a linear one-way read-only tape
    ... Consider a security policy allow(2).  Then no program Q can read
    z2 and also be sound, provided running time is observable ... it
    must move across z1 ... hence Q will not be sound.  One answer is to
    add a new operation, say tab(i).  This operation in one step causes
    the read head to jump directly to the i-th block ... Perhaps tab(i)
    takes time dependent on the length of z1, ..., z_{i-1}?  ... one
    solution is to program tab(i) so that it runs in constant time.*

We model the tape as a sequence of blocks (tuples of symbols).  Three
readers of block i are provided, differing only in how the head reaches
the block — each is a Program whose output is ``(block_value, steps)``:

- :func:`sequential_reader` walks cell by cell: steps include
  ``len(z1) + ... + len(z_{i-1})`` — unsound for ``allow(i)``;
- :func:`tab_reader` with ``constant_time=True`` jumps in one step —
  sound;
- :func:`tab_reader` with ``constant_time=False`` is the "broken tab"
  whose jump costs one step per *block* skipped... still fine — and
  ``per_cell_tab`` costs one step per cell skipped, which re-opens the
  leak exactly as the paper warns.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..core.domains import Domain, ProductDomain
from ..core.errors import DomainError
from ..core.program import Program


def block_domain(max_length: int, symbols: Tuple[int, ...] = (0, 1),
                 name: str = "Block") -> Domain:
    """All blocks (tuples over ``symbols``) of length 1..max_length.

    Varying-*length* blocks are the point: the leak is the length of
    the blocks the head crosses, not their contents.
    """
    if max_length < 1:
        raise DomainError("blocks need length >= 1")
    blocks = []
    frontier: list = [()]
    for _ in range(max_length):
        frontier = [block + (symbol,) for block in frontier
                    for symbol in symbols]
        blocks.extend(frontier)
    return Domain(blocks, name=name)


def tape_domain(block_count: int, max_length: int = 2) -> ProductDomain:
    """A tape of ``block_count`` independent blocks."""
    return ProductDomain.uniform(block_domain(max_length), block_count)


def _decode(block: Tuple[int, ...]) -> int:
    """A block's value as an integer (binary, MSB first)."""
    value = 0
    for symbol in block:
        value = value * 2 + symbol
    return value


def sequential_reader(block_index: int, block_count: int,
                      max_length: int = 2) -> Program:
    """Read block i by walking the head across every earlier cell.

    steps = cells crossed before the block + cells of the block itself,
    so the step count encodes ``sum(len(z_j) for j < i)`` — the lengths
    of data the policy may deny.
    """
    domain = tape_domain(block_count, max_length)

    def read(*blocks):
        steps = 0
        for block in blocks[:block_index - 1]:
            steps += len(block)          # crossing z1 ... z_{i-1}
        target = blocks[block_index - 1]
        steps += len(target)             # reading z_i itself
        return (_decode(target), steps)

    return Program(read, domain, name=f"tape-seq({block_index})")


def tab_reader(block_index: int, block_count: int, max_length: int = 2,
               constant_time: bool = True) -> Program:
    """Read block i after a ``tab(i)`` jump.

    ``constant_time=True`` is the paper's fix: the jump costs exactly
    one step.  ``constant_time=False`` models a tab microcoded as "skip
    i-1 blocks", costing one step per skipped *block* — still sound,
    since the block count is public structure, not data.
    """
    domain = tape_domain(block_count, max_length)
    jump_cost = 1 if constant_time else block_index

    def read(*blocks):
        target = blocks[block_index - 1]
        return (_decode(target), jump_cost + len(target))

    return Program(read, domain,
                   name=f"tape-tab({block_index}, "
                        f"{'O(1)' if constant_time else 'O(blocks)'})")


def per_cell_tab_reader(block_index: int, block_count: int,
                        max_length: int = 2) -> Program:
    """The *broken* tab the paper warns about: cost ∝ skipped cells.

    "Perhaps tab(i) takes time dependent on the length of z1,...,z_{i-1}?"
    — then the tab's time is exactly the sequential reader's leak again.
    """
    domain = tape_domain(block_count, max_length)

    def read(*blocks):
        skipped = sum(len(block) for block in blocks[:block_index - 1])
        target = blocks[block_index - 1]
        return (_decode(target), skipped + len(target))

    return Program(read, domain, name=f"tape-tab-broken({block_index})")
