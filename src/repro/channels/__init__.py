"""Covert channels from Section 2: timing, tape, passwords, inference."""

from .timing import (leak_bits, step_count_table, timing_attack,
                     timing_report)
from .tape import (block_domain, per_cell_tab_reader, sequential_reader,
                   tab_reader, tape_domain)
from .password import (AttackResult, PagedComparator, brute_force_attack,
                       constant_time_logon_program, logon_leak_bits,
                       logon_policy, logon_program, page_boundary_attack,
                       paged_logon_program, per_query_leak_comparison,
                       table_domain, work_factor_row)
from .inference import (HOLMES_QUOTE, InferenceAnalysis,
                        analyse_notice_channel,
                        conditional_notice_mechanism,
                        fenton_halt_mechanism)

__all__ = [
    "step_count_table", "timing_attack", "leak_bits", "timing_report",
    "block_domain", "tape_domain", "sequential_reader", "tab_reader",
    "per_cell_tab_reader",
    "logon_program", "logon_policy", "logon_leak_bits", "table_domain",
    "PagedComparator", "AttackResult", "brute_force_attack",
    "page_boundary_attack", "work_factor_row", "paged_logon_program",
    "constant_time_logon_program", "per_query_leak_comparison",
    "HOLMES_QUOTE", "conditional_notice_mechanism",
    "fenton_halt_mechanism", "InferenceAnalysis", "analyse_notice_channel",
]
