"""The logon program (Example 5) and the password work-factor attack.

Example 5: ``Q(userid, table, password) -> {true, false}`` is **unsound**
as its own mechanism for ``allow(1, 3)`` (deny the password table): a
correct guess distinguishes tables.  "The reason this program is
workable in practice is that the amount of information obtained by the
user is 'small'" — :func:`logon_leak_bits` measures it (1 bit/query).

Section 2's classic work-factor story: passwords of exactly k characters
over an n-character alphabet.  Guessing costs n^k attempts — unless the
system compares character by character across *page boundaries*, in
which case observable page movement tells the attacker how many leading
characters matched, and the work factor collapses to n·k:

    *the work factor can be reduced to n · k by appropriately placing
    candidate passwords across page boundaries and observing page
    movement resulting from "guessing" password values.*

:class:`PagedComparator` simulates the paged memory; the two attacks
return exact guess counts so bench E14 can chart n^k vs n·k.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.domains import Domain, ProductDomain
from ..core.errors import DomainError
from ..core.program import Program
from ..core.soundness import max_leaked_bits
from ..core.mechanism import program_as_mechanism
from ..core.policy import allow


# -- Example 5: the logon program ----------------------------------------

def table_domain(userids: Sequence[str],
                 passwords: Sequence[str]) -> Domain:
    """All password tables: one (userid, password) pair per userid."""
    assignments = itertools.product(passwords, repeat=len(userids))
    tables = [frozenset(zip(userids, chosen)) for chosen in assignments]
    return Domain(tables, name="Tables")


def logon_program(userids: Sequence[str],
                  passwords: Sequence[str]) -> Program:
    """Example 5's Q: true iff (userid, password) is in the table."""
    domain = ProductDomain(
        Domain(userids, name="Userids"),
        table_domain(userids, passwords),
        Domain(passwords, name="Passwords"),
    )

    def logon(userid, table, password):
        return (userid, password) in table

    return Program(logon, domain, name="logon")


def logon_policy(arity: int = 3):
    """``allow(1, 3)`` — deny everything about the password table."""
    return allow(1, 3, arity=arity)


def logon_leak_bits(userids: Sequence[str],
                    passwords: Sequence[str]) -> float:
    """Bits leaked per query by Q-as-its-own-mechanism (expected: 1.0).

    The policy class fixes (userid, password); across tables the output
    splits into {true, false} — a single bit, which is why password
    systems are tolerable despite being unsound.
    """
    program = logon_program(userids, passwords)
    return max_leaked_bits(program_as_mechanism(program), logon_policy())


# -- Section 2: the work-factor attack ------------------------------------

class PagedComparator:
    """A password check running over simulated paged memory.

    The candidate is laid out so a page boundary falls after its
    ``boundary_after``-th character; comparison proceeds left to right
    and *faults in the next page* only if comparison gets that far.
    Observable output: (accepted, page_faults) — the paper's "page
    movement".
    """

    def __init__(self, secret: str, page_size: int = 1) -> None:
        if not secret:
            raise DomainError("secret password must be non-empty")
        if page_size < 1:
            raise DomainError("page size must be >= 1")
        self.secret = secret
        self.page_size = page_size
        self.comparisons = 0

    def attempt(self, candidate: str, boundary_after: int) -> Tuple[bool, int]:
        """Try a candidate with a page boundary after the given prefix.

        Returns (accepted, observed page faults).  Characters strictly
        beyond ``boundary_after`` live on later pages; each page is
        faulted in only when the comparator's scan first touches it.
        """
        self.comparisons += 1
        faults = 0
        matched = 0
        for position, (expected, got) in enumerate(zip(self.secret, candidate)):
            if position >= boundary_after and (
                    (position - boundary_after) % self.page_size == 0):
                faults += 1  # scan crossed into a new page
            if expected != got:
                return (False, faults)
            matched += 1
        accepted = (matched == len(self.secret)
                    and len(candidate) == len(self.secret))
        return (accepted, faults)


class AttackResult:
    """Outcome of a password-recovery attack."""

    def __init__(self, recovered: Optional[str], guesses: int,
                 strategy: str) -> None:
        self.recovered = recovered
        self.guesses = guesses
        self.strategy = strategy

    @property
    def succeeded(self) -> bool:
        return self.recovered is not None

    def __repr__(self) -> str:
        return (f"AttackResult({self.strategy}: {self.recovered!r} "
                f"in {self.guesses} guesses)")


def brute_force_attack(secret: str, alphabet: Sequence[str]) -> AttackResult:
    """Enumerate all n^k candidates against a constant-time comparator.

    The comparator reveals only accept/reject (no page faults): the
    attacker must in the worst case try every length-k string.
    """
    length = len(secret)
    guesses = 0
    for candidate_chars in itertools.product(alphabet, repeat=length):
        candidate = "".join(candidate_chars)
        guesses += 1
        if candidate == secret:
            return AttackResult(candidate, guesses, "brute-force")
    return AttackResult(None, guesses, "brute-force")


def page_boundary_attack(secret: str,
                         alphabet: Sequence[str]) -> AttackResult:
    """The paper's n·k attack via observable page movement.

    Recover the password one character at a time: place the boundary
    right after the position under attack; a guess whose observed fault
    count shows the scan crossed the boundary had the whole prefix
    right.  Worst case ``n`` guesses per character — ``n · k`` total.
    """
    comparator = PagedComparator(secret)
    length = len(secret)
    known = ""
    guesses = 0
    padding = alphabet[0]
    for position in range(length):
        found = None
        for symbol in alphabet:
            candidate = (known + symbol).ljust(length, padding)
            guesses += 1
            accepted, faults = comparator.attempt(
                candidate, boundary_after=position + 1)
            if accepted:
                return AttackResult(candidate, guesses, "page-boundary")
            if faults > 0:
                # The scan crossed the boundary: positions 0..position
                # all matched, so `symbol` is correct at `position`.
                found = symbol
                break
        if found is None:
            return AttackResult(None, guesses, "page-boundary")
        known += found
    # All characters known; one confirming guess.
    guesses += 1
    accepted, _ = comparator.attempt(known, boundary_after=length)
    return AttackResult(known if accepted else None, guesses,
                        "page-boundary")


def work_factor_row(alphabet_size: int, length: int,
                    secret: Optional[str] = None) -> Dict[str, object]:
    """One row of the E14 table: measured guesses vs the paper's bounds.

    The worst-case secret (last in enumeration order) is used unless a
    specific one is given.
    """
    alphabet = [chr(ord("a") + offset) for offset in range(alphabet_size)]
    if secret is None:
        secret = alphabet[-1] * length  # worst case for both attacks
    if len(secret) != length or any(ch not in alphabet for ch in secret):
        raise DomainError("secret must be length-k over the alphabet")
    brute = brute_force_attack(secret, alphabet)
    paged = page_boundary_attack(secret, alphabet)
    return {
        "n": alphabet_size,
        "k": length,
        "brute_guesses": brute.guesses,
        "brute_bound": alphabet_size ** length,
        "paged_guesses": paged.guesses,
        "paged_bound": alphabet_size * length + 1,
        "brute_ok": brute.succeeded,
        "paged_ok": paged.succeeded,
    }


# -- the paged comparator inside the formal framework ---------------------

def paged_logon_program(alphabet: Sequence[str], length: int,
                        boundary_after: int = 1) -> Program:
    """The paged password check as a Section 2 program.

    ``Q(secret, candidate) = (accepted, page_faults)`` — the
    Observability Postulate applied to Section 2's attack: page movement
    is an output, so it must appear in Q's range.  Domains are all
    length-k strings over the alphabet for both positions.
    """
    candidates = ["".join(chars) for chars in
                  itertools.product(alphabet, repeat=length)]
    domain = ProductDomain(Domain(candidates, name="Secret"),
                           Domain(candidates, name="Guess"))

    def check(secret: str, candidate: str):
        comparator = PagedComparator(secret)
        return comparator.attempt(candidate, boundary_after)

    return Program(check, domain, name=f"logon-paged[{boundary_after}]")


def constant_time_logon_program(alphabet: Sequence[str],
                                length: int) -> Program:
    """The fixed comparator: accept/reject only, no observable faults."""
    candidates = ["".join(chars) for chars in
                  itertools.product(alphabet, repeat=length)]
    domain = ProductDomain(Domain(candidates, name="Secret"),
                           Domain(candidates, name="Guess"))

    def check(secret: str, candidate: str):
        return secret == candidate

    return Program(check, domain, name="logon-const")


def per_query_leak_comparison(alphabet: Sequence[str],
                              length: int) -> Dict[str, float]:
    """Bits leaked per guess, constant-time vs paged comparator.

    The formal root of the work-factor collapse: under ``allow(2)``
    (the guess is the user's own; the secret is denied), the constant-
    time check leaks at most 1 bit per query while the paged check's
    (accepted, faults) output leaks more — which compounds into the
    n·k attack of :func:`page_boundary_attack`.
    """
    policy = allow(2, arity=2)
    constant = program_as_mechanism(
        constant_time_logon_program(alphabet, length))
    paged = program_as_mechanism(
        paged_logon_program(alphabet, length, boundary_after=1))
    return {
        "constant_time_bits": max_leaked_bits(constant, policy),
        "paged_bits": max_leaked_bits(paged, policy),
    }
