"""Timing channels (Section 2's observability discussion).

The paper's constant-function program — ``Q(x) = 1`` for every x, via a
loop that decrements x to zero — is the canonical demonstration that a
"sound-looking" mechanism breaks when running time is an unstated
observable.  This module packages:

- the program itself (from the figure library),
- :func:`timing_attack`: given only ``(value, steps)`` observations,
  reconstruct the secret input exactly,
- :func:`leak_bits`: how many bits the timing channel carries over a
  domain (log2 of the number of distinguishable step counts),
- :func:`timing_report`: the E11 experiment row.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from ..core.domains import ProductDomain
from ..core.mechanism import program_as_mechanism
from ..core.observability import VALUE_AND_TIME, VALUE_ONLY
from ..core.policy import allow_none
from ..core.soundness import check_soundness
from ..flowchart.interpreter import as_program, execute
from ..flowchart.library import timing_loop
from ..flowchart.program import Flowchart


def step_count_table(flowchart: Flowchart,
                     domain: ProductDomain) -> Dict[Tuple, int]:
    """Map each input to its step count — the attacker's codebook."""
    return {point: execute(flowchart, point).steps for point in domain}


def timing_attack(flowchart: Flowchart, domain: ProductDomain,
                  observed_steps: int) -> List[Tuple]:
    """Invert the timing channel: which inputs produce this step count?

    A singleton result means the step count identifies the secret input
    exactly (full recovery); the paper's loop program has this property
    on any integer interval.
    """
    table = step_count_table(flowchart, domain)
    return [point for point, steps in table.items()
            if steps == observed_steps]


def leak_bits(flowchart: Flowchart, domain: ProductDomain) -> float:
    """Bits carried by the timing channel over the domain.

    log2 of the number of distinct step counts: the channel partitions
    the domain into that many distinguishable cells.
    """
    distinct = set(step_count_table(flowchart, domain).values())
    return math.log2(len(distinct)) if distinct else 0.0


def timing_report(domain_high: int = 15) -> dict:
    """Experiment E11: the paper's constant-function timing leak.

    Returns the row for EXPERIMENTS.md: sound without time, unsound
    with time, and the channel capacity (full recovery of x).
    """
    flowchart = timing_loop()
    domain = ProductDomain.integer_grid(0, domain_high, 1)
    policy = allow_none(1)

    value_program = as_program(flowchart, domain, VALUE_ONLY)
    timed_program = as_program(flowchart, domain, VALUE_AND_TIME)
    sound_without_time = check_soundness(
        program_as_mechanism(value_program), policy).sound
    sound_with_time = check_soundness(
        program_as_mechanism(timed_program), policy).sound

    bits = leak_bits(flowchart, domain)
    full_domain_bits = math.log2(len(domain))
    # Full recovery check: every observed step count pins down one input.
    recoveries = [timing_attack(flowchart, domain,
                                execute(flowchart, point).steps)
                  for point in domain]
    exact = all(len(candidates) == 1 for candidates in recoveries)

    return {
        "program": flowchart.name,
        "domain_size": len(domain),
        "sound_value_only": sound_without_time,
        "sound_with_time": sound_with_time,
        "leak_bits": bits,
        "domain_bits": full_domain_bits,
        "exact_recovery": exact,
    }


def quantized_leak_bits(flowchart: Flowchart, domain: ProductDomain,
                        quantum: int) -> float:
    """Channel capacity when the attacker's clock ticks every ``quantum``
    steps.

    Real observers rarely see exact step counts; a coarser clock
    partitions the domain into fewer distinguishable cells.  At
    ``quantum = 1`` this is :func:`leak_bits`; as the quantum grows past
    the program's timing spread the channel closes.
    """
    if quantum < 1:
        raise ValueError("clock quantum must be >= 1")
    buckets = {steps // quantum
               for steps in step_count_table(flowchart, domain).values()}
    return math.log2(len(buckets)) if buckets else 0.0


def quantization_series(domain_high: int = 15,
                        quanta=(1, 2, 4, 8, 16, 32)) -> List[dict]:
    """E11's degradation series: capacity vs clock coarseness."""
    flowchart = timing_loop()
    domain = ProductDomain.integer_grid(0, domain_high, 1)
    rows = []
    for quantum in quanta:
        rows.append({
            "quantum": quantum,
            "leak_bits": quantized_leak_bits(flowchart, domain, quantum),
            "domain_bits": math.log2(len(domain)),
        })
    return rows
