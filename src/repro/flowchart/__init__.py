"""The flowchart programming language of Section 3.

Substrate for the surveillance mechanism: an expression language
(:mod:`~repro.flowchart.expr`), the four box kinds
(:mod:`~repro.flowchart.boxes`), wellformed flowchart graphs
(:mod:`~repro.flowchart.program`), a step-counted interpreter
(:mod:`~repro.flowchart.interpreter`), a compiled execution engine
(:mod:`~repro.flowchart.fastpath`), a vectorized batch tier
(:mod:`~repro.flowchart.batchpath`), a structured front-end
(:mod:`~repro.flowchart.structured`), CFG analyses
(:mod:`~repro.flowchart.analysis`), the Section 4/5 transforms
(:mod:`~repro.flowchart.transforms`), and the paper's figure programs
(:mod:`~repro.flowchart.library`).
"""

from .expr import (And, BinOp, BoolConst, Compare, Const, Expr, Ite,
                   LoopExpr, Neg, Not, Or, Pred, Var, const,
                   structurally_equal, substitute, var, variables_of)
from .boxes import (AssignBox, Box, DecisionBox, DowngradeBox, HaltBox,
                    PolicyChangeBox, RecvBox, SendBox, StartBox)
from .program import Flowchart
from .interpreter import (DEFAULT_FUEL, ExecutionResult, as_program,
                          execute, initial_environment, running_time)
from .fastpath import (BACKENDS, CompiledFlowchart, compile_flowchart,
                       execute_compiled, resolve_backend, run_flowchart)
from .batchpath import (execute_batch, execute_batch_single,
                        resolve_lane_engine)
from .builder import FlowchartBuilder, Label
from .structured import (Assign, Body, Downgrade, If, PolicyChange, Recv,
                         Send, Skip, Stmt, StructuredProgram, While,
                         compile_structured, seq)
from .analysis import (IteRegion, WhileRegion, dominators,
                       find_ite_regions, find_while_regions,
                       immediate_postdominator, is_straight_line,
                       postdominators)
from .transforms import (duplicate_assignment_transform,
                         functionally_equivalent, ite_transform,
                         ite_transform_all, symbolic_effect,
                         while_transform, while_transform_all)
from .dot import to_dot
from . import library

__all__ = [
    # expressions
    "Expr", "Pred", "Const", "Var", "BinOp", "Neg", "Ite", "LoopExpr",
    "Compare", "BoolConst", "Not", "And", "Or", "var", "const",
    "variables_of", "substitute", "structurally_equal",
    # boxes / graphs
    "Box", "StartBox", "DecisionBox", "AssignBox", "HaltBox",
    "PolicyChangeBox", "DowngradeBox", "SendBox", "RecvBox", "Flowchart",
    # execution
    "execute", "ExecutionResult", "as_program", "running_time",
    "initial_environment", "DEFAULT_FUEL",
    # compiled backend
    "BACKENDS", "CompiledFlowchart", "compile_flowchart",
    "execute_compiled", "resolve_backend", "run_flowchart",
    # batch tier
    "execute_batch", "execute_batch_single", "resolve_lane_engine",
    # building
    "FlowchartBuilder", "Label", "StructuredProgram", "Stmt", "Skip",
    "Assign", "If", "While", "PolicyChange", "Downgrade", "Send", "Recv",
    "Body", "compile_structured", "seq",
    # analysis
    "dominators", "postdominators", "immediate_postdominator",
    "IteRegion", "WhileRegion", "find_ite_regions", "find_while_regions",
    "is_straight_line",
    # transforms
    "symbolic_effect", "ite_transform", "ite_transform_all",
    "while_transform", "while_transform_all",
    "duplicate_assignment_transform", "functionally_equivalent",
    # rendering
    "to_dot",
    # figure programs
    "library",
]
