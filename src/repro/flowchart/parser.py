"""A textual front-end for structured programs.

The paper writes its programs as flowchart figures; authoring them in
Python AST constructors is precise but noisy.  This module adds a small
concrete syntax so programs read like the paper's prose:

.. code-block:: text

    program forgetting(x1, x2) {
        y := x1;
        if x2 == 0 { y := 0 }
    }

Grammar (recursive descent, no ambiguity):

.. code-block:: text

    program   ::= "program" IDENT "(" ident ("," ident)* ")"
                  ["->" IDENT] "{" stmts "}"
    stmts     ::= [stmt (";" stmt)* [";"]]
    stmt      ::= IDENT ":=" expr
                | "if" pred "{" stmts "}" ["else" "{" stmts "}"]
                | "while" pred "{" stmts "}"
                | "policy" "allow" "(" [INT ("," INT)*] ")"
                | "downgrade" IDENT "(" INT ("," INT)* ")"
                | "send" IDENT "(" IDENT ")"
                | "recv" IDENT "(" IDENT ")"
                | "skip"
    pred      ::= conj ("or" conj)*
    conj      ::= atom ("and" atom)*
    atom      ::= "not" atom | "true" | "false"
                | expr ("==" | "!=" | "<" | "<=" | ">" | ">=") expr
    expr      ::= term (("+" | "-") term)*
    term      ::= factor (("*" | "//" | "%") factor)*
    factor    ::= INT | IDENT | "-" factor | "(" expr ")"

Semicolons between statements are optional before a closing brace.
:func:`parse_program` yields a
:class:`~repro.flowchart.structured.StructuredProgram`;
:func:`parse_policy` parses the paper's ``allow(i, j)`` notation.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from ..core.errors import ReproError
from ..core.policy import AllowPolicy, allow
from .expr import (And, BoolConst, Compare, Const, Expr, Neg, Not, Or,
                   Pred, Var)
from .structured import (Assign, Downgrade, If, PolicyChange, Recv, Send,
                         Skip, Stmt, StructuredProgram, While)


class ParseError(ReproError):
    """Syntax error, with position information."""

    def __init__(self, message: str, position: int, source: str) -> None:
        line = source.count("\n", 0, position) + 1
        column = position - (source.rfind("\n", 0, position) + 1) + 1
        super().__init__(f"{message} (line {line}, column {column})")
        self.position = position


_TOKEN_RE = re.compile(r"""
    (?P<ws>\s+|\#[^\n]*)
  | (?P<int>\d+)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op>:=|->|==|!=|<=|>=|//|[-+*%<>(){},;])
""", re.VERBOSE)

_KEYWORDS = frozenset(("program", "if", "else", "while", "skip", "and",
                       "or", "not", "true", "false", "policy", "downgrade",
                       "send", "recv"))


class _Token:
    __slots__ = ("kind", "text", "position")

    def __init__(self, kind: str, text: str, position: int) -> None:
        self.kind = kind
        self.text = text
        self.position = position

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r})"


def _tokenize(source: str) -> List[_Token]:
    tokens: List[_Token] = []
    position = 0
    while position < len(source):
        match = _TOKEN_RE.match(source, position)
        if match is None:
            raise ParseError(f"unexpected character {source[position]!r}",
                             position, source)
        position = match.end()
        if match.lastgroup == "ws":
            continue
        text = match.group()
        if match.lastgroup == "ident" and text in _KEYWORDS:
            tokens.append(_Token("kw", text, match.start()))
        else:
            tokens.append(_Token(match.lastgroup, text, match.start()))
    tokens.append(_Token("eof", "", len(source)))
    return tokens


class _Parser:
    def __init__(self, source: str) -> None:
        self.source = source
        self.tokens = _tokenize(source)
        self.index = 0

    # -- token plumbing --------------------------------------------------

    @property
    def current(self) -> _Token:
        return self.tokens[self.index]

    def _advance(self) -> _Token:
        token = self.current
        self.index += 1
        return token

    def _check(self, kind: str, text: Optional[str] = None) -> bool:
        token = self.current
        return token.kind == kind and (text is None or token.text == text)

    def _accept(self, kind: str, text: Optional[str] = None) -> Optional[_Token]:
        if self._check(kind, text):
            return self._advance()
        return None

    def _expect(self, kind: str, text: Optional[str] = None) -> _Token:
        if not self._check(kind, text):
            wanted = text or kind
            raise ParseError(
                f"expected {wanted!r}, found {self.current.text or 'end of input'!r}",
                self.current.position, self.source)
        return self._advance()

    # -- grammar ----------------------------------------------------------

    def parse_program(self) -> StructuredProgram:
        self._expect("kw", "program")
        name = self._expect("ident").text
        self._expect("op", "(")
        inputs = [self._expect("ident").text]
        while self._accept("op", ","):
            inputs.append(self._expect("ident").text)
        self._expect("op", ")")
        output = "y"
        if self._accept("op", "->"):
            output = self._expect("ident").text
        self._expect("op", "{")
        body = self._parse_stmts()
        self._expect("op", "}")
        self._expect("eof")
        return StructuredProgram(inputs, body, output_variable=output,
                                 name=name)

    def _parse_stmts(self) -> List[Stmt]:
        statements: List[Stmt] = []
        while not self._check("op", "}") and not self._check("eof"):
            statements.append(self._parse_stmt())
            if not self._accept("op", ";"):
                break
        return statements

    def _parse_stmt(self) -> Stmt:
        if self._accept("kw", "skip"):
            return Skip()
        if self._accept("kw", "if"):
            predicate = self._parse_pred()
            self._expect("op", "{")
            then_body = self._parse_stmts()
            self._expect("op", "}")
            else_body: List[Stmt] = []
            if self._accept("kw", "else"):
                self._expect("op", "{")
                else_body = self._parse_stmts()
                self._expect("op", "}")
            return If(predicate, then_body, else_body)
        if self._accept("kw", "while"):
            predicate = self._parse_pred()
            self._expect("op", "{")
            body = self._parse_stmts()
            self._expect("op", "}")
            return While(predicate, body)
        if self._accept("kw", "policy"):
            keyword = self._expect("ident")
            if keyword.text != "allow":
                raise ParseError("expected 'allow' after 'policy'",
                                 keyword.position, self.source)
            return PolicyChange(self._parse_index_list(allow_empty=True))
        if self._accept("kw", "downgrade"):
            variable = self._expect("ident").text
            return Downgrade(variable,
                             self._parse_index_list(allow_empty=False))
        if self._accept("kw", "send"):
            channel, variable = self._parse_channel_op()
            return Send(channel, variable)
        if self._accept("kw", "recv"):
            channel, variable = self._parse_channel_op()
            return Recv(channel, variable)
        target = self._expect("ident").text
        self._expect("op", ":=")
        return Assign(target, self._parse_expr())

    def _parse_channel_op(self) -> Tuple[str, str]:
        """``IDENT "(" IDENT ")"`` — the channel and variable of send/recv."""
        channel = self._expect("ident").text
        self._expect("op", "(")
        variable = self._expect("ident").text
        self._expect("op", ")")
        return channel, variable

    def _parse_index_list(self, allow_empty: bool) -> List[int]:
        """``( [INT ("," INT)*] )`` — 1-based input indices."""
        self._expect("op", "(")
        indices: List[int] = []
        if not self._check("op", ")"):
            indices.append(int(self._expect("int").text))
            while self._accept("op", ","):
                indices.append(int(self._expect("int").text))
        closing = self._expect("op", ")")
        if not indices and not allow_empty:
            raise ParseError("downgrade needs at least one index",
                             closing.position, self.source)
        return indices

    def _parse_pred(self) -> Pred:
        left = self._parse_conj()
        while self._accept("kw", "or"):
            left = Or(left, self._parse_conj())
        return left

    def _parse_conj(self) -> Pred:
        left = self._parse_pred_atom()
        while self._accept("kw", "and"):
            left = And(left, self._parse_pred_atom())
        return left

    def _parse_pred_atom(self) -> Pred:
        if self._accept("kw", "not"):
            return Not(self._parse_pred_atom())
        if self._accept("kw", "true"):
            return BoolConst(True)
        if self._accept("kw", "false"):
            return BoolConst(False)
        left = self._parse_expr()
        operator = self.current
        if operator.kind == "op" and operator.text in ("==", "!=", "<",
                                                       "<=", ">", ">="):
            self._advance()
            return Compare(operator.text, left, self._parse_expr())
        raise ParseError("expected a comparison operator",
                         operator.position, self.source)

    def _parse_expr(self) -> Expr:
        left = self._parse_term()
        while True:
            if self._accept("op", "+"):
                left = left + self._parse_term()
            elif self._accept("op", "-"):
                left = left - self._parse_term()
            else:
                return left

    def _parse_term(self) -> Expr:
        left = self._parse_factor()
        while True:
            if self._accept("op", "*"):
                left = left * self._parse_factor()
            elif self._accept("op", "//"):
                left = left // self._parse_factor()
            elif self._accept("op", "%"):
                left = left % self._parse_factor()
            else:
                return left

    def _parse_factor(self) -> Expr:
        if self._accept("op", "-"):
            return Neg(self._parse_factor())
        if self._check("int"):
            return Const(int(self._advance().text))
        if self._check("ident"):
            return Var(self._advance().text)
        if self._accept("op", "("):
            inner = self._parse_expr()
            self._expect("op", ")")
            return inner
        raise ParseError(
            f"expected a value, found {self.current.text or 'end of input'!r}",
            self.current.position, self.source)


def parse_program(source: str) -> StructuredProgram:
    """Parse the concrete syntax into a StructuredProgram.

    >>> program = parse_program('''
    ...     program double(x1) {
    ...         y := x1 * 2
    ...     }
    ... ''')
    >>> program.name
    'double'
    """
    return _Parser(source).parse_program()


_POLICY_RE = re.compile(r"^\s*allow\s*\(\s*(?P<indices>[\d\s,]*)\s*\)\s*$")


def parse_policy(text: str, arity: int) -> AllowPolicy:
    """Parse the paper's ``allow(i1, ..., im)`` notation.

    >>> parse_policy("allow(1, 3)", arity=3).name
    'allow(1, 3)'
    >>> parse_policy("allow()", arity=2).name
    'allow()'
    """
    match = _POLICY_RE.match(text)
    if match is None:
        raise ParseError(f"not an allow(...) policy: {text!r}", 0, text)
    indices_text = match.group("indices").strip()
    if not indices_text:
        return allow(arity=arity)
    indices = tuple(int(part) for part in indices_text.split(","))
    return allow(*indices, arity=arity)


# -- unparsing ---------------------------------------------------------------

def _unparse_expr(node: Expr) -> str:
    from .expr import BinOp, Neg

    if isinstance(node, Const):
        return str(node.value)
    if isinstance(node, Var):
        return node.name
    if isinstance(node, BinOp):
        if node.op in ("min", "max"):
            raise ParseError(
                f"{node.op} has no concrete syntax", 0, repr(node))
        return (f"({_unparse_expr(node.left)} {node.op} "
                f"{_unparse_expr(node.right)})")
    if isinstance(node, Neg):
        return f"(-{_unparse_expr(node.operand)})"
    raise ParseError(f"{type(node).__name__} has no concrete syntax", 0,
                     repr(node))


def _unparse_pred(node: Pred) -> str:
    from .expr import Compare

    if isinstance(node, Compare):
        return (f"{_unparse_expr(node.left)} {node.op} "
                f"{_unparse_expr(node.right)}")
    if isinstance(node, BoolConst):
        return "true" if node.value else "false"
    if isinstance(node, Not):
        return f"not {_unparse_pred(node.operand)}"
    if isinstance(node, And):
        return f"{_unparse_pred(node.left)} and {_unparse_pred(node.right)}"
    if isinstance(node, Or):
        return f"{_unparse_pred(node.left)} or {_unparse_pred(node.right)}"
    raise ParseError(f"{type(node).__name__} has no concrete syntax", 0,
                     repr(node))


def _unparse_stmts(statements, indent: str) -> List[str]:
    lines: List[str] = []
    for statement in statements:
        if isinstance(statement, Skip):
            lines.append(f"{indent}skip;")
        elif isinstance(statement, Assign):
            lines.append(f"{indent}{statement.target} := "
                         f"{_unparse_expr(statement.expression)};")
        elif isinstance(statement, If):
            lines.append(f"{indent}if {_unparse_pred(statement.predicate)}"
                         " {")
            lines.extend(_unparse_stmts(statement.then_body,
                                        indent + "    "))
            if statement.else_body:
                lines.append(f"{indent}}} else {{")
                lines.extend(_unparse_stmts(statement.else_body,
                                            indent + "    "))
            lines.append(f"{indent}}};")
        elif isinstance(statement, While):
            lines.append(f"{indent}while "
                         f"{_unparse_pred(statement.predicate)} {{")
            lines.extend(_unparse_stmts(statement.body, indent + "    "))
            lines.append(f"{indent}}};")
        elif isinstance(statement, PolicyChange):
            indices = ", ".join(str(i) for i in statement.allowed)
            lines.append(f"{indent}policy allow({indices});")
        elif isinstance(statement, Downgrade):
            indices = ", ".join(str(i) for i in statement.indices)
            lines.append(f"{indent}downgrade {statement.variable}"
                         f"({indices});")
        elif isinstance(statement, Send):
            lines.append(f"{indent}send {statement.channel}"
                         f"({statement.variable});")
        elif isinstance(statement, Recv):
            lines.append(f"{indent}recv {statement.channel}"
                         f"({statement.variable});")
        else:
            raise ParseError(
                f"{type(statement).__name__} has no concrete syntax", 0,
                repr(statement))
    return lines


def unparse_program(program: StructuredProgram) -> str:
    """Render a StructuredProgram in the concrete syntax.

    Inverse of :func:`parse_program` up to formatting:
    ``parse_program(unparse_program(p))`` is functionally equivalent to
    ``p`` (a hypothesis property in the test suite).  Raises
    :class:`ParseError` on nodes the grammar cannot express
    (``Ite``, ``LoopExpr``, ``min``/``max``).
    """
    # Program names are free-form in the AST; the grammar needs an
    # identifier, so sanitise (e.g. "random-loops" -> "random_loops").
    name = re.sub(r"[^A-Za-z0-9_]", "_", program.name) or "p"
    if name[0].isdigit():
        name = f"p_{name}"
    header = (f"program {name}("
              f"{', '.join(program.input_variables)})")
    if program.output_variable != "y":
        header += f" -> {program.output_variable}"
    lines = [header + " {"]
    lines.extend(_unparse_stmts(program.body, "    "))
    lines.append("}")
    return "\n".join(lines)
