"""An imperative builder for flowchart graphs.

Writing box dictionaries by hand is error-prone; the builder allocates
node ids, wires successors, and supports forward references (labels used
before they are defined), which loops need.

>>> from repro.flowchart.builder import FlowchartBuilder
>>> from repro.flowchart.expr import var
>>> b = FlowchartBuilder(["x1"], name="decrement-loop")
>>> loop = b.label()
>>> b.define(loop)
>>> b.decide(var("x1").ne(0), then_to=None, else_to=None)  # doctest: +SKIP

Most callers use the higher-level structured front-end
(:mod:`repro.flowchart.structured`); the builder exists for flowcharts
with irreducible control flow and for the instrumentation pass, which
must splice boxes into an arbitrary graph.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Optional

from ..core.errors import FlowchartError
from .boxes import (AssignBox, Box, DecisionBox, DowngradeBox, HaltBox,
                    NodeId, PolicyChangeBox, RecvBox, SendBox, StartBox)
from .expr import Expr, Pred
from .program import Flowchart


class Label:
    """A forward-referencable node id."""

    _counter = itertools.count()

    def __init__(self, hint: str = "L") -> None:
        self.id: NodeId = f"{hint}{next(Label._counter)}"

    def __repr__(self) -> str:
        return f"Label({self.id})"


class FlowchartBuilder:
    """Accumulates boxes; :meth:`build` validates and returns a Flowchart.

    Sequential style: each ``assign``/``halt``/``decide`` appends a box
    and wires the *previous* sequential box to it.  ``define(label)``
    makes the next appended box carry that label's id, resolving forward
    references.
    """

    def __init__(self, input_variables: Iterable[str],
                 output_variable: str = "y", name: str = "F") -> None:
        self.input_variables = tuple(input_variables)
        self.output_variable = output_variable
        self.name = name
        self._boxes: Dict[NodeId, Box] = {}
        self._ids = itertools.count()
        self._pending_labels: List[NodeId] = []
        # Node ids whose single successor slot should be patched to the
        # next appended box (sequential flow).
        self._dangling: List[NodeId] = []
        self._start_id: Optional[NodeId] = None

    # -- id management ---------------------------------------------------

    def label(self, hint: str = "L") -> Label:
        """Allocate a label for a forward jump target."""
        return Label(hint)

    def define(self, label: Label) -> None:
        """The next appended box will have this label's id."""
        self._pending_labels.append(label.id)

    def _next_id(self) -> NodeId:
        if self._pending_labels:
            return self._pending_labels.pop(0)
        return f"n{next(self._ids)}"

    # -- appending boxes ---------------------------------------------------

    def _append(self, node_id: NodeId, box: Box) -> NodeId:
        if node_id in self._boxes:
            raise FlowchartError(f"duplicate node id {node_id!r}")
        self._boxes[node_id] = box
        return node_id

    def _wire_dangling(self, target: NodeId) -> None:
        for node_id in self._dangling:
            box = self._boxes[node_id]
            if isinstance(box, StartBox):
                self._boxes[node_id] = StartBox(target)
            elif isinstance(box, AssignBox):
                self._boxes[node_id] = AssignBox(box.target, box.expression, target)
            elif isinstance(box, PolicyChangeBox):
                self._boxes[node_id] = PolicyChangeBox(box.allowed, target)
            elif isinstance(box, DowngradeBox):
                self._boxes[node_id] = DowngradeBox(box.variable, box.indices,
                                                    target)
            elif isinstance(box, SendBox):
                self._boxes[node_id] = SendBox(box.channel, box.variable,
                                               target)
            elif isinstance(box, RecvBox):
                self._boxes[node_id] = RecvBox(box.channel, box.variable,
                                               target)
            else:  # pragma: no cover - only single-successor boxes dangle
                raise FlowchartError(f"cannot wire {box!r}")
        self._dangling.clear()

    def start(self) -> NodeId:
        """Append the start box (call first, exactly once)."""
        if self._start_id is not None:
            raise FlowchartError("start() called twice")
        node_id = self._next_id()
        self._append(node_id, StartBox("__unwired__"))
        self._start_id = node_id
        self._dangling.append(node_id)
        return node_id

    def assign(self, target: str, expression: Expr) -> NodeId:
        node_id = self._next_id()
        self._wire_dangling(node_id)
        self._append(node_id, AssignBox(target, expression, "__unwired__"))
        self._dangling.append(node_id)
        return node_id

    def policy_change(self, allowed: Iterable[int]) -> NodeId:
        """Append a mid-program policy installation (a new epoch)."""
        node_id = self._next_id()
        self._wire_dangling(node_id)
        self._append(node_id, PolicyChangeBox(allowed, "__unwired__"))
        self._dangling.append(node_id)
        return node_id

    def downgrade(self, variable: str, indices: Iterable[int]) -> NodeId:
        """Append a declassifier relabeling ``variable``."""
        node_id = self._next_id()
        self._wire_dangling(node_id)
        self._append(node_id, DowngradeBox(variable, indices, "__unwired__"))
        self._dangling.append(node_id)
        return node_id

    def send(self, channel: str, variable: str) -> NodeId:
        """Append a ``send channel(variable)`` box."""
        node_id = self._next_id()
        self._wire_dangling(node_id)
        self._append(node_id, SendBox(channel, variable, "__unwired__"))
        self._dangling.append(node_id)
        return node_id

    def recv(self, channel: str, variable: str) -> NodeId:
        """Append a ``recv channel(variable)`` box."""
        node_id = self._next_id()
        self._wire_dangling(node_id)
        self._append(node_id, RecvBox(channel, variable, "__unwired__"))
        self._dangling.append(node_id)
        return node_id

    def decide(self, predicate: Pred, then_to: Label,
               else_to: Label) -> NodeId:
        """Append a decision whose both arms are explicit labels."""
        node_id = self._next_id()
        self._wire_dangling(node_id)
        self._append(node_id, DecisionBox(predicate, then_to.id, else_to.id))
        return node_id

    def halt(self) -> NodeId:
        node_id = self._next_id()
        self._wire_dangling(node_id)
        self._append(node_id, HaltBox())
        return node_id

    def goto(self, label: Label) -> None:
        """Wire the current dangling flow to an existing/forward label."""
        self._wire_dangling(label.id)

    # -- direct graph construction ---------------------------------------

    def raw(self, node_id: NodeId, box: Box) -> NodeId:
        """Insert a box verbatim (for the instrumentation pass)."""
        return self._append(node_id, box)

    def build(self) -> Flowchart:
        if self._start_id is None:
            raise FlowchartError("build() before start()")
        if self._dangling:
            raise FlowchartError(
                f"unwired sequential flow from nodes {self._dangling!r}; "
                "end with halt() or goto()"
            )
        if self._pending_labels:
            raise FlowchartError(
                f"labels defined but never given a box: {self._pending_labels!r}"
            )
        return Flowchart(self._boxes, self.input_variables,
                         self.output_variable, name=self.name)
