"""Every flowchart that appears as a figure in the paper, by name.

The journal scan loses the inline figures, so each program here is a
documented reconstruction; the docstring of each constructor states the
paper anchor and the behavioural claims the reconstruction must satisfy
(and the test suite checks them).  EXPERIMENTS.md records the
correspondence.

All constructors return a fresh :class:`~repro.flowchart.program.Flowchart`.
"""

from __future__ import annotations

from typing import List

from .expr import Const, var
from .program import Flowchart
from .structured import (Assign, Downgrade, If, PolicyChange, Skip,
                         StructuredProgram, While)


def timing_loop() -> Flowchart:
    """The Section 2 observability program: ``y = 1`` but time reveals x.

    Reconstruction of the while-loop figure discussed under "We next
    relate the observability postulate and the concept of soundness":
    for any x, Q(x) = 1, yet the running time is monotone in x, so with
    time observable Q as its own mechanism is unsound for ``allow()``.

        r := x1; while r != 0 do r := r - 1; y := 1
    """
    return StructuredProgram(
        ["x1"],
        [
            Assign("r", var("x1")),
            While(var("r").ne(0), [Assign("r", var("r") - 1)]),
            Assign("y", Const(1)),
        ],
        name="timing-loop",
    ).compile()


def forgetting_program() -> Flowchart:
    """The page-48 figure: surveillance beats high-water mark.

    Claims (policy ``allow(2)``): the high-water mechanism always
    outputs Λ; surveillance outputs Λ only when ``x2 != 0``.

        y := x1; if x2 = 0 then y := 0
    """
    return StructuredProgram(
        ["x1", "x2"],
        [
            Assign("y", var("x1")),
            If(var("x2").eq(0), [Assign("y", Const(0))], [Skip()]),
        ],
        name="forgetting",
    ).compile()


def reconvergence_program() -> Flowchart:
    """The page-49 figure: surveillance is not maximal.

    Q is the constant function 1, but reaches ``y := 1`` through a
    branch on ``x1``.  Claims (policy ``allow(2)``): the surveillance
    mechanism always outputs Λ, while ``Mmax = Q`` is sound (Q is
    constant), so surveillance is not maximal.

        if x1 = 1 then r := 1 else r := 2; y := 1
    """
    return StructuredProgram(
        ["x1", "x2"],
        [
            If(var("x1").eq(1), [Assign("r", Const(1))],
               [Assign("r", Const(2))]),
            Assign("y", Const(1)),
        ],
        name="reconvergence",
    ).compile()


def example7_program() -> Flowchart:
    """Example 7's Q: the program whose last if-then-else gets transformed.

    Identical to :func:`reconvergence_program` (the paper transforms
    "the last use of the if then else construct in program Q" of
    page 49).  After the if-then-else transform, surveillance for
    ``allow(2)`` always outputs 1 — a maximal mechanism.
    """
    flowchart = reconvergence_program()
    return Flowchart(flowchart.boxes, flowchart.input_variables,
                     flowchart.output_variable, name="example7")


def example8_program() -> Flowchart:
    """Example 8's Q: the program where the transform *hurts*.

    Claims (policy ``allow(2)``): untransformed surveillance outputs
    Q's value exactly when ``x2 = 1``; the if-then-else transform's
    mechanism always outputs Λ, hence M > M'.

        if x2 = 1 then y := 1 else y := x1
    """
    return StructuredProgram(
        ["x1", "x2"],
        [
            If(var("x2").eq(1), [Assign("y", Const(1))],
               [Assign("y", var("x1"))]),
        ],
        name="example8",
    ).compile()


def example9_program() -> Flowchart:
    """Example 9's Q (Section 5): compile-time assignment duplication.

    Reconstruction anchored on the example's stated outcomes (the scan
    loses the figures; "X, ≠ 0" reads as x1, which the OCR renders the
    same way in Theorem 4's ``A(x,)``):

    Policy ``allow(1)``.  Claims: applying the if-then-else transform
    yields a mechanism that *always* outputs a violation notice; in
    contrast, duplicating the assignment to y — hoisting the then-arm's
    ``y := 0`` above the test — yields a functionally equivalent program
    whose mechanism "need only give a violation notice in case x1 ≠ 0".
    Note the test variable x1 is *allowed*, so a notice decision keyed
    on it is sound.

        if x1 = 0 then y := 0 else y := x2
    """
    return StructuredProgram(
        ["x1", "x2"],
        [
            If(var("x1").eq(0), [Assign("y", Const(0))],
               [Assign("y", var("x2"))]),
        ],
        name="example9",
    ).compile()


def theorem4_flowchart(modulus: int = 0) -> Flowchart:
    """A flowchart in the shape of the Theorem 4 proof.

    The proof's program assigns ``r := A(x1)`` (A total, A(0)=0) and
    outputs r; the maximal mechanism for ``allow()`` is constant 0 iff
    A is identically zero.  ``modulus = 0`` instantiates ``A = 0``;
    ``modulus = m > 0`` instantiates ``A(x) = x mod m`` (zero exactly on
    multiples of m — identically zero on no sufficiently large domain).

        r := A(x1); y := r
    """
    if modulus == 0:
        body_expr = Const(0)
    else:
        body_expr = var("x1") % modulus
    return StructuredProgram(
        ["x1"],
        [Assign("r", body_expr), Assign("y", var("r"))],
        name=f"theorem4-A{modulus}",
    ).compile()


def parity_program() -> Flowchart:
    """Loop-based parity of x1 (extra suite member: data + control flow).

        r := x1; while r > 1 do r := r - 2; y := r
    """
    return StructuredProgram(
        ["x1"],
        [
            Assign("r", var("x1")),
            While(var("r").gt(1), [Assign("r", var("r") - 2)]),
            Assign("y", var("r")),
        ],
        name="parity",
    ).compile()


def guarded_copy_program() -> Flowchart:
    """Copy x1 to y only when x2 is the password 7 (extra suite member).

        if x2 = 7 then y := x1 else y := -1
    """
    return StructuredProgram(
        ["x1", "x2"],
        [
            If(var("x2").eq(7), [Assign("y", var("x1"))],
               [Assign("y", Const(-1))]),
        ],
        name="guarded-copy",
    ).compile()


def mixer_program() -> Flowchart:
    """Arithmetic over both inputs, no control flow (extra suite member).

        y := (x1 + x2) * 2
    """
    return StructuredProgram(
        ["x1", "x2"],
        [Assign("y", (var("x1") + var("x2")) * 2)],
        name="mixer",
    ).compile()


def max_program() -> Flowchart:
    """Branching max of two inputs (extra suite member).

        if x1 >= x2 then y := x1 else y := x2
    """
    return StructuredProgram(
        ["x1", "x2"],
        [
            If(var("x1").ge(var("x2")), [Assign("y", var("x1"))],
               [Assign("y", var("x2"))]),
        ],
        name="max",
    ).compile()


def nested_branch_program() -> Flowchart:
    """Nested control flow over three inputs (extra suite member).

        if x1 > 0 then { if x2 > 0 then y := x3 else y := 0 } else y := x3
    """
    return StructuredProgram(
        ["x1", "x2", "x3"],
        [
            If(var("x1").gt(0),
               [If(var("x2").gt(0), [Assign("y", var("x3"))],
                   [Assign("y", Const(0))])],
               [Assign("y", var("x3"))]),
        ],
        name="nested-branch",
    ).compile()


def accumulate_program() -> Flowchart:
    """Triangular-number loop reading x1 (extra suite member).

        r := x1; while r != 0 do { y := y + r; r := r - 1 }
    """
    return StructuredProgram(
        ["x1"],
        [
            Assign("r", var("x1")),
            While(var("r").ne(0),
                  [Assign("y", var("y") + var("r")),
                   Assign("r", var("r") - 1)]),
        ],
        name="accumulate",
    ).compile()


def gcd_program() -> Flowchart:
    """Euclid by repeated subtraction (extra suite member: nested data
    and control flow over two inputs; gcd(x, 0) = x by convention).

        a := x1; b := x2;
        while b != 0 { while a >= b { a := a - b }; t := a; a := b; b := t }
        y := a
    """
    return StructuredProgram(
        ["x1", "x2"],
        [
            Assign("a", var("x1")),
            Assign("b", var("x2")),
            While(var("b").ne(0),
                  [While(var("a").ge(var("b")),
                         [Assign("a", var("a") - var("b"))]),
                   Assign("t", var("a")),
                   Assign("a", var("b")),
                   Assign("b", var("t"))]),
            Assign("y", var("a")),
        ],
        name="gcd",
    ).compile()


def min_program() -> Flowchart:
    """Branching min of two inputs (dual of :func:`max_program`)."""
    return StructuredProgram(
        ["x1", "x2"],
        [
            If(var("x1").le(var("x2")), [Assign("y", var("x1"))],
               [Assign("y", var("x2"))]),
        ],
        name="min",
    ).compile()


def countdown_pair_program() -> Flowchart:
    """Two sequential loops, one per input (distinct timing signatures).

        r := x1; while r != 0 { r := r - 1 };
        s := x2; while s != 0 { s := s - 1; y := y + 1 }
    """
    return StructuredProgram(
        ["x1", "x2"],
        [
            Assign("r", var("x1")),
            While(var("r").ne(0), [Assign("r", var("r") - 1)]),
            Assign("s", var("x2")),
            While(var("s").ne(0),
                  [Assign("s", var("s") - 1),
                   Assign("y", var("y") + 1)]),
        ],
        name="countdown-pair",
    ).compile()


def fault_channel_program() -> Flowchart:
    """Equal value, equal time — unequal memory footprint.

    Section 6: the model covers "phenomena ignored in other models —
    such as running time or page faults".  This program is the sharp
    case for the second observable: both arms take the same number of
    steps and leave y = 1, so Q is sound as its own mechanism for
    ``allow()`` even with running time in the output — yet the arms
    touch different *numbers of variables*, so the fault-count
    observable still reveals whether x1 = 0.

        if x1 = 0 then a := 1 else a := b; y := 1
    """
    return StructuredProgram(
        ["x1"],
        [
            If(var("x1").eq(0), [Assign("a", Const(1))],
               [Assign("a", var("b"))]),
            Assign("y", Const(1)),
        ],
        name="fault-channel",
    ).compile()


def paper_figures() -> List[Flowchart]:
    """The programs that appear as figures in the paper."""
    return [
        timing_loop(),
        forgetting_program(),
        reconvergence_program(),
        example8_program(),
        example9_program(),
        theorem4_flowchart(0),
        theorem4_flowchart(3),
    ]


def extended_suite() -> List[Flowchart]:
    """Paper figures plus extra programs for soundness sweeps."""
    return paper_figures() + [
        parity_program(),
        guarded_copy_program(),
        mixer_program(),
        max_program(),
        min_program(),
        nested_branch_program(),
        accumulate_program(),
        gcd_program(),
        countdown_pair_program(),
    ]


# -- dynamic-policy programs (van Delft/Hunt/Sands; Eggert et al.) ----------

def policy_tighten_program() -> Flowchart:
    """The canonical retroactive-revocation case.

        y := x1; policy allow()

    ``y`` was licensed when written (under the initial policy, if it
    admits 1), but the flow completes — at the halt — under the empty
    policy, so surveillance rejects whenever x1's label survives.  A
    fixed-policy static verdict that looks only at the initial J would
    unsoundly certify this pair; the epoch-aware pass must not.
    """
    return StructuredProgram(
        ["x1", "x2"],
        [
            Assign("y", var("x1")),
            PolicyChange(()),
        ],
        name="policy-tighten",
    ).compile()


def policy_loosen_program() -> Flowchart:
    """Mid-program grant: the final policy admits everything.

        y := x1 + x2; policy allow(1, 2)
    """
    return StructuredProgram(
        ["x1", "x2"],
        [
            Assign("y", var("x1") + var("x2")),
            PolicyChange((1, 2)),
        ],
        name="policy-loosen",
    ).compile()


def policy_branch_program() -> Flowchart:
    """The policy change itself sits under a secret-dependent branch.

        if x2 = 0 then policy allow(1, 2); y := x1

    Which policy is in force at the halt depends on x2 — the epoch
    fixpoint must track both in-force policies at the halt (DYN003).
    """
    return StructuredProgram(
        ["x1", "x2"],
        [
            If(var("x2").eq(0), [PolicyChange((1, 2))]),
            Assign("y", var("x1")),
        ],
        name="policy-branch",
    ).compile()


def policy_loop_program() -> Flowchart:
    """Epochs inside a loop: one policy change per iteration.

        r := x2; while r != 0 { policy allow(1); r := r - 1 }; y := x1
    """
    return StructuredProgram(
        ["x1", "x2"],
        [
            Assign("r", var("x2")),
            While(var("r").ne(0),
                  [PolicyChange((1,)), Assign("r", var("r") - 1)]),
            Assign("y", var("x1")),
        ],
        name="policy-loop",
    ).compile()


def downgrade_launder_program() -> Flowchart:
    """The designated declassifier in its simplest form.

        y := x1; downgrade y(1)

    The output *value* still carries x1, but the label is scrubbed
    along the admitted edge — dynamic surveillance accepts under every
    policy, while the noninterference baseline (Theorem 2's maximal
    mechanism) rejects: exactly the intransitive gap.
    """
    return StructuredProgram(
        ["x1", "x2"],
        [
            Assign("y", var("x1")),
            Downgrade("y", (1,)),
        ],
        name="downgrade-launder",
    ).compile()


def downgrade_guarded_program() -> Flowchart:
    """Declassification whose *occurrence* is secret-dependent.

        y := x1 + x2; if x1 > 0 then downgrade y(1)

    Step consistency (Eggert et al.) fails: whether the downgrade runs
    depends on x1 itself, so two runs equal up to the secret diverge in
    declassification behaviour — the unwinding pass flags INT002.
    """
    return StructuredProgram(
        ["x1", "x2"],
        [
            Assign("y", var("x1") + var("x2")),
            If(var("x1").gt(0), [Downgrade("y", (1,))]),
        ],
        name="downgrade-guarded",
    ).compile()


def downgrade_partial_program() -> Flowchart:
    """A downgrade that scrubs only one of two contributing secrets.

        y := x1 + x2; downgrade y(2)

    x1's label survives, so the pair is accepted only under policies
    admitting 1 — local respect (INT001) fires for the rest.
    """
    return StructuredProgram(
        ["x1", "x2"],
        [
            Assign("y", var("x1") + var("x2")),
            Downgrade("y", (2,)),
        ],
        name="downgrade-partial",
    ).compile()


def downgrade_then_tighten_program() -> Flowchart:
    """Both axes at once: declassify, then revoke the policy.

        y := x1; downgrade y(1); policy allow(2)

    The downgrade scrubs x1 before the halt, so even the empty-ish
    final policy accepts — completion-time checking composed with an
    intransitive edge.
    """
    return StructuredProgram(
        ["x1", "x2"],
        [
            Assign("y", var("x1")),
            Downgrade("y", (1,)),
            PolicyChange((2,)),
        ],
        name="downgrade-then-tighten",
    ).compile()


def dynamic_policy_suite() -> List[Flowchart]:
    """Programs exercising policy epochs and intransitive declassification.

    Two pair families for the precision harness: policy-change programs
    (epoch semantics) and downgrader programs (intransitive edges).
    """
    return [
        policy_tighten_program(),
        policy_loosen_program(),
        policy_branch_program(),
        policy_loop_program(),
        downgrade_launder_program(),
        downgrade_guarded_program(),
        downgrade_partial_program(),
        downgrade_then_tighten_program(),
    ]
