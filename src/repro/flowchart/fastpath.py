"""Compiled flowchart execution: source generation + ``compile()``.

The tree-walking interpreter in :mod:`repro.flowchart.interpreter` is
the hot path under every ∀-sweep in this reproduction: each grid point
of each policy of each flowchart bottoms out in recursive ``Expr.eval``
calls and per-box ``isinstance`` dispatch.  This module translates a
:class:`~repro.flowchart.program.Flowchart` once into a single native
Python function — expressions become Python expressions over local
variables, basic blocks become straight-line statement runs, control
flow becomes a small ``while``/``elif`` dispatch loop — and caches the
result per flowchart.

The Observability Postulate makes this a *semantics-preserving*
exercise, not just a fast one: running time (the box-count convention
documented in ``interpreter.py``) and the page-fault proxy (number of
distinct variables touched) are outputs of the program, so the compiled
function must reproduce ``(value, steps, faults)`` bit-for-bit,
including *when* a :class:`FuelExhaustedError` is raised.  The
differential test suite (``tests/flowchart/test_fastpath.py``) checks
this against the interpreter over the whole figure library.

Step-count fidelity
-------------------
The interpreter checks ``steps >= fuel`` before executing each box.  A
basic block of ``n`` boxes therefore completes iff
``steps_before + n <= fuel`` — so one comparison per block is exact,
*provided* no box in the block can raise from inside an expression.
Expressions are total except :class:`~repro.flowchart.expr.LoopExpr`
(whose own fuel can raise ``ExecutionError``); blocks containing such a
box fall back to per-box fuel checks so the interpreter's exception
(fuel vs. loop error) is reproduced exactly.

Fault-count fidelity
--------------------
``touched`` is a per-run union of statically known per-box variable
sets, so the compiler assigns every environment variable a bit and each
block a precomputed mask: one ``|=`` per executed block replaces two
set operations per executed box.  The mask→frozenset decoding is
memoised per compiled flowchart (runs revisit the same few masks).

Backends
--------
:func:`resolve_backend` decides between ``"compiled"`` and
``"interpreted"``; the ``REPRO_BACKEND`` environment variable overrides
the default, and ``as_program`` / the CLI accept an explicit argument
that overrides both.  :func:`run_flowchart` is the dispatching
entry point used by mechanism constructors.

Caching layers:

1. per-flowchart compiled function (weak-keyed — dies with the graph);
2. an LRU memo for repeated ``(flowchart, inputs, fuel)`` executions,
   shared by every ``as_program`` wrapper of the same flowchart
   (``REPRO_EXEC_CACHE`` sizes it; 0 disables).
"""

from __future__ import annotations

import os
import sys
import threading
import warnings
import weakref
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.errors import (ArityMismatchError, FuelExhaustedError,
                           ReproError, ValueCapExceededError)
from ..obs import runtime as _obs
from ..robustness.faults import default_value_cap, resolve_value_cap
from .boxes import (AssignBox, Box, DecisionBox, DowngradeBox, HaltBox,
                    NodeId, PolicyChangeBox, RecvBox, SendBox, StartBox)
from .expr import (And, BinOp, BoolConst, Compare, Const, Expr, Ite,
                   LoopExpr, Neg, Not, Or, Pred, Var)
from .interpreter import DEFAULT_FUEL, ExecutionResult, execute
from .program import Flowchart

#: Environment variable selecting the default execution backend.
BACKEND_ENV = "REPRO_BACKEND"

#: Environment variable sizing the (flowchart, inputs) result memo.
EXEC_CACHE_ENV = "REPRO_EXEC_CACHE"

_DEFAULT_BACKEND = "compiled"
_DEFAULT_MEMO_SIZE = 16384


# ---------------------------------------------------------------------------
# Execution tier registry
# ---------------------------------------------------------------------------

class Tier:
    """One registered execution backend: name, runner, description.

    A runner has the :func:`run_flowchart` calling convention:
    ``runner(flowchart, inputs, fuel, record_trace, capture_env,
    value_cap) -> ExecutionResult``.
    """

    __slots__ = ("name", "runner", "description")

    def __init__(self, name: str, runner, description: str) -> None:
        self.name = name
        self.runner = runner
        self.description = description

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Tier({self.name!r})"


_TIERS: "OrderedDict[str, Tier]" = OrderedDict()

#: Accepted spellings that map onto a registered tier.
BACKEND_ALIASES: Dict[str, str] = {"interp": "interpreted"}

#: Registered tier names, in registration order (rebound by
#: :func:`register_tier` so late registrations show up in messages).
BACKENDS: Tuple[str, ...] = ()


def register_tier(name: str, runner, description: str = "",
                  aliases: Sequence[str] = ()) -> Tier:
    """Register (or replace) an execution tier under ``name``."""
    global BACKENDS
    tier = Tier(name, runner, description)
    _TIERS[name] = tier
    for alias in aliases:
        BACKEND_ALIASES[alias] = name
    BACKENDS = tuple(_TIERS)
    return tier


def backend_tiers() -> Dict[str, Tier]:
    """A snapshot of the registry (name -> :class:`Tier`)."""
    return dict(_TIERS)


#: Cached ``REPRO_BACKEND`` read: ``(loaded, choice)``.  The env var is
#: a *process startup* default — reading it per call deep inside
#: ``run_flowchart`` meant one caller's ``os.environ`` mutation leaked
#: into every other caller sharing the process (the multi-tenant server
#: made this observable).  Mirrors ``_ENV_CAP_CACHE`` in
#: ``robustness.faults``.
_ENV_BACKEND_CACHE: Tuple[bool, Optional[str]] = (False, None)


def default_backend() -> str:
    """The backend used when no explicit choice is given.

    ``REPRO_BACKEND`` is read once and cached; call
    :func:`reset_backend_cache` after changing the env mid-process
    (tests, notebooks).  Long-running services should pass ``backend=``
    explicitly instead of mutating the environment.
    """
    global _ENV_BACKEND_CACHE
    loaded, cached = _ENV_BACKEND_CACHE
    if not loaded:
        cached = os.environ.get(BACKEND_ENV) or None
        _ENV_BACKEND_CACHE = (True, cached)
    return cached or _DEFAULT_BACKEND


def reset_backend_cache() -> None:
    """Forget the cached ``REPRO_BACKEND`` read (re-read on next use)."""
    global _ENV_BACKEND_CACHE
    _ENV_BACKEND_CACHE = (False, None)


def resolve_backend(backend: Optional[str] = None) -> str:
    """Resolve an explicit choice, the env override, or the default.

    Precedence: explicit argument > ``REPRO_BACKEND`` (cached at first
    use; see :func:`default_backend`) > ``"compiled"``.  Aliases
    (``interp``) resolve to their canonical tier name.
    """
    choice = backend or default_backend()
    choice = choice.strip().lower()
    choice = BACKEND_ALIASES.get(choice, choice)
    if choice not in _TIERS:
        raise ReproError(
            f"unknown execution backend {choice!r}; expected one of {BACKENDS}")
    return choice


# ---------------------------------------------------------------------------
# Expression / predicate code generation
# ---------------------------------------------------------------------------

def _total_floordiv(a: int, b: int) -> int:
    return a // b if b != 0 else 0


def _total_mod(a: int, b: int) -> int:
    return a % b if b != 0 else 0


_INLINE_BINOPS = frozenset("+-*|&^")


class _Codegen:
    """Translates one flowchart into Python source + exec namespace."""

    def __init__(self, flowchart: Flowchart) -> None:
        self.flowchart = flowchart
        # The environment variable set must match initial_environment():
        # program variables, read-but-never-assigned variables, the
        # output variable, and the inputs.
        names = set(flowchart.program_variables())
        names.update(name for name in flowchart.read_variables()
                     if name not in flowchart.input_variables)
        names.add(flowchart.output_variable)
        names.update(flowchart.input_variables)
        self.env_names: Tuple[str, ...] = tuple(sorted(names))
        self.local_of: Dict[str, str] = {
            name: f"_v{index}" for index, name in enumerate(self.env_names)}
        self.bit_of: Dict[str, int] = {
            name: index for index, name in enumerate(self.env_names)}
        self.namespace: Dict[str, object] = {
            "_idiv": _total_floordiv,
            "_imod": _total_mod,
            "min": min,
            "max": max,
            "int": int,
            "_FuelExhaustedError": FuelExhaustedError,
        }
        self._node_refs = 0

    # -- expressions ----------------------------------------------------

    def expr(self, node: Expr) -> str:
        if isinstance(node, Const):
            return f"({node.value!r})"
        if isinstance(node, Var):
            return self.local_of[node.name]
        if isinstance(node, BinOp):
            left, right = self.expr(node.left), self.expr(node.right)
            if node.op in _INLINE_BINOPS:
                return f"({left} {node.op} {right})"
            if node.op == "//":
                return f"_idiv({left}, {right})"
            if node.op == "%":
                return f"_imod({left}, {right})"
            # min / max: builtins evaluate arguments left-to-right,
            # matching the interpreter's evaluation order.
            return f"{node.op}({left}, {right})"
        if isinstance(node, Neg):
            return f"(-{self.expr(node.operand)})"
        if isinstance(node, Ite):
            return (f"({self.expr(node.then_value)} "
                    f"if {self.pred(node.predicate)} "
                    f"else {self.expr(node.else_value)})")
        if isinstance(node, LoopExpr):
            # A whole while-loop in expression position cannot be
            # inlined into a Python expression; delegate to the node's
            # own eval over a dict rebuilt from the locals it reads
            # (all of which are environment variables by construction).
            ref = f"_n{self._node_refs}"
            self._node_refs += 1
            self.namespace[ref] = node
            items = ", ".join(
                f"{name!r}: {self.local_of[name]}"
                for name in sorted(node.variables()))
            return f"{ref}.eval({{{items}}})"
        raise ReproError(
            f"cannot compile expression node {type(node).__name__}")

    def pred(self, node: Pred) -> str:
        if isinstance(node, Compare):
            return f"({self.expr(node.left)} {node.op} {self.expr(node.right)})"
        if isinstance(node, BoolConst):
            return "True" if node.value else "False"
        if isinstance(node, Not):
            return f"(not {self.pred(node.operand)})"
        if isinstance(node, And):
            return f"({self.pred(node.left)} and {self.pred(node.right)})"
        if isinstance(node, Or):
            return f"({self.pred(node.left)} or {self.pred(node.right)})"
        raise ReproError(
            f"cannot compile predicate node {type(node).__name__}")


def _contains_loop_expr(node) -> bool:
    """Whether an expression/predicate can raise from inside eval."""
    if isinstance(node, LoopExpr):
        return True
    if isinstance(node, (BinOp, Compare, And, Or)):
        return _contains_loop_expr(node.left) or _contains_loop_expr(node.right)
    if isinstance(node, (Neg, Not)):
        return _contains_loop_expr(node.operand)
    if isinstance(node, Ite):
        return (_contains_loop_expr(node.predicate)
                or _contains_loop_expr(node.then_value)
                or _contains_loop_expr(node.else_value))
    return False


def _box_hazardous(box: Box) -> bool:
    if isinstance(box, AssignBox):
        return _contains_loop_expr(box.expression)
    if isinstance(box, DecisionBox):
        return _contains_loop_expr(box.predicate)
    if isinstance(box, (SendBox, RecvBox)):
        # Channel boxes mutate queue state the generated code does not
        # model; the batch tier retires lanes reaching them to the
        # per-lane fallback, which defers to the interpreter.
        return True
    return False


def _box_touch_bits(box: Box, flowchart: Flowchart,
                    bit_of: Dict[str, int]) -> int:
    """The interpreter's per-box ``touched`` contribution, as a bitmask."""
    mask = 0
    if isinstance(box, HaltBox):
        mask |= 1 << bit_of[flowchart.output_variable]
    elif isinstance(box, AssignBox):
        mask |= 1 << bit_of[box.target]
        for name in box.expression.variables():
            mask |= 1 << bit_of[name]
    elif isinstance(box, DecisionBox):
        for name in box.predicate.variables():
            mask |= 1 << bit_of[name]
    elif isinstance(box, DowngradeBox):
        # Matches the interpreter: the relabel touches its variable.
        mask |= 1 << bit_of[box.variable]
    return mask


# ---------------------------------------------------------------------------
# Basic blocks
# ---------------------------------------------------------------------------

def _find_leaders(flowchart: Flowchart, entry: NodeId) -> List[NodeId]:
    """Block leaders: the entry, decision targets, and join points."""
    predecessors = flowchart.predecessors()
    leaders = [entry]
    seen = {entry}
    for node_id in flowchart.reachable_from(entry):
        box = flowchart.boxes[node_id]
        if isinstance(box, DecisionBox):
            for target in box.successors():
                if target not in seen:
                    seen.add(target)
                    leaders.append(target)
        if node_id not in seen and len(predecessors[node_id]) > 1:
            seen.add(node_id)
            leaders.append(node_id)
    return leaders


def _block_chain(flowchart: Flowchart, leader: NodeId,
                 leader_set: frozenset) -> Tuple[List[NodeId], Optional[NodeId]]:
    """Boxes of the block starting at ``leader`` plus its fallthrough.

    The chain extends through assignment (and degenerate start) boxes
    until it reaches a decision/halt box (included, ends the block) or
    the next box is a leader (excluded; the block falls through to it).
    """
    chain: List[NodeId] = []
    current = leader
    while True:
        chain.append(current)
        box = flowchart.boxes[current]
        if isinstance(box, (DecisionBox, HaltBox)):
            return chain, None
        nxt = box.successors()[0]
        if nxt in leader_set:
            return chain, nxt
        current = nxt


class CompiledFlowchart:
    """One flowchart's compiled executor plus its decode tables."""

    __slots__ = ("flowchart_name", "arity", "source", "function",
                 "env_names", "_mask_cache")

    def __init__(self, flowchart_name: str, arity: int, source: str,
                 function, env_names: Tuple[str, ...]) -> None:
        self.flowchart_name = flowchart_name
        self.arity = arity
        self.source = source
        self.function = function
        self.env_names = env_names
        self._mask_cache: Dict[int, frozenset] = {}

    def touched_set(self, mask: int) -> frozenset:
        """Decode a touch bitmask into the interpreter's frozenset."""
        try:
            return self._mask_cache[mask]
        except KeyError:
            names = frozenset(
                name for index, name in enumerate(self.env_names)
                if mask >> index & 1)
            self._mask_cache[mask] = names
            return names


def generate_source(flowchart: Flowchart) -> Tuple[str, Dict[str, object],
                                                   Tuple[str, ...]]:
    """Generate the executor source for a flowchart.

    Returns ``(source, namespace, env_names)``; exposed separately from
    :func:`compile_flowchart` so tests and the curious can inspect the
    generated code.
    """
    gen = _Codegen(flowchart)
    entry = flowchart.boxes[flowchart.start_id].successors()[0]
    leaders = _find_leaders(flowchart, entry)
    leader_set = frozenset(leaders)
    pc_of = {leader: index for index, leader in enumerate(leaders)}

    lines: List[str] = []
    emit = lines.append
    emit("def _compiled(_inputs, _fuel, _capture_env, _cap, _capb):")
    for name in gen.env_names:
        emit(f"    {gen.local_of[name]} = 0")
    for position, name in enumerate(flowchart.input_variables):
        emit(f"    {gen.local_of[name]} = int(_inputs[{position}])")
    emit("    _steps = 0")
    emit("    _touched = 0")
    emit("    _pc = 0")

    env_literal = "{" + ", ".join(
        f"{name!r}: {gen.local_of[name]}" for name in gen.env_names) + "}"

    def emit_body(boxes, fallthrough, indent: str, capped: bool) -> None:
        """One block body, in one of two fidelity modes.

        ``capped=False`` is today's fast shape: one exact fuel check for
        a whole non-hazardous block (see module docstring).  ``capped``
        mode interleaves the interpreter's per-box fuel check with the
        post-assignment cap check, because a block where box *i* would
        blow the cap and box *j > i* would blow the fuel must raise the
        same exception the interpreter raises — the bulk fuel precheck
        would report fuel where the interpreter reports the cap.
        """
        block_mask = 0
        for box in boxes:
            block_mask |= _box_touch_bits(box, flowchart, gen.bit_of)
        hazardous = any(_box_hazardous(box) for box in boxes)
        per_box = capped or hazardous

        if not per_box:
            emit(f"{indent}if _steps + {len(boxes)} > _fuel:")
            emit(f"{indent}    raise _fuel_error(_fuel, _inputs)")
            emit(f"{indent}_steps += {len(boxes)}")
            if block_mask:
                emit(f"{indent}_touched |= {block_mask}")

        for box in boxes:
            if per_box:
                box_mask = _box_touch_bits(box, flowchart, gen.bit_of)
                emit(f"{indent}if _steps >= _fuel:")
                emit(f"{indent}    raise _fuel_error(_fuel, _inputs)")
                emit(f"{indent}_steps += 1")
                if box_mask:
                    emit(f"{indent}_touched |= {box_mask}")
            if isinstance(box, AssignBox):
                target = gen.local_of[box.target]
                emit(f"{indent}{target} = {gen.expr(box.expression)}")
                if capped:
                    emit(f"{indent}if {target} >= _capb "
                         f"or {target} <= -_capb:")
                    emit(f"{indent}    raise _cap_error(_cap, _inputs)")
            elif isinstance(box, DecisionBox):
                true_pc = pc_of[box.true_next]
                false_pc = pc_of[box.false_next]
                emit(f"{indent}_pc = {true_pc} "
                     f"if {gen.pred(box.predicate)} else {false_pc}")
                emit(f"{indent}continue")
            elif isinstance(box, HaltBox):
                value = gen.local_of[flowchart.output_variable]
                emit(f"{indent}return ({value}, _steps, _touched, "
                     f"{env_literal} if _capture_env else None)")
            elif isinstance(box, (PolicyChangeBox, DowngradeBox)):
                # Label-layer effects only: no value change at this tier.
                # The step and touch accounting above already covers them.
                pass
            elif isinstance(box, StartBox):  # pragma: no cover - validation
                pass  # costs one step, touches nothing, falls through
        if fallthrough is not None:
            emit(f"{indent}_pc = {pc_of[fallthrough]}")
            emit(f"{indent}continue")

    def emit_machine(indent: str, capped: bool) -> None:
        emit(f"{indent}while True:")
        for leader in leaders:
            chain, fallthrough = _block_chain(flowchart, leader,
                                              leader_set)
            branch = "if" if pc_of[leader] == 0 else "elif"
            emit(f"{indent}    {branch} _pc == {pc_of[leader]}:")
            boxes = [flowchart.boxes[node_id] for node_id in chain]
            emit_body(boxes, fallthrough, indent + "        ", capped)

    # Two complete machines, selected once per call: the uncapped
    # default runs exactly the pre-guard bulk-checked shape (arm
    # dispatch inside the block loop measurably slows the hot kernel),
    # and a live value cap runs its per-box guarded twin.
    emit("    if _capb is None:")
    emit_machine("        ", capped=False)
    emit("    else:")
    emit_machine("        ", capped=True)

    source = "\n".join(lines) + "\n"

    name = flowchart.name

    def _fuel_error(fuel: int, inputs) -> FuelExhaustedError:
        return FuelExhaustedError(
            fuel, f"flowchart {name} exceeded {fuel} steps "
                  f"on input {tuple(inputs)!r}")

    def _cap_error(cap: int, inputs) -> ValueCapExceededError:
        return ValueCapExceededError(
            cap, f"flowchart {name} assigned a value wider than "
                 f"{cap} bits on input {tuple(inputs)!r}")

    gen.namespace["_fuel_error"] = _fuel_error
    gen.namespace["_cap_error"] = _cap_error
    return source, gen.namespace, gen.env_names


_compile_lock = threading.Lock()
_COMPILED: "weakref.WeakKeyDictionary[Flowchart, CompiledFlowchart]" = (
    weakref.WeakKeyDictionary())


def compile_flowchart(flowchart: Flowchart) -> CompiledFlowchart:
    """Compile (with per-flowchart caching) a flowchart to native code."""
    compiled = _COMPILED.get(flowchart)
    if compiled is not None:
        return compiled
    with _compile_lock:
        compiled = _COMPILED.get(flowchart)
        if compiled is not None:
            return compiled
        source, namespace, env_names = generate_source(flowchart)
        code = compile(source, f"<fastpath:{flowchart.name}>", "exec")
        exec(code, namespace)
        compiled = CompiledFlowchart(
            flowchart.name, flowchart.arity, source,
            namespace["_compiled"], env_names)
        _COMPILED[flowchart] = compiled
        return compiled


# ---------------------------------------------------------------------------
# Result memo (LRU over (flowchart, inputs, fuel))
# ---------------------------------------------------------------------------

class _LRUMemo:
    """A small thread-safe LRU map; maxsize <= 0 disables it."""

    def __init__(self, maxsize: int) -> None:
        self.maxsize = maxsize
        self._data: "OrderedDict" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key):
        if self.maxsize <= 0:
            return None
        with self._lock:
            try:
                value = self._data.pop(key)
            except KeyError:
                self.misses += 1
                return None
            self._data[key] = value
            self.hits += 1
            return value

    def put(self, key, value) -> None:
        if self.maxsize <= 0:
            return
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()
            self.hits = 0
            self.misses = 0

    def resize(self, maxsize: int) -> None:
        """Change capacity in place, evicting LRU entries that no
        longer fit.  Hit/miss counters survive a resize; shrinking to
        ``<= 0`` disables the memo and drops its contents."""
        with self._lock:
            self.maxsize = maxsize
            if maxsize <= 0:
                self._data.clear()
            else:
                while len(self._data) > maxsize:
                    self._data.popitem(last=False)

    def stats(self) -> Dict[str, int]:
        """One consistent snapshot of size/maxsize/hits/misses.

        Taken under the memo lock so a concurrent ``put`` mid-trim can
        never be observed as ``size > maxsize`` (the unlocked reads in
        the old ``memo_stats()`` could tear exactly that way under the
        server's thread pool).
        """
        with self._lock:
            return {"size": len(self._data), "maxsize": self.maxsize,
                    "hits": self.hits, "misses": self.misses}

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)


def _memo_size() -> int:
    """The execution-memo capacity from ``REPRO_EXEC_CACHE``.

    A malformed value (not an integer) or a negative size earns a
    :class:`RuntimeWarning` and falls back to the default — silently
    honouring garbage here used to mean a typo like ``RERPO=...`` or
    ``-1`` quietly resized (or wedged) the memo.  ``0`` is valid and
    disables memoisation.
    """
    raw = os.environ.get(EXEC_CACHE_ENV)
    if raw is None:
        return _DEFAULT_MEMO_SIZE
    try:
        size = int(raw)
    except ValueError:
        warnings.warn(
            f"{EXEC_CACHE_ENV}={raw!r} is not an integer; using the "
            f"default memo size {_DEFAULT_MEMO_SIZE}", RuntimeWarning,
            stacklevel=2)
        return _DEFAULT_MEMO_SIZE
    if size < 0:
        warnings.warn(
            f"{EXEC_CACHE_ENV}={raw!r} is negative; memo sizes must be "
            f">= 0 (0 disables), using the default "
            f"{_DEFAULT_MEMO_SIZE}", RuntimeWarning, stacklevel=2)
        return _DEFAULT_MEMO_SIZE
    return size


#: Memo for capture-free executions shared across Program wrappers.
_RESULT_MEMO = _LRUMemo(_memo_size())


def reset_exec_cache() -> None:
    """Re-read ``REPRO_EXEC_CACHE`` and resize the result memo.

    ``_RESULT_MEMO`` is sized once at import, so setting the env var
    afterwards (tests, notebooks, server startup) was silently ignored.
    Mirrors :func:`repro.robustness.faults.reset_value_cap_cache`:
    call it after any mid-process env change you want honoured.
    """
    _RESULT_MEMO.resize(_memo_size())


def clear_result_memo() -> None:
    """Drop memoised execution results (benchmarks call this per rep)."""
    _RESULT_MEMO.clear()
    batchpath = sys.modules.get(__package__ + ".batchpath")
    if batchpath is not None:
        batchpath.clear_rows_memo()


def clear_caches() -> None:
    """Drop compiled functions *and* memoised results, in every tier."""
    _RESULT_MEMO.clear()
    with _compile_lock:
        _COMPILED.clear()
    batchpath = sys.modules.get(__package__ + ".batchpath")
    if batchpath is not None:
        batchpath.clear_batch_caches()


def memo_stats() -> Dict[str, int]:
    """Execution-cache counters across tiers.

    The original four keys cover the compiled tier's result memo; the
    ``batch_*`` keys cover the batch tier's compile cache, rows memo,
    and lifetime lane-fallback total.
    """
    from . import batchpath
    stats = _RESULT_MEMO.stats()
    for key, value in batchpath.batch_stats().items():
        stats[f"batch_{key}"] = value
    return stats


def export_memo_stats() -> Dict[str, int]:
    """Push :func:`memo_stats` into the obs registry as gauges.

    The per-run ``memo.exec.hits``/``misses`` counters only cover runs
    executed while observability was on; these gauges snapshot the
    memo's lifetime totals (the CLI's ``repro metrics`` calls this
    before rendering).  Batch-tier keys export under ``batch.*``.
    """
    stats = memo_stats()
    for key, value in stats.items():
        if key.startswith("batch_"):
            _obs.set_gauge("batch." + key[len("batch_"):], value)
        else:
            _obs.set_gauge(f"memo.exec.{key}", value)
    return stats


# ---------------------------------------------------------------------------
# Execution entry points
# ---------------------------------------------------------------------------

def execute_compiled(flowchart: Flowchart, inputs: Sequence[int],
                     fuel: int = DEFAULT_FUEL,
                     record_trace: bool = False,
                     capture_env: bool = False,
                     memo: bool = True,
                     value_cap: Optional[int] = None) -> ExecutionResult:
    """Compiled-backend twin of :func:`~repro.flowchart.interpreter.execute`.

    ``record_trace`` needs per-box identities the compiled code no
    longer has, so tracing runs fall back to the interpreter (the trace
    is a debugging observable, not part of the Section 2 output).
    """
    if record_trace:
        return execute(flowchart, inputs, fuel=fuel, record_trace=True,
                       capture_env=capture_env, value_cap=value_cap)
    if flowchart.has_channels():
        # Channel queues are runtime state the generated straight-line
        # code does not model; the interpreter is the reference
        # semantics for send/recv, so single-node runs stay
        # bit-identical across every tier by construction.
        return execute(flowchart, inputs, fuel=fuel,
                       capture_env=capture_env, value_cap=value_cap)
    if len(inputs) != flowchart.arity:
        raise ArityMismatchError(
            f"flowchart {flowchart.name} takes {flowchart.arity} inputs, "
            f"got {len(inputs)}"
        )
    cap = (default_value_cap() if value_cap is None
           else resolve_value_cap(value_cap))
    if cap is None:
        bound = None
        # The uncapped key keeps the pre-guard 3-tuple shape: a capped
        # entry always carries its cap, so the shapes never collide and
        # the hot default pays no extra hashing.
        key = ((flowchart, tuple(inputs), fuel)
               if memo and not capture_env else None)
    else:
        bound = 1 << cap
        key = ((flowchart, tuple(inputs), fuel, cap)
               if memo and not capture_env else None)
    if key is not None:
        cached = _RESULT_MEMO.get(key)
        if cached is not None:
            if _obs.active:
                _obs.record_run("compiled", flowchart.name, cached.steps,
                                memo_hit=True)
            return cached
    compiled = compile_flowchart(flowchart)
    if _obs.active:
        try:
            value, steps, mask, env = compiled.function(
                tuple(inputs), fuel, capture_env, cap, bound)
        except FuelExhaustedError as error:
            _obs.record_fuel_exhausted(flowchart.name, error.fuel)
            raise
        except ValueCapExceededError as error:
            _obs.record_value_cap_exceeded(flowchart.name, error.cap)
            raise
    else:
        value, steps, mask, env = compiled.function(
            tuple(inputs), fuel, capture_env, cap, bound)
    result = ExecutionResult(value, steps, None, env,
                             compiled.touched_set(mask))
    if key is not None:
        _RESULT_MEMO.put(key, result)
    if _obs.active:
        _obs.record_run("compiled", flowchart.name, steps,
                        memo_hit=False if key is not None else None)
    return result


def run_flowchart(flowchart: Flowchart, inputs: Sequence[int],
                  fuel: int = DEFAULT_FUEL,
                  record_trace: bool = False,
                  capture_env: bool = False,
                  backend: Optional[str] = None,
                  value_cap: Optional[int] = None) -> ExecutionResult:
    """Execute via whichever tier :func:`resolve_backend` selects."""
    choice = resolve_backend(backend)
    if choice == "compiled":  # the hot default skips the registry lookup
        return execute_compiled(flowchart, inputs, fuel=fuel,
                                record_trace=record_trace,
                                capture_env=capture_env,
                                value_cap=value_cap)
    return _TIERS[choice].runner(flowchart, inputs, fuel, record_trace,
                                 capture_env, value_cap)


def _run_compiled_tier(flowchart, inputs, fuel, record_trace, capture_env,
                       value_cap) -> ExecutionResult:
    return execute_compiled(flowchart, inputs, fuel=fuel,
                            record_trace=record_trace,
                            capture_env=capture_env, value_cap=value_cap)


def _run_interpreted_tier(flowchart, inputs, fuel, record_trace,
                          capture_env, value_cap) -> ExecutionResult:
    return execute(flowchart, inputs, fuel=fuel, record_trace=record_trace,
                   capture_env=capture_env, value_cap=value_cap)


def _run_batch_tier(flowchart, inputs, fuel, record_trace, capture_env,
                    value_cap) -> ExecutionResult:
    from .batchpath import execute_batch_single
    return execute_batch_single(flowchart, inputs, fuel=fuel,
                                record_trace=record_trace,
                                capture_env=capture_env,
                                value_cap=value_cap)


register_tier("compiled", _run_compiled_tier,
              "per-point codegen with an LRU result memo")
register_tier("interpreted", _run_interpreted_tier,
              "tree-walking reference interpreter", aliases=("interp",))
register_tier("batch", _run_batch_tier,
              "structure-of-arrays evaluator over whole grids")
