"""The four box kinds of Section 3 flowcharts.

    *A flowchart F is a finite connected directed graph whose nodes are
    boxes of the forms: (1) Start box, (2) Decision box, (3) Assignment
    box, (4) Halt box.*

Boxes are immutable records; the graph structure (which box follows
which) lives in the box's successor ids, and wellformedness is enforced
by :class:`repro.flowchart.program.Flowchart`.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Optional, Tuple

from ..core.errors import FlowchartError
from .expr import Expr, Pred

NodeId = str


class Box:
    """Base class for flowchart boxes."""

    def successors(self) -> Tuple[NodeId, ...]:
        raise NotImplementedError

    def read_variables(self) -> FrozenSet[str]:
        """Variables this box reads (empty for start/halt)."""
        return frozenset()

    def written_variable(self) -> Optional[str]:
        """The variable this box writes, if any."""
        return None


class StartBox(Box):
    """The unique entry box; execution begins here.

    Initialises program and output variables to 0 and each input
    variable ``x_i`` to the i-th input value.
    """

    __slots__ = ("next",)

    def __init__(self, next: NodeId) -> None:
        self.next = next

    def successors(self) -> Tuple[NodeId, ...]:
        return (self.next,)

    def __repr__(self) -> str:
        return f"StartBox(-> {self.next})"


class DecisionBox(Box):
    """A two-way branch on a predicate ``B(w1, ..., wp)``."""

    __slots__ = ("predicate", "true_next", "false_next")

    def __init__(self, predicate: Pred, true_next: NodeId,
                 false_next: NodeId) -> None:
        if not isinstance(predicate, Pred):
            raise FlowchartError(
                f"decision box needs a Pred, got {type(predicate).__name__}"
            )
        self.predicate = predicate
        self.true_next = true_next
        self.false_next = false_next

    def successors(self) -> Tuple[NodeId, ...]:
        return (self.true_next, self.false_next)

    def read_variables(self) -> FrozenSet[str]:
        return self.predicate.variables()

    def __repr__(self) -> str:
        return (f"DecisionBox({self.predicate!r} ? -> {self.true_next} "
                f": -> {self.false_next})")


class AssignBox(Box):
    """An assignment ``v <- E(w1, ..., wp)``."""

    __slots__ = ("target", "expression", "next")

    def __init__(self, target: str, expression: Expr, next: NodeId) -> None:
        if not isinstance(expression, Expr):
            raise FlowchartError(
                f"assignment box needs an Expr, got {type(expression).__name__}"
            )
        if not target or not isinstance(target, str):
            raise FlowchartError(f"bad assignment target {target!r}")
        self.target = target
        self.expression = expression
        self.next = next

    def successors(self) -> Tuple[NodeId, ...]:
        return (self.next,)

    def read_variables(self) -> FrozenSet[str]:
        return self.expression.variables()

    def written_variable(self) -> Optional[str]:
        return self.target

    def __repr__(self) -> str:
        return f"AssignBox({self.target} <- {self.expression!r} -> {self.next})"


class HaltBox(Box):
    """Terminates execution; the program's value is the output variable."""

    __slots__ = ()

    def successors(self) -> Tuple[NodeId, ...]:
        return ()

    def __repr__(self) -> str:
        return "HaltBox()"


class PolicyChangeBox(Box):
    """Installs a new policy mid-program, opening a new policy *epoch*.

    ``allowed`` is the set of 1-based input indices the new policy
    admits; passing control through this box replaces the policy in
    force for every subsequent surveillance check (van Delft/Hunt/
    Sands: a flow is judged by the policy in force when it
    *completes*, not the one under which it was written).
    """

    __slots__ = ("allowed", "next")

    def __init__(self, allowed: Iterable[int], next: NodeId) -> None:
        indices = tuple(sorted(set(int(i) for i in allowed)))
        if any(i < 1 for i in indices):
            raise FlowchartError(
                f"policy change admits non-positive input index: {indices}"
            )
        self.allowed: Tuple[int, ...] = indices
        self.next = next

    def successors(self) -> Tuple[NodeId, ...]:
        return (self.next,)

    def __repr__(self) -> str:
        return f"PolicyChangeBox(allow{self.allowed} -> {self.next})"


class DowngradeBox(Box):
    """A designated declassifier: strips surveillance indices from one
    variable's label along an admitted intransitive edge.

    ``variable`` is relabeled by removing ``indices`` (1-based input
    positions) from its surveillance label.  The value is untouched —
    only the label changes, which is exactly what makes the node the
    locus of the intransitive-noninterference unwinding obligations
    (Eggert et al.): the *occurrence* of the downgrade must not itself
    leak (step consistency), and secrets may reach the observer only
    through such an edge (local respect).
    """

    __slots__ = ("variable", "indices", "next")

    def __init__(self, variable: str, indices: Iterable[int],
                 next: NodeId) -> None:
        if not variable or not isinstance(variable, str):
            raise FlowchartError(f"bad downgrade variable {variable!r}")
        cleaned = tuple(sorted(set(int(i) for i in indices)))
        if not cleaned:
            raise FlowchartError("downgrade must name at least one index")
        if any(i < 1 for i in cleaned):
            raise FlowchartError(
                f"downgrade names non-positive input index: {cleaned}"
            )
        self.variable = variable
        self.indices: Tuple[int, ...] = cleaned
        self.next = next

    def successors(self) -> Tuple[NodeId, ...]:
        return (self.next,)

    def read_variables(self) -> FrozenSet[str]:
        # The downgraded variable is "read" in the labeling sense: its
        # label is inspected and rewritten.  Declaring the read also
        # guarantees the variable exists in every engine's environment.
        return frozenset((self.variable,))

    def __repr__(self) -> str:
        return (f"DowngradeBox({self.variable} \\ {self.indices} "
                f"-> {self.next})")


def _check_channel(channel: str, what: str) -> None:
    if not channel or not isinstance(channel, str):
        raise FlowchartError(f"bad {what} channel {channel!r}")
    if not (channel[0].isalpha() or channel[0] == "_") or not all(
            ch.isalnum() or ch == "_" for ch in channel):
        raise FlowchartError(
            f"{what} channel must be an identifier, got {channel!r}")


class SendBox(Box):
    """``send ch(v)``: enqueue ``v``'s value onto typed channel ``ch``.

    Channels are unbounded FIFO queues distinct from the variable
    namespace.  Under surveillance the enqueued message carries the
    *joined* label ``v̄ ∪ C̄`` — labels migrate inside the envelope, the
    soundness requirement of the distributed setting (Almeida Matos &
    Cederquist): a receive on another node learns everything the send
    site knew, including its control context.
    """

    __slots__ = ("channel", "variable", "next")

    def __init__(self, channel: str, variable: str, next: NodeId) -> None:
        _check_channel(channel, "send")
        if not variable or not isinstance(variable, str):
            raise FlowchartError(f"bad send variable {variable!r}")
        self.channel = channel
        self.variable = variable
        self.next = next

    def successors(self) -> Tuple[NodeId, ...]:
        return (self.next,)

    def read_variables(self) -> FrozenSet[str]:
        return frozenset((self.variable,))

    def __repr__(self) -> str:
        return f"SendBox({self.channel}({self.variable}) -> {self.next})"


class RecvBox(Box):
    """``recv ch(v)``: dequeue the oldest message on ``ch`` into ``v``.

    Receiving from a channel with no pending message is the declared
    fault ``MessageError(empty:ch)`` — totalized as ``Λ!msg[empty:ch]``
    — *except* in a distributed run where matching sends are still in
    flight, in which case the node parks until the message arrives (the
    send count travels with the control token, so "in flight" versus
    "never sent" is decided deterministically).
    """

    __slots__ = ("channel", "variable", "next")

    def __init__(self, channel: str, variable: str, next: NodeId) -> None:
        _check_channel(channel, "recv")
        if not variable or not isinstance(variable, str):
            raise FlowchartError(f"bad recv variable {variable!r}")
        self.channel = channel
        self.variable = variable
        self.next = next

    def successors(self) -> Tuple[NodeId, ...]:
        return (self.next,)

    def written_variable(self) -> Optional[str]:
        return self.variable

    def __repr__(self) -> str:
        return f"RecvBox({self.channel}({self.variable}) -> {self.next})"
