"""A structured front-end: if/while programs that compile to flowcharts.

Section 4's transforms are stated on "higher level language constructs"
(*if then else*, *while*) recognised inside flowcharts.  Authoring those
examples is far easier in a structured AST, so we provide one —
``Assign``, ``If``, ``While``, ``Skip`` — and a compiler to the box
graph.  The compiler is also what the static certifier
(:mod:`repro.staticflow.certify`) analyses, since Denning-style
certification is defined on structured programs.

Compilation is the classic backwards scheme: each statement is compiled
against the node id of its continuation.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.errors import FlowchartError
from .boxes import (AssignBox, Box, DecisionBox, DowngradeBox, HaltBox,
                    NodeId, PolicyChangeBox, RecvBox, SendBox, StartBox)
from .expr import Expr, Pred
from .program import Flowchart


class Stmt:
    """Base class for structured statements."""


class Skip(Stmt):
    """No operation (compiles to nothing)."""

    def __repr__(self) -> str:
        return "Skip()"


class Assign(Stmt):
    """``target := expression``."""

    __slots__ = ("target", "expression")

    def __init__(self, target: str, expression: Expr) -> None:
        self.target = target
        self.expression = expression

    def __repr__(self) -> str:
        return f"Assign({self.target} := {self.expression!r})"


class If(Stmt):
    """``if predicate then then_body else else_body``."""

    __slots__ = ("predicate", "then_body", "else_body")

    def __init__(self, predicate: Pred, then_body: Sequence[Stmt],
                 else_body: Sequence[Stmt] = ()) -> None:
        self.predicate = predicate
        self.then_body = tuple(then_body)
        self.else_body = tuple(else_body)

    def __repr__(self) -> str:
        return (f"If({self.predicate!r}, then={list(self.then_body)}, "
                f"else={list(self.else_body)})")


class PolicyChange(Stmt):
    """``policy allow(i, ...)`` — installs a new policy, opening an epoch."""

    __slots__ = ("allowed",)

    def __init__(self, allowed: Sequence[int]) -> None:
        self.allowed = tuple(sorted(set(int(i) for i in allowed)))

    def __repr__(self) -> str:
        return f"PolicyChange(allow{self.allowed})"


class Downgrade(Stmt):
    """``downgrade v(i, ...)`` — strips indices from ``v``'s label."""

    __slots__ = ("variable", "indices")

    def __init__(self, variable: str, indices: Sequence[int]) -> None:
        self.variable = variable
        self.indices = tuple(sorted(set(int(i) for i in indices)))

    def __repr__(self) -> str:
        return f"Downgrade({self.variable} \\ {self.indices})"


class Send(Stmt):
    """``send ch(v)`` — enqueue ``v``'s value (and label) on channel ``ch``."""

    __slots__ = ("channel", "variable")

    def __init__(self, channel: str, variable: str) -> None:
        self.channel = channel
        self.variable = variable

    def __repr__(self) -> str:
        return f"Send({self.channel}({self.variable}))"


class Recv(Stmt):
    """``recv ch(v)`` — dequeue the oldest message on ``ch`` into ``v``."""

    __slots__ = ("channel", "variable")

    def __init__(self, channel: str, variable: str) -> None:
        self.channel = channel
        self.variable = variable

    def __repr__(self) -> str:
        return f"Recv({self.channel}({self.variable}))"


class While(Stmt):
    """``while predicate do body``."""

    __slots__ = ("predicate", "body")

    def __init__(self, predicate: Pred, body: Sequence[Stmt]) -> None:
        self.predicate = predicate
        self.body = tuple(body)

    def __repr__(self) -> str:
        return f"While({self.predicate!r}, body={list(self.body)})"


Body = Sequence[Stmt]


class StructuredProgram:
    """A structured program: a statement list plus variable declarations.

    The program's value is the output variable when the statement list
    finishes (an implicit halt).
    """

    def __init__(self, input_variables: Sequence[str], body: Body,
                 output_variable: str = "y", name: str = "P") -> None:
        self.input_variables = tuple(input_variables)
        self.body = tuple(body)
        self.output_variable = output_variable
        self.name = name

    def __repr__(self) -> str:
        return (f"StructuredProgram({self.name}, inputs="
                f"{list(self.input_variables)}, {len(self.body)} stmts)")

    def compile(self) -> Flowchart:
        """Lower to a Section 3 flowchart."""
        return compile_structured(self)


def compile_structured(program: StructuredProgram) -> Flowchart:
    """Compile a structured program to a flowchart.

    Node ids are deterministic (``s0``, ``s1``, ...) so compiled
    flowcharts are stable across runs — tests rely on this.
    """
    counter = itertools.count()
    boxes: Dict[NodeId, Box] = {}

    def fresh() -> NodeId:
        return f"s{next(counter)}"

    halt_id = fresh()
    boxes[halt_id] = HaltBox()

    def compile_body(body: Tuple[Stmt, ...], continuation: NodeId) -> NodeId:
        """Entry node id of ``body`` wired to ``continuation``."""
        entry = continuation
        for statement in reversed(body):
            entry = compile_stmt(statement, entry)
        return entry

    def compile_stmt(statement: Stmt, continuation: NodeId) -> NodeId:
        if isinstance(statement, Skip):
            return continuation
        if isinstance(statement, Assign):
            node_id = fresh()
            boxes[node_id] = AssignBox(statement.target, statement.expression,
                                       continuation)
            return node_id
        if isinstance(statement, PolicyChange):
            node_id = fresh()
            boxes[node_id] = PolicyChangeBox(statement.allowed, continuation)
            return node_id
        if isinstance(statement, Downgrade):
            node_id = fresh()
            boxes[node_id] = DowngradeBox(statement.variable,
                                          statement.indices, continuation)
            return node_id
        if isinstance(statement, Send):
            node_id = fresh()
            boxes[node_id] = SendBox(statement.channel, statement.variable,
                                     continuation)
            return node_id
        if isinstance(statement, Recv):
            node_id = fresh()
            boxes[node_id] = RecvBox(statement.channel, statement.variable,
                                     continuation)
            return node_id
        if isinstance(statement, If):
            then_entry = compile_body(statement.then_body, continuation)
            else_entry = compile_body(statement.else_body, continuation)
            node_id = fresh()
            boxes[node_id] = DecisionBox(statement.predicate, then_entry,
                                         else_entry)
            return node_id
        if isinstance(statement, While):
            # The decision box must exist before the body can jump back
            # to it; allocate its id first and patch after.
            decision_id = fresh()
            body_entry = compile_body(statement.body, decision_id)
            boxes[decision_id] = DecisionBox(statement.predicate, body_entry,
                                             continuation)
            return decision_id
        raise FlowchartError(f"unknown statement {statement!r}")

    first = compile_body(program.body, halt_id)
    start_id = fresh()
    boxes[start_id] = StartBox(first)
    return Flowchart(boxes, program.input_variables,
                     program.output_variable, name=program.name)


def seq(*statements: Union[Stmt, Sequence[Stmt]]) -> List[Stmt]:
    """Flatten nested statement sequences (authoring convenience)."""
    result: List[Stmt] = []
    for statement in statements:
        if isinstance(statement, Stmt):
            result.append(statement)
        else:
            result.extend(seq(*statement))
    return result
