"""Graphviz/DOT export — the paper's figures, regenerable.

The paper presents its programs as flowchart drawings; :func:`to_dot`
renders any :class:`~repro.flowchart.program.Flowchart` (including
instrumented ones) as DOT text, with the paper's visual conventions:
ovals for start/halt, diamonds for decisions, boxes for assignments,
and labelled TRUE/FALSE arcs.  No graphviz binary is required — the
output is plain text, suitable for committing alongside docs or piping
to ``dot -Tsvg`` where available.
"""

from __future__ import annotations

from typing import List

from .boxes import (AssignBox, DecisionBox, DowngradeBox, HaltBox,
                    PolicyChangeBox, RecvBox, SendBox, StartBox)
from .program import Flowchart


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def to_dot(flowchart: Flowchart, include_name: bool = True) -> str:
    """Render a flowchart as a DOT digraph.

    Nodes are emitted in a deterministic order (reachability order from
    the start box) so diffs are stable.
    """
    lines: List[str] = ["digraph {"]
    if include_name:
        lines.append(f'    label="{_escape(flowchart.name)}";')
        lines.append("    labelloc=t;")
    lines.append("    node [fontname=monospace];")

    order = flowchart.reachable_from(flowchart.start_id)
    for node_id in order:
        box = flowchart.boxes[node_id]
        safe = _escape(str(node_id))
        if isinstance(box, StartBox):
            lines.append(f'    "{safe}" [shape=oval, label="START"];')
        elif isinstance(box, HaltBox):
            lines.append(f'    "{safe}" [shape=oval, label="HALT"];')
        elif isinstance(box, DecisionBox):
            label = _escape(repr(box.predicate))
            lines.append(f'    "{safe}" [shape=diamond, label="{label}"];')
        elif isinstance(box, AssignBox):
            label = _escape(f"{box.target} := {box.expression!r}")
            lines.append(f'    "{safe}" [shape=box, label="{label}"];')
        elif isinstance(box, PolicyChangeBox):
            indices = ", ".join(str(i) for i in box.allowed)
            label = _escape(f"policy allow({indices})")
            lines.append(f'    "{safe}" [shape=hexagon, label="{label}"];')
        elif isinstance(box, DowngradeBox):
            indices = ", ".join(str(i) for i in box.indices)
            label = _escape(f"downgrade {box.variable}({indices})")
            lines.append(
                f'    "{safe}" [shape=parallelogram, label="{label}"];')
        elif isinstance(box, SendBox):
            label = _escape(f"send {box.channel}({box.variable})")
            lines.append(f'    "{safe}" [shape=cds, label="{label}"];')
        elif isinstance(box, RecvBox):
            label = _escape(f"recv {box.channel}({box.variable})")
            lines.append(f'    "{safe}" [shape=cds, label="{label}"];')

    for node_id in order:
        box = flowchart.boxes[node_id]
        safe = _escape(str(node_id))
        if isinstance(box, DecisionBox):
            lines.append(f'    "{safe}" -> "{_escape(str(box.true_next))}"'
                         ' [label="TRUE"];')
            lines.append(f'    "{safe}" -> "{_escape(str(box.false_next))}"'
                         ' [label="FALSE"];')
        else:
            for successor in box.successors():
                lines.append(
                    f'    "{safe}" -> "{_escape(str(successor))}";')
    lines.append("}")
    return "\n".join(lines)
