"""Control-flow analyses over flowcharts.

Section 4's transforms operate on "single-entry and single-exit
structures" recognised inside a flowchart.  This module provides the
graph machinery to find them:

- dominators and postdominators (iterative dataflow),
- if-then-else region discovery (:func:`find_ite_regions`): a decision
  whose two arms are straight-line assignment chains reconverging at a
  common join,
- while region discovery (:func:`find_while_regions`): a decision with a
  straight-line assignment chain looping back to it.

The region classes carry exactly the information the transforms in
:mod:`repro.flowchart.transforms` need: the decision id, the arm chains
(lists of assignment-box ids), and the join/exit node.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from .boxes import AssignBox, DecisionBox, NodeId
from .program import Flowchart


def dominators(flowchart: Flowchart) -> Dict[NodeId, FrozenSet[NodeId]]:
    """Classic iterative dominator analysis.

    ``dominators(fc)[n]`` is the set of nodes on every path from the
    start box to ``n`` (including ``n`` itself).
    """
    nodes = flowchart.reachable_from(flowchart.start_id)
    all_nodes = frozenset(nodes)
    preds = flowchart.predecessors()
    dom: Dict[NodeId, FrozenSet[NodeId]] = {n: all_nodes for n in nodes}
    dom[flowchart.start_id] = frozenset((flowchart.start_id,))

    changed = True
    while changed:
        changed = False
        for node in nodes:
            if node == flowchart.start_id:
                continue
            incoming = [dom[p] for p in preds[node] if p in dom]
            if incoming:
                new = frozenset.intersection(*incoming) | {node}
            else:  # pragma: no cover - unreachable filtered by validation
                new = frozenset((node,))
            if new != dom[node]:
                dom[node] = new
                changed = True
    return dom


def postdominators(flowchart: Flowchart) -> Dict[NodeId, FrozenSet[NodeId]]:
    """Postdominators w.r.t. the set of halt boxes.

    ``postdominators(fc)[n]`` is the set of nodes on every path from
    ``n`` to any halt box.  With multiple halt boxes we use a virtual
    exit, which never appears in results.
    """
    nodes = flowchart.reachable_from(flowchart.start_id)
    all_nodes = frozenset(nodes)
    halts = set(flowchart.halt_ids())
    successors = {n: tuple(flowchart.boxes[n].successors()) for n in nodes}

    pdom: Dict[NodeId, FrozenSet[NodeId]] = {}
    for node in nodes:
        pdom[node] = frozenset((node,)) if node in halts else all_nodes

    changed = True
    while changed:
        changed = False
        for node in nodes:
            if node in halts:
                continue
            outgoing = [pdom[s] for s in successors[node]]
            if outgoing:
                new = frozenset.intersection(*outgoing) | {node}
            else:  # pragma: no cover - only halts lack successors
                new = frozenset((node,))
            if new != pdom[node]:
                pdom[node] = new
                changed = True
    return pdom


def immediate_postdominator(flowchart: Flowchart, node: NodeId,
                            pdom: Optional[Dict[NodeId, FrozenSet[NodeId]]] = None
                            ) -> Optional[NodeId]:
    """The closest strict postdominator of ``node`` (None for halts).

    ``pdom`` may supply a precomputed :func:`postdominators` result so
    callers iterating over many nodes avoid recomputing the fixpoint.
    """
    if pdom is None:
        pdom = postdominators(flowchart)
    candidates = pdom[node] - {node}
    if not candidates:
        return None
    # The immediate postdominator is the closest strict postdominator:
    # the candidate that every other candidate postdominates.
    for candidate in candidates:
        if all(other in pdom[candidate] or candidate == other
               for other in candidates):
            return candidate
    return None  # pragma: no cover - exists for reducible graphs


def _follow_assignment_chain(flowchart: Flowchart, start: NodeId,
                             stop_nodes: Set[NodeId],
                             limit: int = 1000) -> Optional[Tuple[List[NodeId], NodeId]]:
    """Walk a straight-line chain of assignment boxes from ``start``.

    Returns ``(chain, terminator)`` where ``terminator`` is the first
    non-assignment node or a node in ``stop_nodes``; None if the walk
    leaves straight-line territory (hits a decision inside the chain) or
    exceeds ``limit``.
    """
    chain: List[NodeId] = []
    current = start
    for _ in range(limit):
        if current in stop_nodes:
            return chain, current
        box = flowchart.boxes[current]
        if isinstance(box, AssignBox):
            chain.append(current)
            current = box.next
            continue
        # Decision/halt terminates the chain.
        return chain, current
    return None


class IteRegion:
    """An if-then-else structure: decision + two assignment arms + join."""

    def __init__(self, decision: NodeId, then_chain: List[NodeId],
                 else_chain: List[NodeId], join: NodeId) -> None:
        self.decision = decision
        self.then_chain = list(then_chain)
        self.else_chain = list(else_chain)
        self.join = join

    def __repr__(self) -> str:
        return (f"IteRegion(decision={self.decision}, "
                f"then={self.then_chain}, else={self.else_chain}, "
                f"join={self.join})")

    def interior(self) -> Set[NodeId]:
        return {self.decision, *self.then_chain, *self.else_chain}


class WhileRegion:
    """A while structure: decision + assignment body looping back + exit."""

    def __init__(self, decision: NodeId, body_chain: List[NodeId],
                 exit: NodeId) -> None:
        self.decision = decision
        self.body_chain = list(body_chain)
        self.exit = exit

    def __repr__(self) -> str:
        return (f"WhileRegion(decision={self.decision}, "
                f"body={self.body_chain}, exit={self.exit})")

    def interior(self) -> Set[NodeId]:
        return {self.decision, *self.body_chain}


def find_ite_regions(flowchart: Flowchart) -> List[IteRegion]:
    """All decisions whose arms are straight-line chains meeting at a join.

    The join may be any node (assignment, decision, or halt); the arms
    must contain assignments only.  Decisions that are loop headers are
    excluded (they are :class:`WhileRegion` material).
    """
    regions: List[IteRegion] = []
    pdom = postdominators(flowchart)
    for decision_id in flowchart.decision_ids():
        box = flowchart.boxes[decision_id]
        assert isinstance(box, DecisionBox)
        join = immediate_postdominator(flowchart, decision_id, pdom)
        if join is None:
            continue
        stop = {decision_id, join}
        walked_true = _follow_assignment_chain(flowchart, box.true_next, stop)
        walked_false = _follow_assignment_chain(flowchart, box.false_next, stop)
        if walked_true is None or walked_false is None:
            continue
        then_chain, then_end = walked_true
        else_chain, else_end = walked_false
        if then_end != join or else_end != join:
            continue  # a loop back-edge or non-assignment interior
        if set(then_chain) & set(else_chain):
            continue  # arms share boxes — not a diamond
        regions.append(IteRegion(decision_id, then_chain, else_chain, join))
    return regions


def find_while_regions(flowchart: Flowchart) -> List[WhileRegion]:
    """All decisions with an assignment-only body that loops straight back."""
    regions: List[WhileRegion] = []
    for decision_id in flowchart.decision_ids():
        box = flowchart.boxes[decision_id]
        assert isinstance(box, DecisionBox)
        walked = _follow_assignment_chain(flowchart, box.true_next,
                                          {decision_id})
        if walked is not None:
            body, end = walked
            if end == decision_id and body:
                regions.append(WhileRegion(decision_id, body, box.false_next))
                continue
        # Also recognise loops whose body hangs off the false arm.
        walked = _follow_assignment_chain(flowchart, box.false_next,
                                          {decision_id})
        if walked is not None:
            body, end = walked
            if end == decision_id and body:
                regions.append(WhileRegion(decision_id, body, box.true_next))
    return regions


def is_straight_line(flowchart: Flowchart) -> bool:
    """True iff the flowchart has no decision boxes (pure data flow)."""
    return not flowchart.decision_ids()
