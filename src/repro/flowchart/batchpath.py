"""Batch (gen-2) flowchart execution: whole grids per basic block.

The compiled backend (:mod:`repro.flowchart.fastpath`) removed the
interpreter's per-box dispatch but still runs one grid point per call,
so a ∀-sweep pays Python call/loop overhead once per point.  This
module compiles a flowchart once into a *structure-of-arrays*
evaluator: the environment becomes one column per variable, and each
basic block executes over the whole vector of grid points that are
currently parked at it.  Control flow is a worklist over program
counters — every round, active lanes are grouped by their ``pc`` and
each group runs its block's vectorized body, so lanes that take
different branches (or exit loops at different trip counts) simply end
up in different groups.

Two lane engines implement the block bodies:

``numpy``
    int64 columns with NumPy ufuncs (selected automatically when NumPy
    imports).  Exactness is protected twice over: a *static* per-block
    bit-width analysis proves no intermediate can overflow int64 given
    the per-flowchart entry invariant ``|v| <= 2**E``, and a *dynamic*
    block-exit guard retires any lane whose value outgrows ``2**E`` to
    the per-lane fallback below.  Flowcharts the analysis cannot bound
    (or with more than 63 environment variables, the ``touched``
    bitmask width) compile on the python engine instead.

``python``
    plain Python lists of unbounded ints — bit-exact by construction,
    used when NumPy is absent or via ``REPRO_BATCH_LANES=python``.

Per-lane fidelity mirrors the fastpath dual machines exactly: the
uncapped machine does one bulk ``steps + n > fuel`` check per block,
the capped machine interleaves the per-box ``steps >= fuel`` check
with the post-assignment cap check, so a block where box *i* blows the
cap and box *j > i* blows the fuel faults with the cap — the same
``Λ!fuel[N]`` / ``Λ!cap[C]`` ordering the interpreter produces.  Lanes
that fault retire from the active mask with their fault *kind* (fault
notices carry only the global budget, so no per-lane error object is
needed); lanes that hit a hazard (a :class:`LoopExpr` block), an
oversized input, or the numpy value guard retire to ``FALLBACK`` and
are re-run individually on the compiled engine, so correctness never
depends on the vectorizer handling every shape.

Caching: one compiled artifact per (flowchart, engine) with
hit/miss counters (surfaced through ``fastpath.memo_stats``), plus an
LRU over ``(flowchart, points, fuel, cap)`` batch rows so a sweep's
2^k policies share one evaluation of the policy-independent program
rows.
"""

from __future__ import annotations

import os
import threading
import weakref
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.errors import (ArityMismatchError, FuelExhaustedError,
                           ReproError, ValueCapExceededError)
from ..obs import runtime as _obs
from ..robustness.faults import default_value_cap, resolve_value_cap
from .boxes import AssignBox, Box, DecisionBox, HaltBox, StartBox
from .expr import (And, BinOp, BoolConst, Compare, Const, Ite, LoopExpr,
                   Neg, Not, Or, Var)
from .fastpath import (_Codegen, _LRUMemo, _block_chain, _box_hazardous,
                       _box_touch_bits, _find_leaders, execute_compiled)
from .interpreter import DEFAULT_FUEL, ExecutionResult, execute
from .program import Flowchart

#: Environment variable forcing the lane engine (auto | numpy | python).
LANES_ENV = "REPRO_BATCH_LANES"

LANE_ENGINES = ("auto", "numpy", "python")

#: Per-lane outcome kinds on a finished batch.
K_OK, K_FUEL, K_CAP = 0, 1, 2

# Lane statuses while a batch is being driven.
_ACTIVE, _DONE, _FUEL, _CAP, _FALLBACK = 0, 1, 2, 3, 4

#: Every intermediate must fit int64: |v| <= 2**62 keeps one sign bit.
_SAFE_BITS = 62

_ROWS_MEMO_SIZE = 512


def _numpy():
    """The numpy module, or None (imported once, never required)."""
    global _NP_PROBED, _NP
    if not _NP_PROBED:
        try:
            import numpy
            _NP = numpy
        except ImportError:  # pragma: no cover - numpy present in CI image
            _NP = None
        _NP_PROBED = True
    return _NP


_NP = None
_NP_PROBED = False


#: Cached ``REPRO_BATCH_LANES`` read: ``(loaded, choice)``.  Same
#: rationale as ``fastpath._ENV_BACKEND_CACHE`` — lane selection sits
#: on the batch hot path and must not re-read process-global state per
#: grid, or one tenant's env mutation retargets another's lanes.
_ENV_LANES_CACHE: Tuple[bool, Optional[str]] = (False, None)


def default_lane_engine() -> str:
    """The lane engine used when no explicit choice is given.

    ``REPRO_BATCH_LANES`` is read once and cached; call
    :func:`reset_lane_engine_cache` after changing the env mid-process.
    """
    global _ENV_LANES_CACHE
    loaded, cached = _ENV_LANES_CACHE
    if not loaded:
        cached = os.environ.get(LANES_ENV) or None
        _ENV_LANES_CACHE = (True, cached)
    return cached or "auto"


def reset_lane_engine_cache() -> None:
    """Forget the cached ``REPRO_BATCH_LANES`` read."""
    global _ENV_LANES_CACHE
    _ENV_LANES_CACHE = (False, None)


def resolve_lane_engine(engine: Optional[str] = None) -> str:
    """Resolve the lane engine: explicit > ``REPRO_BATCH_LANES``
    (cached at first use; see :func:`default_lane_engine`) > auto."""
    choice = engine or default_lane_engine()
    choice = choice.strip().lower()
    if choice not in LANE_ENGINES:
        raise ReproError(
            f"unknown batch lane engine {choice!r}; "
            f"expected one of {LANE_ENGINES}")
    if choice == "auto":
        return "numpy" if _numpy() is not None else "python"
    if choice == "numpy" and _numpy() is None:
        raise ReproError(
            "batch lane engine 'numpy' requested but numpy is not importable")
    return choice


# ---------------------------------------------------------------------------
# Static bit-width analysis (numpy engine safety)
# ---------------------------------------------------------------------------

def _expr_width(node, widths: Dict[str, int], seen: List[int]) -> int:
    """Magnitude exponent bound: the result satisfies ``|v| <= 2**w``.

    Every subexpression's bound lands in ``seen`` — the caller rejects
    the block if any intermediate can exceed ``2**_SAFE_BITS``.
    """
    if isinstance(node, Const):
        width = abs(node.value).bit_length()
    elif isinstance(node, Var):
        width = widths[node.name]
    elif isinstance(node, BinOp):
        left = _expr_width(node.left, widths, seen)
        right = _expr_width(node.right, widths, seen)
        if node.op in ("+", "-"):
            width = max(left, right) + 1
        elif node.op == "*":
            width = left + right
        elif node.op == "//":
            width = left
        elif node.op == "%":
            width = right
        elif node.op in ("min", "max"):
            width = max(left, right)
        else:  # | & ^ on two's complement int64
            width = max(left, right) + 1
    elif isinstance(node, Neg):
        width = _expr_width(node.operand, widths, seen)
    elif isinstance(node, Ite):
        _pred_width(node.predicate, widths, seen)
        width = max(_expr_width(node.then_value, widths, seen),
                    _expr_width(node.else_value, widths, seen))
    else:  # pragma: no cover - LoopExpr blocks are hazardous, never analysed
        raise ReproError(
            f"cannot bound expression node {type(node).__name__}")
    seen.append(width)
    return width


def _pred_width(node, widths: Dict[str, int], seen: List[int]) -> None:
    if isinstance(node, Compare):
        _expr_width(node.left, widths, seen)
        _expr_width(node.right, widths, seen)
    elif isinstance(node, (And, Or)):
        _pred_width(node.left, widths, seen)
        _pred_width(node.right, widths, seen)
    elif isinstance(node, Not):
        _pred_width(node.operand, widths, seen)
    # BoolConst: no numeric operands.


def _block_exit_widths(plan: "_BlockPlan", env_names: Sequence[str],
                       entry: int) -> Optional[Dict[str, int]]:
    """Widths of block-exit values given entry invariant ``2**entry``.

    Returns None if any intermediate can exceed ``2**_SAFE_BITS``;
    otherwise a map of assigned variables to their exit-value bound
    (a variable assigned twice keeps the *last* width — that is the
    value the block-exit guard sees).
    """
    widths = {name: entry for name in env_names}
    assigned: Dict[str, int] = {}
    seen: List[int] = []
    for box in plan.boxes:
        if isinstance(box, AssignBox):
            width = _expr_width(box.expression, widths, seen)
            widths[box.target] = width
            assigned[box.target] = width
        elif isinstance(box, DecisionBox):
            _pred_width(box.predicate, widths, seen)
    if any(width > _SAFE_BITS for width in seen):
        return None
    return assigned


def _guard_exponent(plans: Sequence["_BlockPlan"],
                    env_names: Sequence[str]) -> Optional[int]:
    """The largest entry invariant E that keeps every block int64-safe."""
    for exponent in range(_SAFE_BITS, 0, -1):
        if all(plan.hazardous
               or _block_exit_widths(plan, env_names, exponent) is not None
               for plan in plans):
            return exponent
    return None


# ---------------------------------------------------------------------------
# Block plans (shared by both engines)
# ---------------------------------------------------------------------------

class _BlockPlan:
    __slots__ = ("index", "boxes", "fallthrough", "hazardous")

    def __init__(self, index: int, boxes: List[Box],
                 fallthrough: Optional[int], hazardous: bool) -> None:
        self.index = index
        self.boxes = boxes
        self.fallthrough = fallthrough  # pc of the next block, or None
        self.hazardous = hazardous


def _block_plans(flowchart: Flowchart) -> Tuple[List[_BlockPlan], _Codegen]:
    gen = _Codegen(flowchart)
    entry = flowchart.boxes[flowchart.start_id].successors()[0]
    leaders = _find_leaders(flowchart, entry)
    leader_set = frozenset(leaders)
    pc_of = {leader: index for index, leader in enumerate(leaders)}
    plans = []
    for leader in leaders:
        chain, fallthrough = _block_chain(flowchart, leader, leader_set)
        boxes = [flowchart.boxes[node_id] for node_id in chain]
        plans.append(_BlockPlan(
            pc_of[leader], boxes,
            None if fallthrough is None else pc_of[fallthrough],
            any(_box_hazardous(box) for box in boxes)))
    gen.pc_of = pc_of
    return plans, gen


def _block_vars(plan: _BlockPlan, flowchart: Flowchart) -> Tuple[List[str],
                                                                 List[str]]:
    """(used, assigned) env variable names of a block, in stable order."""
    used: List[str] = []
    assigned: List[str] = []

    def note(name: str) -> None:
        if name not in used:
            used.append(name)

    for box in plan.boxes:
        if isinstance(box, AssignBox):
            for name in sorted(box.expression.variables()):
                note(name)
            note(box.target)
            if box.target not in assigned:
                assigned.append(box.target)
        elif isinstance(box, DecisionBox):
            for name in sorted(box.predicate.variables()):
                note(name)
        elif isinstance(box, HaltBox):
            note(flowchart.output_variable)
    return used, assigned


# ---------------------------------------------------------------------------
# numpy lane engine: vectorized expression + block codegen
# ---------------------------------------------------------------------------

class _VecGen:
    """Vector twin of ``_Codegen.expr``: arrays in, arrays (mostly) out."""

    def __init__(self, gen: _Codegen) -> None:
        self.gen = gen

    def expr(self, node) -> str:
        gen = self.gen
        if isinstance(node, Const):
            return f"({node.value!r})"
        if isinstance(node, Var):
            return gen.local_of[node.name]
        if isinstance(node, BinOp):
            left, right = self.expr(node.left), self.expr(node.right)
            if node.op in ("+", "-", "*", "|", "&", "^"):
                return f"({left} {node.op} {right})"
            if node.op == "//":
                return f"_vdiv({left}, {right})"
            if node.op == "%":
                return f"_vmod({left}, {right})"
            if node.op == "min":
                return f"_np.minimum({left}, {right})"
            return f"_np.maximum({left}, {right})"
        if isinstance(node, Neg):
            return f"(-{self.expr(node.operand)})"
        if isinstance(node, Ite):
            return (f"_np.where({self.pred(node.predicate)}, "
                    f"{self.expr(node.then_value)}, "
                    f"{self.expr(node.else_value)})")
        raise ReproError(  # pragma: no cover - hazardous blocks never emitted
            f"cannot vectorize expression node {type(node).__name__}")

    def pred(self, node) -> str:
        if isinstance(node, Compare):
            return (f"({self.expr(node.left)} {node.op} "
                    f"{self.expr(node.right)})")
        if isinstance(node, BoolConst):
            return "True" if node.value else "False"
        if isinstance(node, Not):
            return f"_np.logical_not({self.pred(node.operand)})"
        if isinstance(node, And):
            return (f"_np.logical_and({self.pred(node.left)}, "
                    f"{self.pred(node.right)})")
        if isinstance(node, Or):
            return (f"_np.logical_or({self.pred(node.left)}, "
                    f"{self.pred(node.right)})")
        raise ReproError(  # pragma: no cover - hazardous blocks never emitted
            f"cannot vectorize predicate node {type(node).__name__}")


def _emit_numpy_block(lines: List[str], flowchart: Flowchart,
                      gen: _Codegen, vec: _VecGen, plan: _BlockPlan,
                      capped: bool, guard_names: Sequence[str],
                      fuel_checked: bool = True) -> None:
    emit = lines.append
    used, assigned = _block_vars(plan, flowchart)
    local = gen.local_of
    suffix = "c" if capped else ("u" if fuel_checked else "f")
    extra = ", _capb" if capped else ""
    emit(f"def _b{plan.index}_{suffix}(_env, _sel, _steps, _touched, "
         f"_pc, _status, _value, _fuel{extra}):")

    live_locals: List[str] = []

    def emit_filter(keep: str) -> None:
        """Retire faulted lanes and compress _sel plus live locals."""
        emit(f"        _sel = _sel[{keep}]")
        for name in live_locals:
            emit(f"        {name} = {name}[{keep}]")
        emit("        if _sel.shape[0] == 0:")
        emit("            return")

    if not capped:
        n_boxes = len(plan.boxes)
        block_mask = 0
        for box in plan.boxes:
            block_mask |= _box_touch_bits(box, flowchart, gen.bit_of)
        # The "f" variant omits the fuel test: the driver only calls
        # it on rounds where its scalar steps ceiling proves no lane
        # can exhaust (see _drive_numpy), so the test is all-False.
        if fuel_checked:
            emit(f"    _over = _steps[_sel] + {n_boxes} > _fuel")
            emit("    if _over.any():")
            emit(f"        _f = _sel[_over]")
            emit(f"        _status[_f] = {_FUEL}")
            emit("        _pc[_f] = -1")
            emit_filter("~_over")
        emit(f"    _steps[_sel] += {n_boxes}")
        if block_mask:
            emit(f"    _touched[_sel] |= {block_mask}")

    for name in used:
        emit(f"    {local[name]} = _env[{gen.bit_of[name]}][_sel]")
        live_locals.append(local[name])

    for box in plan.boxes:
        if capped:
            box_mask = _box_touch_bits(box, flowchart, gen.bit_of)
            emit("    _over = _steps[_sel] >= _fuel")
            emit("    if _over.any():")
            emit("        _f = _sel[_over]")
            emit(f"        _status[_f] = {_FUEL}")
            emit("        _pc[_f] = -1")
            emit_filter("~_over")
            emit("    _steps[_sel] += 1")
            if box_mask:
                emit(f"    _touched[_sel] |= {box_mask}")
        if isinstance(box, AssignBox):
            target = local[box.target]
            body = vec.expr(box.expression)
            scalar = not box.expression.variables()
            if scalar and (capped or box.target in guard_names):
                # A pure-constant assignment broadcasts fine through
                # arithmetic, but cap/guard checks boolean-index _sel
                # with its comparison result, which must be an array.
                body = f"_np.full(_sel.shape[0], {body}, dtype=_np.int64)"
            emit(f"    {target} = {body}")
            if capped:
                emit(f"    _hit = ({target} >= _capb) | "
                     f"({target} <= -_capb)")
                emit("    if _hit.any():")
                emit("        _f = _sel[_hit]")
                emit(f"        _status[_f] = {_CAP}")
                emit("        _pc[_f] = -1")
                emit_filter("~_hit")
        elif isinstance(box, StartBox):  # pragma: no cover - validation
            pass  # costs one step, touches nothing, falls through

    for name in assigned:
        emit(f"    _env[{gen.bit_of[name]}][_sel] = {local[name]}")

    terminator = plan.boxes[-1]
    if isinstance(terminator, HaltBox):
        emit(f"    _value[_sel] = {local[flowchart.output_variable]}")
        emit(f"    _status[_sel] = {_DONE}")
        emit("    _pc[_sel] = -1")
        return

    if isinstance(terminator, DecisionBox):
        true_pc = gen.pc_of[terminator.true_next]
        false_pc = gen.pc_of[terminator.false_next]
        emit(f"    _pc[_sel] = _np.where({vec.pred(terminator.predicate)}, "
             f"{true_pc}, {false_pc})")
    else:
        emit(f"    _pc[_sel] = {plan.fallthrough}")
    if guard_names:
        check = " | ".join(
            f"({local[name]} > _guard) | ({local[name]} < -_guard)"
            for name in guard_names)
        emit(f"    _g = {check}")
        emit("    if _g.any():")
        emit("        _f = _sel[_g]")
        emit(f"        _status[_f] = {_FALLBACK}")
        emit("        _pc[_f] = -1")


# ---------------------------------------------------------------------------
# python lane engine: scalar per-lane codegen (exact unbounded ints)
# ---------------------------------------------------------------------------

def _emit_python_block(lines: List[str], flowchart: Flowchart,
                       gen: _Codegen, plan: _BlockPlan,
                       capped: bool) -> None:
    emit = lines.append
    used, assigned = _block_vars(plan, flowchart)
    local = gen.local_of
    suffix = "c" if capped else "u"
    extra = ", _capb" if capped else ""
    emit(f"def _b{plan.index}_{suffix}(_env, _sel, _steps, _touched, "
         f"_pc, _status, _value, _fuel{extra}):")
    for name in used:
        emit(f"    _e{gen.bit_of[name]} = _env[{gen.bit_of[name]}]")
    emit("    for _i in _sel:")

    if not capped:
        n_boxes = len(plan.boxes)
        block_mask = 0
        for box in plan.boxes:
            block_mask |= _box_touch_bits(box, flowchart, gen.bit_of)
        emit(f"        if _steps[_i] + {n_boxes} > _fuel:")
        emit(f"            _status[_i] = {_FUEL}")
        emit("            _pc[_i] = -1")
        emit("            continue")
        emit(f"        _steps[_i] += {n_boxes}")
        if block_mask:
            emit(f"        _touched[_i] |= {block_mask}")

    for name in used:
        emit(f"        {local[name]} = _e{gen.bit_of[name]}[_i]")

    for box in plan.boxes:
        if capped:
            box_mask = _box_touch_bits(box, flowchart, gen.bit_of)
            emit("        if _steps[_i] >= _fuel:")
            emit(f"            _status[_i] = {_FUEL}")
            emit("            _pc[_i] = -1")
            emit("            continue")
            emit("        _steps[_i] += 1")
            if box_mask:
                emit(f"        _touched[_i] |= {box_mask}")
        if isinstance(box, AssignBox):
            target = local[box.target]
            emit(f"        {target} = {gen.expr(box.expression)}")
            if capped:
                emit(f"        if {target} >= _capb or {target} <= -_capb:")
                emit(f"            _status[_i] = {_CAP}")
                emit("            _pc[_i] = -1")
                emit("            continue")
        elif isinstance(box, StartBox):  # pragma: no cover - validation
            pass

    for name in assigned:
        emit(f"        _e{gen.bit_of[name]}[_i] = {local[name]}")

    terminator = plan.boxes[-1]
    if isinstance(terminator, HaltBox):
        emit(f"        _value[_i] = {local[flowchart.output_variable]}")
        emit(f"        _status[_i] = {_DONE}")
        emit("        _pc[_i] = -1")
    elif isinstance(terminator, DecisionBox):
        true_pc = gen.pc_of[terminator.true_next]
        false_pc = gen.pc_of[terminator.false_next]
        emit(f"        _pc[_i] = {true_pc} "
             f"if {gen.pred(terminator.predicate)} else {false_pc}")
    else:
        emit(f"        _pc[_i] = {plan.fallthrough}")


# ---------------------------------------------------------------------------
# Compilation
# ---------------------------------------------------------------------------

class BatchCompiled:
    """One flowchart's batch evaluator on one lane engine."""

    __slots__ = ("flowchart_name", "arity", "engine", "env_names",
                 "input_bits", "blocks_u", "blocks_c", "blocks_f",
                 "max_block_cost", "source", "guard_exponent",
                 "_mask_cache")

    def __init__(self, flowchart_name: str, arity: int, engine: str,
                 env_names: Tuple[str, ...], input_bits: Tuple[int, ...],
                 blocks_u: list, blocks_c: list, source: str,
                 guard_exponent: Optional[int],
                 blocks_f: Optional[list] = None,
                 max_block_cost: int = 1) -> None:
        self.flowchart_name = flowchart_name
        self.arity = arity
        self.engine = engine
        self.env_names = env_names
        self.input_bits = input_bits
        self.blocks_u = blocks_u  # per-pc step fn, None = hazardous
        self.blocks_c = blocks_c
        #: Fuel-test-free twins of blocks_u; the numpy driver calls
        #: them on rounds its steps ceiling proves exhaustion-free.
        self.blocks_f = blocks_f if blocks_f is not None else blocks_u
        #: Max step cost of any single block — the ceiling's increment.
        self.max_block_cost = max_block_cost
        self.source = source
        self.guard_exponent = guard_exponent  # None on the python engine
        self._mask_cache: Dict[int, frozenset] = {}

    def touched_set(self, mask: int) -> frozenset:
        try:
            return self._mask_cache[mask]
        except KeyError:
            names = frozenset(
                name for index, name in enumerate(self.env_names)
                if mask >> index & 1)
            self._mask_cache[mask] = names
            return names


def _make_vec_helpers(np_mod) -> Dict[str, object]:
    def _vdiv(a, b):
        zero = (b == 0)
        return np_mod.where(zero, 0,
                            np_mod.floor_divide(a, np_mod.where(zero, 1, b)))

    def _vmod(a, b):
        zero = (b == 0)
        return np_mod.where(zero, 0,
                            np_mod.remainder(a, np_mod.where(zero, 1, b)))

    return {"_np": np_mod, "_vdiv": _vdiv, "_vmod": _vmod}


def _numpy_vectorizable(plans: Sequence[_BlockPlan],
                        env_names: Sequence[str]) -> Optional[int]:
    """The guard exponent if the numpy engine can run this flowchart."""
    if len(env_names) > 63:  # touched bitmask must fit int64
        return None
    return _guard_exponent(plans, env_names)


def generate_batch_source(flowchart: Flowchart,
                          engine: str) -> Tuple[str, Dict[str, object],
                                                _Codegen,
                                                List[_BlockPlan],
                                                Optional[int]]:
    """Generate per-block step functions for one lane engine.

    For ``engine="numpy"`` the flowchart may still land on the python
    engine when the width analysis cannot certify int64 safety — the
    returned namespace records which via ``namespace['_engine']``.
    """
    plans, gen = _block_plans(flowchart)
    guard = None
    actual = engine
    if engine == "numpy":
        guard = _numpy_vectorizable(plans, gen.env_names)
        if guard is None:
            actual = "python"

    lines: List[str] = []
    if actual == "numpy":
        vec = _VecGen(gen)
        namespace = dict(gen.namespace)
        namespace.update(_make_vec_helpers(_numpy()))
        namespace["_guard"] = 1 << guard
        for plan in plans:
            if plan.hazardous:
                continue
            exits = _block_exit_widths(plan, gen.env_names, guard)
            guard_names = [name for name, width in exits.items()
                           if width > guard]
            _emit_numpy_block(lines, flowchart, gen, vec, plan,
                              capped=False, guard_names=guard_names)
            lines.append("")
            _emit_numpy_block(lines, flowchart, gen, vec, plan,
                              capped=False, guard_names=guard_names,
                              fuel_checked=False)
            lines.append("")
            _emit_numpy_block(lines, flowchart, gen, vec, plan,
                              capped=True, guard_names=guard_names)
            lines.append("")
    else:
        namespace = gen.namespace
        for plan in plans:
            if plan.hazardous:
                continue
            _emit_python_block(lines, flowchart, gen, plan, capped=False)
            lines.append("")
            _emit_python_block(lines, flowchart, gen, plan, capped=True)
            lines.append("")
    namespace["_engine"] = actual
    source = "\n".join(lines) + "\n"
    return source, namespace, gen, plans, guard


_batch_lock = threading.Lock()
_BATCH_COMPILED: "weakref.WeakKeyDictionary[Flowchart, Dict[str, BatchCompiled]]" = (
    weakref.WeakKeyDictionary())
_COMPILE_HITS = 0
_COMPILE_MISSES = 0
_LANE_FALLBACKS = 0


def compile_batch(flowchart: Flowchart,
                  engine: Optional[str] = None) -> BatchCompiled:
    """Compile (with per-flowchart, per-engine caching) a batch evaluator."""
    global _COMPILE_HITS, _COMPILE_MISSES
    if engine not in ("numpy", "python"):  # already-resolved fast path
        engine = resolve_lane_engine(engine)
    with _batch_lock:
        per_engine = _BATCH_COMPILED.get(flowchart)
        if per_engine is not None and engine in per_engine:
            _COMPILE_HITS += 1
            return per_engine[engine]
        _COMPILE_MISSES += 1
        source, namespace, gen, plans, guard = generate_batch_source(
            flowchart, engine)
        actual = namespace["_engine"]
        code = compile(source, f"<batchpath:{flowchart.name}>", "exec")
        exec(code, namespace)
        blocks_u = [None if plan.hazardous
                    else namespace[f"_b{plan.index}_u"] for plan in plans]
        blocks_c = [None if plan.hazardous
                    else namespace[f"_b{plan.index}_c"] for plan in plans]
        blocks_f = (
            [None if plan.hazardous
             else namespace[f"_b{plan.index}_f"] for plan in plans]
            if actual == "numpy" else None)
        max_cost = max(
            (len(plan.boxes) for plan in plans if not plan.hazardous),
            default=1)
        compiled = BatchCompiled(
            flowchart.name, flowchart.arity, actual, gen.env_names,
            tuple(gen.bit_of[name] for name in flowchart.input_variables),
            blocks_u, blocks_c, source,
            guard if actual == "numpy" else None,
            blocks_f=blocks_f, max_block_cost=max_cost)
        if per_engine is None:
            per_engine = {}
            _BATCH_COMPILED[flowchart] = per_engine
        per_engine[engine] = compiled
    if _obs.active:
        _obs.emit("batch_compiled", program=flowchart.name, engine=actual,
                  blocks=len(plans))
    return compiled


# ---------------------------------------------------------------------------
# Drivers
# ---------------------------------------------------------------------------

def _drive_numpy(compiled: BatchCompiled, points: Sequence[Tuple[int, ...]],
                 fuel: int, capb: Optional[int]):
    np_mod = _numpy()
    n = len(points)
    # Step counters live in int64; a fuel budget beyond 2**62 is
    # indistinguishable from one at 2**62 (no run can execute that
    # many boxes), so clamp rather than overflow the comparison.
    fuel = min(fuel, 1 << _SAFE_BITS)
    width = len(compiled.env_names)
    env = [np_mod.zeros(n, dtype=np_mod.int64) for _ in range(width)]
    steps = np_mod.zeros(n, dtype=np_mod.int64)
    touched = np_mod.zeros(n, dtype=np_mod.int64)
    pc = np_mod.zeros(n, dtype=np_mod.int64)
    status = np_mod.zeros(n, dtype=np_mod.int64)
    value = np_mod.zeros(n, dtype=np_mod.int64)

    # Columnize inputs, pre-retiring lanes whose inputs break the
    # |v| <= 2**E entry invariant (they re-run on the compiled engine).
    bound = 1 << compiled.guard_exponent
    prefiltered = 0
    matrix = None
    if compiled.arity:
        try:
            matrix = np_mod.asarray(points, dtype=np_mod.int64)
        except (OverflowError, ValueError):
            matrix = None  # some input exceeds int64: slow per-point path
    if matrix is not None:
        oversized = ((matrix > bound) | (matrix < -bound)).any(axis=1)
        for position, bit in enumerate(compiled.input_bits):
            env[bit][:] = matrix[:, position]
        if oversized.any():
            status[oversized] = _FALLBACK
            pc[oversized] = -1
            prefiltered = int(oversized.sum())
    elif compiled.arity:
        columns = [[0] * n for _ in range(compiled.arity)]
        for i, point in enumerate(points):
            if any(v > bound or v < -bound for v in point):
                status[i] = _FALLBACK
                pc[i] = -1
                prefiltered += 1
            else:
                for position in range(compiled.arity):
                    columns[position][i] = point[position]
        for position, bit in enumerate(compiled.input_bits):
            env[bit][:] = columns[position]

    # With cap >= 2**63 no int64-held value can trip the vector cap
    # check (the guard retires wider lanes first), so the bulk-fuel
    # machine is exact and the true cap only matters on fallback lanes.
    use_capped = capb is not None and capb <= (1 << _SAFE_BITS)
    blocks = compiled.blocks_c if use_capped else compiled.blocks_u
    hazard_lanes = 0
    # Retirement is monotone, so the live index set only ever shrinks:
    # maintain it incrementally instead of re-scanning the full vector,
    # and group lanes by block with a plain set — block counts are tiny
    # and ``np.unique``'s sort costs more than it saves here.
    #
    # A lane runs at most one block per round, so a scalar ceiling
    # (steps_hi, bumped by the worst block cost) bounds every lane's
    # step counter; while it proves the fuel budget unreachable, the
    # round dispatches the fuel-test-free block twins instead.
    steps_hi = 0
    max_cost = compiled.max_block_cost
    fast_blocks = compiled.blocks_f if not use_capped else None
    live = np_mod.flatnonzero(pc >= 0)
    while live.size:
        pcs = pc[live]
        present = set(pcs.tolist())
        if len(present) == 1:
            groups = ((present.pop(), live),)
        else:
            groups = tuple((block, live[pcs == block])
                           for block in sorted(present))
        steps_hi += max_cost
        table = (fast_blocks if fast_blocks is not None and steps_hi <= fuel
                 else blocks)
        for block, sel in groups:
            fn = table[block]
            if fn is None:  # hazardous (LoopExpr) block
                status[sel] = _FALLBACK
                pc[sel] = -1
                hazard_lanes += int(sel.size)
                continue
            if use_capped:
                fn(env, sel, steps, touched, pc, status, value, fuel, capb)
            else:
                fn(env, sel, steps, touched, pc, status, value, fuel)
        live = live[pc[live] >= 0]

    total_fallback = int((status == _FALLBACK).sum())
    reasons = {}
    if prefiltered:
        reasons["input_width"] = prefiltered
    if hazard_lanes:
        reasons["hazard"] = hazard_lanes
    guarded = total_fallback - prefiltered - hazard_lanes
    if guarded:
        reasons["value_guard"] = guarded
    return env, steps, touched, status, value, reasons, matrix


def _drive_python(compiled: BatchCompiled, points: Sequence[Tuple[int, ...]],
                  fuel: int, capb: Optional[int]):
    n = len(points)
    width = len(compiled.env_names)
    env = [[0] * n for _ in range(width)]
    steps = [0] * n
    touched = [0] * n
    pc = [0] * n
    status = [_ACTIVE] * n
    value = [0] * n
    for position, bit in enumerate(compiled.input_bits):
        column = env[bit]
        for i, point in enumerate(points):
            column[i] = point[position]

    blocks = compiled.blocks_c if capb is not None else compiled.blocks_u
    hazard_lanes = 0
    active = list(range(n))
    while active:
        groups: Dict[int, List[int]] = {}
        for i in active:
            groups.setdefault(pc[i], []).append(i)
        for block, sel in groups.items():
            fn = blocks[block]
            if fn is None:
                for i in sel:
                    status[i] = _FALLBACK
                    pc[i] = -1
                hazard_lanes += len(sel)
                continue
            if capb is not None:
                fn(env, sel, steps, touched, pc, status, value, fuel, capb)
            else:
                fn(env, sel, steps, touched, pc, status, value, fuel)
        active = [i for i in active if pc[i] >= 0]

    reasons = {"hazard": hazard_lanes} if hazard_lanes else {}
    return env, steps, touched, status, value, reasons, None


# ---------------------------------------------------------------------------
# Batch results
# ---------------------------------------------------------------------------

class BatchResult:
    """Per-lane outcomes of one batch execution.

    Lane ``i`` corresponds to ``points[i]``; ``kind(i)`` is one of
    ``K_OK`` / ``K_FUEL`` / ``K_CAP``, and the accessors reproduce the
    interpreter's observables for that lane.  Fallback lanes carry
    their full :class:`ExecutionResult` from the compiled re-run.
    """

    __slots__ = ("compiled", "points", "fuel", "cap", "kinds", "values",
                 "lane_steps", "lane_touched", "env_columns", "overrides",
                 "fallback_reasons", "input_matrix", "summary_cache")

    def __init__(self, compiled: BatchCompiled, points, fuel, cap,
                 kinds, values, lane_steps, lane_touched, env_columns,
                 overrides: Dict[int, ExecutionResult],
                 fallback_reasons: Dict[str, int],
                 input_matrix=None) -> None:
        self.compiled = compiled
        self.points = points
        self.fuel = fuel
        self.cap = cap
        self.kinds = kinds
        self.values = values
        self.lane_steps = lane_steps
        self.lane_touched = lane_touched
        self.env_columns = env_columns
        self.overrides = overrides
        self.fallback_reasons = fallback_reasons
        #: The int64 (n, arity) input matrix when the numpy driver
        #: columnized it — callers (the sweep summarizer) reuse it
        #: instead of re-converting the Python point tuples.
        self.input_matrix = input_matrix
        #: Policy-independent (outkind, accepts, vals) computed by the
        #: sweep summarizer on first use; the rows memo hands the same
        #: BatchResult to every policy of a pair, so it pays once.
        self.summary_cache = None

    def __len__(self) -> int:
        return len(self.points)

    def kind(self, i: int) -> int:
        return int(self.kinds[i])

    def value(self, i: int) -> int:
        override = self.overrides.get(i)
        if override is not None:
            return override.value
        return int(self.values[i])

    def steps(self, i: int) -> int:
        override = self.overrides.get(i)
        if override is not None:
            return override.steps
        return int(self.lane_steps[i])

    def touched(self, i: int) -> frozenset:
        override = self.overrides.get(i)
        if override is not None:
            return override.touched
        return self.compiled.touched_set(int(self.lane_touched[i]))

    def env(self, i: int) -> Optional[Dict[str, int]]:
        override = self.overrides.get(i)
        if override is not None:
            return override.env
        return {name: int(self.env_columns[index][i])
                for index, name in enumerate(self.compiled.env_names)}

    def env_value(self, i: int, name: str) -> int:
        override = self.overrides.get(i)
        if override is not None:
            return override.env[name]
        index = self.compiled.env_names.index(name)
        return int(self.env_columns[index][i])

    def vector_view(self):
        """(numpy, kinds, values) when every lane lives in the arrays.

        None when any lane was resolved per-lane (its value may not
        even fit int64) or the batch ran on the python engine —
        callers then walk the scalar accessors instead.
        """
        if (self.compiled.engine != "numpy" or self.overrides
                or isinstance(self.kinds, list)):
            return None
        return _numpy(), self.kinds, self.values

    def env_column(self, name: str):
        """One environment column (only valid without overrides)."""
        return self.env_columns[self.compiled.env_names.index(name)]


# ---------------------------------------------------------------------------
# Execution entry points
# ---------------------------------------------------------------------------

_ROWS_MEMO = _LRUMemo(_ROWS_MEMO_SIZE)


def execute_batch(flowchart: Flowchart,
                  points: Sequence[Sequence[int]],
                  fuel: int = DEFAULT_FUEL,
                  value_cap: Optional[int] = None,
                  engine: Optional[str] = None,
                  need_env: bool = False,
                  memo: bool = True) -> BatchResult:
    """Run a whole batch of grid points through one flowchart.

    Returns a :class:`BatchResult` whose rows are bit-identical to
    running the interpreter per point: same value/steps/touched on
    success, same fault *kind* on fuel/cap exhaustion (fault notices
    carry only the global budget, so the kind is the whole outcome).
    Undeclared faults (e.g. a LoopExpr exceeding its own fuel) raise
    out of the per-lane fallback exactly as the interpreter would.
    """
    global _LANE_FALLBACKS
    arity = flowchart.arity
    engine = resolve_lane_engine(engine)
    cap = (default_value_cap() if value_cap is None
           else resolve_value_cap(value_cap))
    # Fast probe: when the caller already passes canonical tuples (the
    # sweep path does), hit the memo before paying canonicalisation or
    # the arity scan — a stored key proves those points validated once.
    key = ((flowchart, tuple(points), fuel, cap, engine, need_env)
           if memo else None)
    if key is not None:
        try:
            cached = _ROWS_MEMO.get(key)
        except TypeError:  # non-tuple points; canonicalise and re-key
            cached = None
            key = None
        if cached is not None:
            return cached
    points = [point if type(point) is tuple else tuple(point)
              for point in points]
    for point in points:
        if len(point) != arity:
            raise ArityMismatchError(
                f"flowchart {flowchart.name} takes {arity} "
                f"inputs, got {len(point)}")
    if memo and key is None:
        key = (flowchart, tuple(points), fuel, cap, engine, need_env)
        cached = _ROWS_MEMO.get(key)
        if cached is not None:
            return cached
    compiled = compile_batch(flowchart, engine)
    capb = None if cap is None else 1 << cap
    if compiled.engine == "numpy":
        (env, steps, touched, status, value, reasons,
         matrix) = _drive_numpy(compiled, points, fuel, capb)
    else:
        (env, steps, touched, status, value, reasons,
         matrix) = _drive_python(compiled, points, fuel, capb)

    overrides: Dict[int, ExecutionResult] = {}
    if compiled.engine == "numpy":
        np_mod = _numpy()
        fallback_lanes = np_mod.flatnonzero(status == _FALLBACK).tolist()
        if fallback_lanes:
            kinds = [K_FUEL if s == _FUEL else K_CAP if s == _CAP else K_OK
                     for s in status.tolist()]
        else:
            kinds = np_mod.where(status == _FUEL, K_FUEL,
                                 np_mod.where(status == _CAP, K_CAP, K_OK))
    else:
        kinds = [K_OK] * len(points)
        fallback_lanes = []
        for i in range(len(points)):
            lane_status = status[i]
            if lane_status == _FUEL:
                kinds[i] = K_FUEL
            elif lane_status == _CAP:
                kinds[i] = K_CAP
            elif lane_status == _FALLBACK:
                fallback_lanes.append(i)
    for i in fallback_lanes:
        try:
            overrides[i] = execute_compiled(
                flowchart, points[i], fuel=fuel, capture_env=need_env,
                value_cap=cap)
        except FuelExhaustedError:
            kinds[i] = K_FUEL
        except ValueCapExceededError:
            kinds[i] = K_CAP
    if fallback_lanes:
        _LANE_FALLBACKS += len(fallback_lanes)
        if _obs.active:
            _obs.inc("batch.lanes_fallback", len(fallback_lanes))
            for reason, count in sorted(reasons.items()):
                _obs.emit("batch_fallback", program=flowchart.name,
                          lanes=int(count), reason=reason)
    result = BatchResult(compiled, points, fuel, cap, kinds, value,
                         steps, touched, env, overrides, reasons,
                         input_matrix=matrix)
    if _obs.active:
        total_steps = sum(result.steps(i) for i in range(len(points)))
        _obs.record_run("batch", flowchart.name, total_steps)
    if key is not None:
        _ROWS_MEMO.put(key, result)
    return result


def execute_batch_single(flowchart: Flowchart, inputs: Sequence[int],
                         fuel: int = DEFAULT_FUEL,
                         record_trace: bool = False,
                         capture_env: bool = False,
                         value_cap: Optional[int] = None) -> ExecutionResult:
    """Single-point entry used by ``run_flowchart(backend="batch")``.

    A one-lane batch; declared faults re-raise with the interpreter's
    exact message.  Tracing falls back to the interpreter just like the
    compiled backend does, and so do channel programs (send/recv boxes
    are hazardous — every lane would retire to the fallback anyway).
    """
    if record_trace:
        return execute(flowchart, inputs, fuel=fuel, record_trace=True,
                       capture_env=capture_env, value_cap=value_cap)
    if flowchart.has_channels():
        return execute(flowchart, inputs, fuel=fuel,
                       capture_env=capture_env, value_cap=value_cap)
    if len(inputs) != flowchart.arity:
        raise ArityMismatchError(
            f"flowchart {flowchart.name} takes {flowchart.arity} inputs, "
            f"got {len(inputs)}")
    rows = execute_batch(flowchart, [tuple(inputs)], fuel=fuel,
                         value_cap=value_cap, need_env=capture_env)
    kind = rows.kind(0)
    if kind == K_FUEL:
        if _obs.active:
            _obs.record_fuel_exhausted(flowchart.name, fuel)
        raise FuelExhaustedError(
            fuel, f"flowchart {flowchart.name} exceeded {fuel} steps "
                  f"on input {tuple(inputs)!r}")
    if kind == K_CAP:
        if _obs.active:
            _obs.record_value_cap_exceeded(flowchart.name, rows.cap)
        raise ValueCapExceededError(
            rows.cap, f"flowchart {flowchart.name} assigned a value wider "
                      f"than {rows.cap} bits on input {tuple(inputs)!r}")
    override = rows.overrides.get(0)
    if override is not None:
        return override
    return ExecutionResult(rows.value(0), rows.steps(0), None,
                           rows.env(0) if capture_env else None,
                           rows.touched(0))


# ---------------------------------------------------------------------------
# Stats / cache control
# ---------------------------------------------------------------------------

def batch_stats() -> Dict[str, int]:
    """Lifetime batch-tier counters (joined into ``fastpath.memo_stats``)."""
    return {
        "compile_hits": _COMPILE_HITS,
        "compile_misses": _COMPILE_MISSES,
        "lane_fallbacks": _LANE_FALLBACKS,
        "rows_size": len(_ROWS_MEMO),
        "rows_hits": _ROWS_MEMO.hits,
        "rows_misses": _ROWS_MEMO.misses,
    }


def clear_rows_memo() -> None:
    """Drop memoised batch rows (benchmarks call this per rep)."""
    _ROWS_MEMO.clear()


def clear_batch_caches() -> None:
    """Drop compiled batch evaluators, memoised rows, and counters."""
    global _COMPILE_HITS, _COMPILE_MISSES, _LANE_FALLBACKS
    _ROWS_MEMO.clear()
    with _batch_lock:
        _BATCH_COMPILED.clear()
        _COMPILE_HITS = 0
        _COMPILE_MISSES = 0
        _LANE_FALLBACKS = 0
