"""The flowchart program object and its wellformedness rules (Section 3).

A :class:`Flowchart` is a finite connected directed graph of boxes with
exactly one start box.  Variables are partitioned by spelling, matching
the paper's convention:

- input variables ``x1, ..., xk`` (``input_variables``),
- program variables ``r1, ..., rn`` (anything else that is assigned),
- the single output variable ``y`` (``output_variable``).

The semantics (paper, Section 3): the domain of all variables is the
integers; execution begins at the start box with program and output
variables 0 and each ``x_i`` bound to the i-th input; decision boxes
branch on their predicate; halt boxes end execution with output ``y``.
Execution itself lives in :mod:`repro.flowchart.interpreter`.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from ..core.errors import FlowchartError
from .boxes import (AssignBox, Box, DecisionBox, DowngradeBox, HaltBox,
                    NodeId, PolicyChangeBox, RecvBox, SendBox, StartBox)


class Flowchart:
    """A wellformed Section 3 flowchart.

    Parameters
    ----------
    boxes:
        Mapping from node id to :class:`Box`.  Exactly one
        :class:`StartBox`; every successor id must exist; every box must
        be reachable from the start (the paper requires a *connected*
        graph).
    input_variables:
        Ordered names of ``x1..xk`` — the order defines input positions
        (and hence the 1-based indices policies refer to).
    output_variable:
        The name of ``y``.
    """

    def __init__(self, boxes: Dict[NodeId, Box],
                 input_variables: Iterable[str],
                 output_variable: str = "y",
                 name: str = "F") -> None:
        self.boxes: Dict[NodeId, Box] = dict(boxes)
        self.input_variables: Tuple[str, ...] = tuple(input_variables)
        self.output_variable = output_variable
        self.name = name
        self.start_id = self._validate()

    # -- wellformedness -------------------------------------------------

    def _validate(self) -> NodeId:
        if not self.boxes:
            raise FlowchartError(f"flowchart {self.name!r} has no boxes")
        if len(set(self.input_variables)) != len(self.input_variables):
            raise FlowchartError("duplicate input variable names")
        if self.output_variable in self.input_variables:
            raise FlowchartError(
                f"output variable {self.output_variable!r} collides with an input"
            )

        start_ids = [node_id for node_id, box in self.boxes.items()
                     if isinstance(box, StartBox)]
        if len(start_ids) != 1:
            raise FlowchartError(
                f"flowchart {self.name!r} must have exactly one start box, "
                f"found {len(start_ids)}"
            )
        start_id = start_ids[0]

        for node_id, box in self.boxes.items():
            for successor in box.successors():
                if successor not in self.boxes:
                    raise FlowchartError(
                        f"box {node_id!r} points to missing box {successor!r}"
                    )
            if isinstance(box, AssignBox) and box.target in self.input_variables:
                # The paper's programs never reassign inputs; allowing it
                # would confuse the surveillance label initialisation.
                raise FlowchartError(
                    f"box {node_id!r} assigns to input variable {box.target!r}"
                )
            if isinstance(box, PolicyChangeBox):
                bad = [i for i in box.allowed if i > len(self.input_variables)]
                if bad:
                    raise FlowchartError(
                        f"box {node_id!r} admits input indices {bad} beyond "
                        f"arity {len(self.input_variables)}"
                    )
            if isinstance(box, DowngradeBox):
                bad = [i for i in box.indices if i > len(self.input_variables)]
                if bad:
                    raise FlowchartError(
                        f"box {node_id!r} downgrades input indices {bad} "
                        f"beyond arity {len(self.input_variables)}"
                    )
            if isinstance(box, RecvBox) and box.variable in self.input_variables:
                # Same rule as assignment: inputs are never re-bound, and
                # a receive is a write in every engine.
                raise FlowchartError(
                    f"box {node_id!r} receives into input variable "
                    f"{box.variable!r}"
                )

        unreachable = set(self.boxes) - set(self.reachable_from(start_id))
        if unreachable:
            raise FlowchartError(
                f"flowchart {self.name!r} is not connected; unreachable boxes: "
                f"{sorted(map(str, unreachable))}"
            )
        if not any(isinstance(box, HaltBox) for box in self.boxes.values()):
            raise FlowchartError(f"flowchart {self.name!r} has no halt box")
        # Channel presence is consulted on every execution entry (the
        # compiled and batch tiers defer channel programs to the
        # interpreter), so cache it once at validation time.
        self._has_channels = any(isinstance(box, (SendBox, RecvBox))
                                 for box in self.boxes.values())
        return start_id

    # -- structural queries ---------------------------------------------

    @property
    def arity(self) -> int:
        return len(self.input_variables)

    def reachable_from(self, node_id: NodeId) -> List[NodeId]:
        """Nodes reachable from ``node_id`` (depth-first, deterministic)."""
        seen: Dict[NodeId, None] = {}
        stack = [node_id]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen[current] = None
            stack.extend(reversed(self.boxes[current].successors()))
        return list(seen)

    def halt_ids(self) -> Tuple[NodeId, ...]:
        return tuple(node_id for node_id, box in self.boxes.items()
                     if isinstance(box, HaltBox))

    def decision_ids(self) -> Tuple[NodeId, ...]:
        return tuple(node_id for node_id, box in self.boxes.items()
                     if isinstance(box, DecisionBox))

    def assignment_ids(self) -> Tuple[NodeId, ...]:
        return tuple(node_id for node_id, box in self.boxes.items()
                     if isinstance(box, AssignBox))

    def policy_change_ids(self) -> Tuple[NodeId, ...]:
        return tuple(node_id for node_id, box in self.boxes.items()
                     if isinstance(box, PolicyChangeBox))

    def downgrade_ids(self) -> Tuple[NodeId, ...]:
        return tuple(node_id for node_id, box in self.boxes.items()
                     if isinstance(box, DowngradeBox))

    def send_ids(self) -> Tuple[NodeId, ...]:
        return tuple(node_id for node_id, box in self.boxes.items()
                     if isinstance(box, SendBox))

    def recv_ids(self) -> Tuple[NodeId, ...]:
        return tuple(node_id for node_id, box in self.boxes.items()
                     if isinstance(box, RecvBox))

    def channels(self) -> Tuple[str, ...]:
        """Sorted names of every channel a send or recv box mentions."""
        names = set()
        for box in self.boxes.values():
            if isinstance(box, (SendBox, RecvBox)):
                names.add(box.channel)
        return tuple(sorted(names))

    def has_channels(self) -> bool:
        """True when the flowchart contains send or recv boxes (cached)."""
        return self._has_channels

    def has_dynamic_policy(self) -> bool:
        """True when the flowchart changes policies or downgrades labels."""
        return any(isinstance(box, (PolicyChangeBox, DowngradeBox))
                   for box in self.boxes.values())

    def program_variables(self) -> Tuple[str, ...]:
        """Assigned variables that are neither inputs nor the output."""
        names = set()
        for box in self.boxes.values():
            target = box.written_variable()
            if target and target != self.output_variable:
                names.add(target)
        return tuple(sorted(names))

    def all_variables(self) -> Tuple[str, ...]:
        """Inputs, program variables, and the output, in that order."""
        return self.input_variables + self.program_variables() + (self.output_variable,)

    def read_variables(self) -> FrozenSet[str]:
        result: set = set()
        for box in self.boxes.values():
            result |= box.read_variables()
        return frozenset(result)

    def input_index(self, variable: str) -> Optional[int]:
        """1-based input position of a variable, or None if not an input."""
        try:
            return self.input_variables.index(variable) + 1
        except ValueError:
            return None

    def predecessors(self) -> Dict[NodeId, List[NodeId]]:
        """Reverse adjacency (used by the CFG analyses)."""
        reverse: Dict[NodeId, List[NodeId]] = {node_id: [] for node_id in self.boxes}
        for node_id, box in self.boxes.items():
            for successor in box.successors():
                reverse[successor].append(node_id)
        return reverse

    def __repr__(self) -> str:
        return (f"Flowchart({self.name}: {len(self.boxes)} boxes, "
                f"inputs={list(self.input_variables)}, "
                f"output={self.output_variable!r})")

    def pretty(self) -> str:
        """A readable multi-line rendering (for examples and debugging)."""
        lines = [f"flowchart {self.name} "
                 f"(inputs: {', '.join(self.input_variables)}; "
                 f"output: {self.output_variable})"]
        for node_id in self.reachable_from(self.start_id):
            lines.append(f"  [{node_id}] {self.boxes[node_id]!r}")
        return "\n".join(lines)
