"""Step-counted execution of flowchart programs.

The paper's observability discussion (Sections 2-3) requires that
"running time" be a first-class, exactly reproducible quantity; we
define it as the **number of boxes executed after the start box**
(decision and assignment boxes count 1 each, the final halt box counts
1).  The start box's variable initialisation is free.  Any such
convention works, as the paper notes — what matters is that it is fixed
and deterministic.

Because the theory requires *total* functions, the interpreter takes a
``fuel`` bound and raises :class:`~repro.core.errors.FuelExhaustedError`
when exceeded.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core.errors import (ArityMismatchError, FuelExhaustedError,
                           MessageError, ValueCapExceededError)
from ..core.observability import (VALUE_AND_TIME, VALUE_ONLY, Observation,
                                  OutputModel)
from ..core.domains import ProductDomain
from ..core.program import Program
from ..obs import runtime as _obs
from ..robustness.faults import default_value_cap, resolve_value_cap
from .boxes import (AssignBox, DecisionBox, DowngradeBox, HaltBox, NodeId,
                    PolicyChangeBox, RecvBox, SendBox, StartBox)
from .program import Flowchart

DEFAULT_FUEL = 100_000


class ExecutionResult:
    """One complete run: value, step count, memory footprint, trace.

    ``touched`` is the set of variables the run read or wrote — the
    interpreter's "page" footprint.  The paper names page faults as
    exactly the kind of observable other models forget; ``faults``
    (= number of distinct variables touched) is the attribute the
    :func:`~repro.core.observability.with_extras` output models expose.
    """

    __slots__ = ("value", "steps", "trace", "env", "touched")

    def __init__(self, value: int, steps: int,
                 trace: Optional[Tuple[NodeId, ...]] = None,
                 env: Optional[Dict[str, int]] = None,
                 touched: Optional[frozenset] = None) -> None:
        self.value = value
        self.steps = steps
        self.trace = trace
        self.env = env
        self.touched = touched if touched is not None else frozenset()

    @property
    def faults(self) -> int:
        """Distinct variables touched — the page-fault count proxy."""
        return len(self.touched)

    def observation(self) -> Observation:
        return Observation(self.value, self.steps,
                           attributes={"faults": self.faults})

    def __repr__(self) -> str:
        return f"ExecutionResult(value={self.value}, steps={self.steps})"


def initial_environment(flowchart: Flowchart,
                        inputs: Sequence[int]) -> Dict[str, int]:
    """The start-box initialisation: inputs bound, everything else 0."""
    if len(inputs) != flowchart.arity:
        raise ArityMismatchError(
            f"flowchart {flowchart.name} takes {flowchart.arity} inputs, "
            f"got {len(inputs)}"
        )
    env: Dict[str, int] = {name: 0 for name in flowchart.program_variables()}
    # Variables that are read but never assigned are program variables
    # too — the start box initialises them to 0 like any other.
    for name in flowchart.read_variables():
        if name not in flowchart.input_variables:
            env.setdefault(name, 0)
    env[flowchart.output_variable] = 0
    for name, value in zip(flowchart.input_variables, inputs):
        env[name] = int(value)
    return env


def execute(flowchart: Flowchart, inputs: Sequence[int],
            fuel: int = DEFAULT_FUEL,
            record_trace: bool = False,
            capture_env: bool = False,
            value_cap: Optional[int] = None) -> ExecutionResult:
    """Run a flowchart to its halt box.

    Returns an :class:`ExecutionResult`; raises
    :class:`FuelExhaustedError` if the run exceeds ``fuel`` steps, and
    :class:`ValueCapExceededError` if any assignment produces a value
    wider than ``value_cap`` bits (default: the ``REPRO_VALUE_CAP``
    environment variable; unset means uncapped).

    ``capture_env`` is opt-in: only when True does the result carry a
    snapshot of the final environment (``result.env``).  The hot paths
    — ``as_program`` and the sweep runners — need only
    ``(value, steps, faults)``, and copying the full environment on
    every run is measurable across a 2^k x 3^k sweep.  ``touched`` (the
    fault-count observable) is always tracked.
    """
    cap = (default_value_cap() if value_cap is None
           else resolve_value_cap(value_cap))
    bound = (1 << cap) if cap is not None else None
    env = initial_environment(flowchart, inputs)
    trace: List[NodeId] = []
    touched: set = set()
    # Typed channels: unbounded FIFO queues, one per channel name,
    # starting empty.  A single-node run is the reference semantics the
    # distributed runtime must reproduce row-for-row.
    channels: Dict[str, List[int]] = {}
    steps = 0
    current: NodeId = flowchart.boxes[flowchart.start_id].successors()[0]
    # Sampling rate is latched per run; 0 (the default) keeps the loop
    # free of any observability work beyond one local truth test.
    sample = _obs.box_sample if _obs.trace_active else 0

    while True:
        if steps >= fuel:
            if _obs.active:
                _obs.record_fuel_exhausted(flowchart.name, fuel)
            raise FuelExhaustedError(fuel,
                                     f"flowchart {flowchart.name} exceeded "
                                     f"{fuel} steps on input {tuple(inputs)!r}")
        box = flowchart.boxes[current]
        if record_trace:
            trace.append(current)
        steps += 1
        if sample and steps % sample == 0:
            _obs.emit("box_step", program=flowchart.name,
                      node=str(current), steps=steps)
        if isinstance(box, HaltBox):
            touched.add(flowchart.output_variable)
            if _obs.active:
                _obs.record_run("interpreted", flowchart.name, steps)
            return ExecutionResult(
                env[flowchart.output_variable], steps,
                tuple(trace) if record_trace else None,
                dict(env) if capture_env else None,
                frozenset(touched),
            )
        if isinstance(box, AssignBox):
            touched.add(box.target)
            touched.update(box.expression.variables())
            value = box.expression.eval(env)
            env[box.target] = value
            if bound is not None and (value >= bound or value <= -bound):
                if _obs.active:
                    _obs.record_value_cap_exceeded(flowchart.name, cap)
                raise ValueCapExceededError(
                    cap, f"flowchart {flowchart.name} assigned a value "
                         f"wider than {cap} bits on input {tuple(inputs)!r}")
            current = box.next
        elif isinstance(box, DecisionBox):
            touched.update(box.predicate.variables())
            current = box.true_next if box.predicate.eval(env) else box.false_next
        elif isinstance(box, DowngradeBox):
            # Values are untouched; the label rewrite happens in the
            # surveillance layers.  The box still costs one step and
            # touches its variable (the relabel reads it).
            touched.add(box.variable)
            current = box.next
        elif isinstance(box, PolicyChangeBox):
            # Pure policy effect: no variable access, one step.
            current = box.next
        elif isinstance(box, SendBox):
            touched.add(box.variable)
            channels.setdefault(box.channel, []).append(env[box.variable])
            current = box.next
        elif isinstance(box, RecvBox):
            queue = channels.get(box.channel)
            if not queue:
                raise MessageError(
                    f"empty:{box.channel}",
                    f"flowchart {flowchart.name} received on empty channel "
                    f"{box.channel!r} on input {tuple(inputs)!r}")
            touched.add(box.variable)
            env[box.variable] = queue.pop(0)
            current = box.next
        elif isinstance(box, StartBox):  # pragma: no cover - validation forbids
            current = box.next
        else:  # pragma: no cover - closed box hierarchy
            raise TypeError(f"unknown box type {type(box).__name__}")


def as_program(flowchart: Flowchart, domain: ProductDomain,
               output_model: OutputModel = VALUE_ONLY,
               fuel: int = DEFAULT_FUEL,
               name: Optional[str] = None,
               backend: Optional[str] = None,
               value_cap: Optional[int] = None) -> Program:
    """Wrap a flowchart as a Section 2 :class:`Program`.

    The output depends on the declared :class:`OutputModel` — the
    Observability Postulate in action:

    - :data:`VALUE_ONLY`: range is Z, output is ``y``.
    - :data:`VALUE_AND_TIME`: range is Z x Z, output is ``(y, steps)``.
    - models with extra observables project the full
      :class:`Observation` accordingly.

    ``backend`` selects the execution engine: ``"compiled"`` (source
    generation + ``compile()``, see :mod:`repro.flowchart.fastpath`) or
    ``"interpreted"`` (the tree-walking interpreter above).  ``None``
    defers to the ``REPRO_BACKEND`` environment variable and the
    library default; both engines produce identical observations.
    """
    if domain.arity != flowchart.arity:
        raise ArityMismatchError(
            f"domain arity {domain.arity} != flowchart arity {flowchart.arity}"
        )

    from .fastpath import run_flowchart

    def run(*inputs):
        result = run_flowchart(flowchart, inputs, fuel=fuel, backend=backend,
                               value_cap=value_cap)
        return output_model.project(result.observation())

    label = name or flowchart.name
    if output_model is VALUE_AND_TIME:
        label = f"{label}+time"
    elif output_model is not VALUE_ONLY:
        label = f"{label}+{output_model.name}"
    return Program(run, domain, name=label)


def running_time(flowchart: Flowchart, inputs: Sequence[int],
                 fuel: int = DEFAULT_FUEL) -> int:
    """Just the step count (the paper's implicit output)."""
    return execute(flowchart, inputs, fuel=fuel).steps
