"""Expressions and predicates for flowchart programs (Section 3).

The paper's flowcharts label assignment boxes with expressions
``E(w1, ..., wp)`` and decision boxes with predicates ``B(w1, ..., wp)``
over integer variables, with "no specific assumptions ... about what
predicates or expressions are allowed: any reasonable choice" (any
recursive ones).  We supply a small total expression language over the
integers:

- constants, variables,
- arithmetic: ``+ - * // % min max`` and unary negation (division and
  modulus by zero are *defined* — they yield 0 — to keep every
  expression total, as the paper's programs must be),
- bitwise ``| & ^ ~`` (used by the literal surveillance instrumentation,
  which encodes label sets as bitmasks),
- predicates: comparisons, boolean connectives, and constants.

The one piece of static information the surveillance mechanism needs is
:meth:`Expr.variables` — the ``w1, ..., wp`` appearing in a box — which
every node exposes.
"""

from __future__ import annotations

from typing import FrozenSet, Mapping, Tuple, Union

from ..core.errors import ExecutionError


class Expr:
    """Base class for integer-valued expressions."""

    def eval(self, env: Mapping[str, int]) -> int:
        raise NotImplementedError

    def variables(self) -> FrozenSet[str]:
        """The variables ``w1, ..., wp`` this expression reads."""
        raise NotImplementedError

    # Operator sugar so programs read naturally in builder code.
    def __add__(self, other): return BinOp("+", self, _lift(other))
    def __radd__(self, other): return BinOp("+", _lift(other), self)
    def __sub__(self, other): return BinOp("-", self, _lift(other))
    def __rsub__(self, other): return BinOp("-", _lift(other), self)
    def __mul__(self, other): return BinOp("*", self, _lift(other))
    def __rmul__(self, other): return BinOp("*", _lift(other), self)
    def __floordiv__(self, other): return BinOp("//", self, _lift(other))
    def __mod__(self, other): return BinOp("%", self, _lift(other))
    def __or__(self, other): return BinOp("|", self, _lift(other))
    def __and__(self, other): return BinOp("&", self, _lift(other))
    def __xor__(self, other): return BinOp("^", self, _lift(other))
    def __neg__(self): return Neg(self)

    # Comparison sugar produces predicates.
    def eq(self, other): return Compare("==", self, _lift(other))
    def ne(self, other): return Compare("!=", self, _lift(other))
    def lt(self, other): return Compare("<", self, _lift(other))
    def le(self, other): return Compare("<=", self, _lift(other))
    def gt(self, other): return Compare(">", self, _lift(other))
    def ge(self, other): return Compare(">=", self, _lift(other))


def _lift(value: Union[int, Expr]) -> Expr:
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool) or not isinstance(value, int):
        raise ExecutionError(f"cannot lift {value!r} into an integer expression")
    return Const(value)


class Const(Expr):
    """An integer literal."""

    __slots__ = ("value",)

    def __init__(self, value: int) -> None:
        if isinstance(value, bool) or not isinstance(value, int):
            raise ExecutionError(f"Const requires an int, got {value!r}")
        self.value = value

    def eval(self, env: Mapping[str, int]) -> int:
        return self.value

    def variables(self) -> FrozenSet[str]:
        return frozenset()

    def __repr__(self) -> str:
        return str(self.value)


class Var(Expr):
    """A variable reference (input ``x_i``, program ``r_j``, or output ``y``)."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        if not name or not isinstance(name, str):
            raise ExecutionError(f"variable name must be a non-empty string, got {name!r}")
        self.name = name

    def eval(self, env: Mapping[str, int]) -> int:
        try:
            return env[self.name]
        except KeyError:
            raise ExecutionError(f"unbound variable {self.name!r}") from None

    def variables(self) -> FrozenSet[str]:
        return frozenset((self.name,))

    def __repr__(self) -> str:
        return self.name


_BINOPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    # Total by definition: division/modulus by zero yields 0.
    "//": lambda a, b: a // b if b != 0 else 0,
    "%": lambda a, b: a % b if b != 0 else 0,
    "min": min,
    "max": max,
    "|": lambda a, b: a | b,
    "&": lambda a, b: a & b,
    "^": lambda a, b: a ^ b,
}


class BinOp(Expr):
    """A binary arithmetic/bitwise operation."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr) -> None:
        if op not in _BINOPS:
            raise ExecutionError(f"unknown operator {op!r}")
        self.op = op
        self.left = _lift(left)
        self.right = _lift(right)

    def eval(self, env: Mapping[str, int]) -> int:
        return _BINOPS[self.op](self.left.eval(env), self.right.eval(env))

    def variables(self) -> FrozenSet[str]:
        return self.left.variables() | self.right.variables()

    def __repr__(self) -> str:
        if self.op in ("min", "max"):
            return f"{self.op}({self.left!r}, {self.right!r})"
        return f"({self.left!r} {self.op} {self.right!r})"


class Neg(Expr):
    """Unary negation."""

    __slots__ = ("operand",)

    def __init__(self, operand: Expr) -> None:
        self.operand = _lift(operand)

    def eval(self, env: Mapping[str, int]) -> int:
        return -self.operand.eval(env)

    def variables(self) -> FrozenSet[str]:
        return self.operand.variables()

    def __repr__(self) -> str:
        return f"(-{self.operand!r})"


class Pred:
    """Base class for boolean-valued predicates (decision-box labels)."""

    def eval(self, env: Mapping[str, int]) -> bool:
        raise NotImplementedError

    def variables(self) -> FrozenSet[str]:
        raise NotImplementedError

    def __invert__(self) -> "Pred":
        return Not(self)

    def and_(self, other: "Pred") -> "Pred":
        return And(self, other)

    def or_(self, other: "Pred") -> "Pred":
        return Or(self, other)


_COMPARISONS = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


class Compare(Pred):
    """An integer comparison predicate."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr) -> None:
        if op not in _COMPARISONS:
            raise ExecutionError(f"unknown comparison {op!r}")
        self.op = op
        self.left = _lift(left)
        self.right = _lift(right)

    def eval(self, env: Mapping[str, int]) -> bool:
        return _COMPARISONS[self.op](self.left.eval(env), self.right.eval(env))

    def variables(self) -> FrozenSet[str]:
        return self.left.variables() | self.right.variables()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


class BoolConst(Pred):
    """A constant predicate (used by degenerate decisions in transforms)."""

    __slots__ = ("value",)

    def __init__(self, value: bool) -> None:
        self.value = bool(value)

    def eval(self, env: Mapping[str, int]) -> bool:
        return self.value

    def variables(self) -> FrozenSet[str]:
        return frozenset()

    def __repr__(self) -> str:
        return "TRUE" if self.value else "FALSE"


class Not(Pred):
    __slots__ = ("operand",)

    def __init__(self, operand: Pred) -> None:
        self.operand = operand

    def eval(self, env: Mapping[str, int]) -> bool:
        return not self.operand.eval(env)

    def variables(self) -> FrozenSet[str]:
        return self.operand.variables()

    def __repr__(self) -> str:
        return f"(not {self.operand!r})"


class And(Pred):
    __slots__ = ("left", "right")

    def __init__(self, left: Pred, right: Pred) -> None:
        self.left = left
        self.right = right

    def eval(self, env: Mapping[str, int]) -> bool:
        return self.left.eval(env) and self.right.eval(env)

    def variables(self) -> FrozenSet[str]:
        return self.left.variables() | self.right.variables()

    def __repr__(self) -> str:
        return f"({self.left!r} and {self.right!r})"


class Or(Pred):
    __slots__ = ("left", "right")

    def __init__(self, left: Pred, right: Pred) -> None:
        self.left = left
        self.right = right

    def eval(self, env: Mapping[str, int]) -> bool:
        return self.left.eval(env) or self.right.eval(env)

    def variables(self) -> FrozenSet[str]:
        return self.left.variables() | self.right.variables()

    def __repr__(self) -> str:
        return f"({self.left!r} or {self.right!r})"


def var(name: str) -> Var:
    """Shorthand constructor: ``var("x1") + 2`` etc."""
    return Var(name)


def const(value: int) -> Const:
    return Const(value)


def variables_of(node: Union[Expr, Pred]) -> Tuple[str, ...]:
    """Sorted tuple of the variables a node reads (stable for tests)."""
    return tuple(sorted(node.variables()))


class Ite(Expr):
    """A conditional *expression* — Example 7's ``f(x1)``.

    ``Ite(p, a, b)`` evaluates ``a`` if ``p`` holds, else ``b`` — in a
    single step, as ordinary data flow.  This is exactly what the
    if-then-else transform of Section 4 produces: the branch's control
    dependence becomes data dependence of one expression, so
    :meth:`variables` reports *all* variables of the predicate and both
    arms ("one must assume the worst case", Example 8).
    """

    __slots__ = ("predicate", "then_value", "else_value")

    def __init__(self, predicate: "Pred", then_value: Expr,
                 else_value: Expr) -> None:
        if not isinstance(predicate, Pred):
            raise ExecutionError(
                f"Ite requires a Pred, got {type(predicate).__name__}")
        self.predicate = predicate
        self.then_value = _lift(then_value)
        self.else_value = _lift(else_value)

    def eval(self, env: Mapping[str, int]) -> int:
        if self.predicate.eval(env):
            return self.then_value.eval(env)
        return self.else_value.eval(env)

    def variables(self) -> FrozenSet[str]:
        return (self.predicate.variables()
                | self.then_value.variables()
                | self.else_value.variables())

    def __repr__(self) -> str:
        return (f"Ite({self.predicate!r}, {self.then_value!r}, "
                f"{self.else_value!r})")


class LoopExpr(Expr):
    """A whole while-loop folded into one expression (the while transform).

    Section 4: "we could create a *while* transform that operates
    [analogously to the if-then-else transform]".  The loop

        ``while B do {v1 := E1; ...; vn := En}``

    is functionally equivalent to a single simultaneous update computing
    each variable's final value.  ``LoopExpr(B, updates, result)``
    iterates the simultaneous updates until ``B`` fails and yields the
    final value of ``result`` — in *one* expression-evaluation step, so
    the surveillance mechanism sees pure data flow over
    ``vars(B) ∪ vars(E1..En)``.  The paper allows this: "so long as
    predicates and expressions are recursive there is no difficulty".

    A ``fuel`` bound keeps the expression total; exceeding it raises
    :class:`~repro.core.errors.ExecutionError`.
    """

    __slots__ = ("predicate", "updates", "result", "fuel")

    def __init__(self, predicate: "Pred", updates: Mapping[str, Expr],
                 result: str, fuel: int = 100_000) -> None:
        if not isinstance(predicate, Pred):
            raise ExecutionError(
                f"LoopExpr requires a Pred, got {type(predicate).__name__}")
        if result not in updates:
            # The result variable need not be updated, but must at least
            # be readable; allow either.
            pass
        self.predicate = predicate
        self.updates = {name: _lift(expr) for name, expr in updates.items()}
        self.result = result
        self.fuel = fuel

    def eval(self, env: Mapping[str, int]) -> int:
        local = dict(env)
        iterations = 0
        while self.predicate.eval(local):
            iterations += 1
            if iterations > self.fuel:
                raise ExecutionError(
                    f"LoopExpr exceeded fuel {self.fuel}")
            # Simultaneous update, matching straight-line bodies whose
            # reads precede writes per iteration.
            snapshot = dict(local)
            for name, expression in self.updates.items():
                local[name] = expression.eval(snapshot)
        try:
            return local[self.result]
        except KeyError:
            raise ExecutionError(
                f"LoopExpr result variable {self.result!r} unbound") from None

    def variables(self) -> FrozenSet[str]:
        names: set = set(self.predicate.variables())
        names.add(self.result)
        for target, expression in self.updates.items():
            names.add(target)
            names |= expression.variables()
        return frozenset(names)

    def __repr__(self) -> str:
        updates = ", ".join(f"{k} := {v!r}" for k, v in self.updates.items())
        return f"LoopExpr(while {self.predicate!r} do [{updates}] yield {self.result})"


def substitute(node, mapping: Mapping[str, Expr]):
    """Capture-avoiding substitution of variables by expressions.

    Works over both expressions and predicates; used by the transforms
    to compose straight-line assignment chains symbolically.
    """
    if isinstance(node, Const):
        return node
    if isinstance(node, Var):
        return mapping.get(node.name, node)
    if isinstance(node, BinOp):
        return BinOp(node.op, substitute(node.left, mapping),
                     substitute(node.right, mapping))
    if isinstance(node, Neg):
        return Neg(substitute(node.operand, mapping))
    if isinstance(node, Ite):
        return Ite(substitute(node.predicate, mapping),
                   substitute(node.then_value, mapping),
                   substitute(node.else_value, mapping))
    if isinstance(node, LoopExpr):
        # Loop-bound variables shadow the mapping.
        outer = {name: expr for name, expr in mapping.items()
                 if name not in node.updates}
        return LoopExpr(substitute(node.predicate, outer),
                        {name: substitute(expr, outer)
                         for name, expr in node.updates.items()},
                        node.result, node.fuel)
    if isinstance(node, Compare):
        return Compare(node.op, substitute(node.left, mapping),
                       substitute(node.right, mapping))
    if isinstance(node, BoolConst):
        return node
    if isinstance(node, Not):
        return Not(substitute(node.operand, mapping))
    if isinstance(node, And):
        return And(substitute(node.left, mapping),
                   substitute(node.right, mapping))
    if isinstance(node, Or):
        return Or(substitute(node.left, mapping),
                  substitute(node.right, mapping))
    raise ExecutionError(f"cannot substitute into {type(node).__name__}")


def structurally_equal(first, second) -> bool:
    """Structural equality of expressions/predicates.

    Used by the transforms to recognise identical branch effects (so
    Example 7's common ``y := 1`` is emitted clean rather than merged
    into a tainting :class:`Ite`).
    """
    if type(first) is not type(second):
        return False
    if isinstance(first, Const):
        return first.value == second.value
    if isinstance(first, Var):
        return first.name == second.name
    if isinstance(first, BinOp):
        return (first.op == second.op
                and structurally_equal(first.left, second.left)
                and structurally_equal(first.right, second.right))
    if isinstance(first, Neg):
        return structurally_equal(first.operand, second.operand)
    if isinstance(first, Ite):
        return (structurally_equal(first.predicate, second.predicate)
                and structurally_equal(first.then_value, second.then_value)
                and structurally_equal(first.else_value, second.else_value))
    if isinstance(first, LoopExpr):
        if first.result != second.result:
            return False
        if set(first.updates) != set(second.updates):
            return False
        return (structurally_equal(first.predicate, second.predicate)
                and all(structurally_equal(first.updates[k], second.updates[k])
                        for k in first.updates))
    if isinstance(first, Compare):
        return (first.op == second.op
                and structurally_equal(first.left, second.left)
                and structurally_equal(first.right, second.right))
    if isinstance(first, BoolConst):
        return first.value == second.value
    if isinstance(first, Not):
        return structurally_equal(first.operand, second.operand)
    if isinstance(first, (And, Or)):
        return (structurally_equal(first.left, second.left)
                and structurally_equal(first.right, second.right))
    return False
