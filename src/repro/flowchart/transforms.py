"""Program transforms (Sections 4 and 5).

Section 4: *"Given a program Q, transform it to Q' where Q and Q' are
functionally equivalent.  Then apply the surveillance protection
mechanism to Q' to yield a sound protection mechanism for Q."*

Three transforms from the paper:

- :func:`ite_transform` — Example 7's if-then-else transform.  A
  diamond ``if B then {assignments} else {assignments}`` is replaced by
  straight-line merged assignments ``v := Ite(B, E_then, E_else)``;
  control dependence becomes data dependence.  Arms with *identical*
  effects on a variable merge to a clean (untainted) assignment, which
  is what makes the transform profitable in Example 7 — and the absence
  of any cleverness beyond that is what makes it *harmful* in Example 8
  ("one must assume the worst case").
- :func:`while_transform` — the analogous while transform, folding an
  assignment-body loop into a single :class:`~repro.flowchart.expr.LoopExpr`
  assignment per variable.
- :func:`duplicate_assignment_transform` — Example 9's compile-time
  transform: duplicate the then-arm's trailing assignment above the
  decision (the else arm's own trailing assignment makes the duplicate
  dead on that path).  The then path then computes its output before
  any tainting branch, so the transformed program's mechanism issues a
  violation notice only on the else path — Example 9's "only in case
  x1 ≠ 0".

All transforms preserve the computed *value* on every input
(:func:`functionally_equivalent` checks this exhaustively); they do not
preserve running time, which is why Section 4 studies them under the
time-unobservable model.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional

from ..core.domains import ProductDomain
from ..core.errors import FlowchartError
from .analysis import IteRegion, WhileRegion, find_ite_regions, find_while_regions
from .boxes import AssignBox, Box, DecisionBox, NodeId, StartBox
from .expr import Expr, Ite, LoopExpr, Var, structurally_equal, substitute
from .interpreter import DEFAULT_FUEL, execute
from .program import Flowchart

_fresh_counter = itertools.count()


def _fresh_id(hint: str) -> NodeId:
    return f"__{hint}{next(_fresh_counter)}"


def symbolic_effect(flowchart: Flowchart,
                    chain: List[NodeId]) -> Dict[str, Expr]:
    """The net effect of a straight-line assignment chain.

    Returns ``{variable: expression}`` where each expression is in terms
    of the values *before* the chain ran (classic symbolic composition
    by substitution).
    """
    effect: Dict[str, Expr] = {}
    for node_id in chain:
        box = flowchart.boxes[node_id]
        if not isinstance(box, AssignBox):
            raise FlowchartError(f"chain node {node_id!r} is not an assignment")
        effect[box.target] = substitute(box.expression, effect)
    return effect


def _repoint(boxes: Dict[NodeId, Box], old: NodeId, new: NodeId) -> None:
    """Rewrite every successor reference ``old`` -> ``new`` in place."""
    for node_id, box in list(boxes.items()):
        if isinstance(box, StartBox) and box.next == old:
            boxes[node_id] = StartBox(new)
        elif isinstance(box, AssignBox) and box.next == old:
            boxes[node_id] = AssignBox(box.target, box.expression, new)
        elif isinstance(box, DecisionBox):
            true_next = new if box.true_next == old else box.true_next
            false_next = new if box.false_next == old else box.false_next
            if (true_next, false_next) != (box.true_next, box.false_next):
                boxes[node_id] = DecisionBox(box.predicate, true_next,
                                             false_next)


def _emit_assignment_sequence(boxes: Dict[NodeId, Box],
                              merged: Dict[str, Expr],
                              entry_id: NodeId, join: NodeId) -> None:
    """Splice ``merged`` simultaneous assignments as a sequential chain.

    Simultaneous semantics is preserved by assigning to temporaries
    first when a merged expression reads another merged variable.
    """
    targets = sorted(merged)
    read_by_others = set()
    for expression in merged.values():
        read_by_others |= expression.variables()
    hazard = any(target in read_by_others for target in targets) and len(targets) > 1

    steps: List[tuple] = []
    if hazard:
        temp_names = {target: f"_t_{target}_{next(_fresh_counter)}"
                      for target in targets}
        for target in targets:
            steps.append((temp_names[target], merged[target]))
        for target in targets:
            steps.append((target, Var(temp_names[target])))
    else:
        for target in targets:
            steps.append((target, merged[target]))

    current_id = entry_id
    for index, (target, expression) in enumerate(steps):
        next_id = join if index == len(steps) - 1 else _fresh_id("t")
        boxes[current_id] = AssignBox(target, expression, next_id)
        current_id = next_id


def ite_transform(flowchart: Flowchart, region: IteRegion,
                  detect_identical_arms: bool = False,
                  name: Optional[str] = None) -> Flowchart:
    """Apply the if-then-else transform to one region (Example 7).

    The decision and both arm chains are replaced by merged assignments
    ``v := Ite(B, then_effect, else_effect)`` — every merged variable
    becomes data-dependent on the test, because "since one does not know
    which branch is to be taken one must assume the worst case"
    (Example 8).  That blindness is the paper's transform, and it is
    what makes the transform *always* produce a violation notice on
    Example 9's program.

    ``detect_identical_arms=True`` enables the smarter-compiler
    extension: a variable whose two arm-effects are structurally equal
    gets a plain assignment, independent of the test.  This is an
    ablation, not the paper's transform (bench E09/E10 compare both).
    """
    decision = flowchart.boxes[region.decision]
    if not isinstance(decision, DecisionBox):
        raise FlowchartError(f"{region.decision!r} is not a decision box")

    then_effect = symbolic_effect(flowchart, region.then_chain)
    else_effect = symbolic_effect(flowchart, region.else_chain)

    merged: Dict[str, Expr] = {}
    for target in sorted(set(then_effect) | set(else_effect)):
        then_expr = then_effect.get(target, Var(target))
        else_expr = else_effect.get(target, Var(target))
        if detect_identical_arms and structurally_equal(then_expr, else_expr):
            merged[target] = then_expr
        else:
            merged[target] = Ite(decision.predicate, then_expr, else_expr)

    boxes: Dict[NodeId, Box] = {
        node_id: box for node_id, box in flowchart.boxes.items()
        if node_id not in region.interior()
    }
    if merged:
        # Reuse the decision's id as the entry so predecessors stay wired.
        _emit_assignment_sequence(boxes, merged, region.decision, region.join)
    else:
        _repoint(boxes, region.decision, region.join)

    return Flowchart(boxes, flowchart.input_variables,
                     flowchart.output_variable,
                     name=name or f"{flowchart.name}-ite")


def ite_transform_all(flowchart: Flowchart,
                      detect_identical_arms: bool = False,
                      name: Optional[str] = None) -> Flowchart:
    """Apply :func:`ite_transform` until no if-then-else regions remain."""
    result = flowchart
    while True:
        regions = find_ite_regions(result)
        if not regions:
            break
        result = ite_transform(result, regions[0],
                               detect_identical_arms=detect_identical_arms)
    if name:
        result = Flowchart(result.boxes, result.input_variables,
                           result.output_variable, name=name)
    return result


def while_transform(flowchart: Flowchart, region: WhileRegion,
                    fuel: int = DEFAULT_FUEL,
                    name: Optional[str] = None) -> Flowchart:
    """Fold a while loop into straight-line LoopExpr assignments.

    Every variable updated by the body receives
    ``v := LoopExpr(B, body_updates, v)``: its exact final value, in a
    single expression-evaluation step whose data dependence covers the
    test and the whole body.
    """
    decision = flowchart.boxes[region.decision]
    if not isinstance(decision, DecisionBox):
        raise FlowchartError(f"{region.decision!r} is not a decision box")
    # Orient the predicate: the loop continues on whichever arm the
    # body hangs off.
    body_first = region.body_chain[0]
    if decision.true_next == body_first:
        continue_pred = decision.predicate
    else:
        from .expr import Not

        continue_pred = Not(decision.predicate)

    updates = symbolic_effect(flowchart, region.body_chain)
    merged: Dict[str, Expr] = {
        target: LoopExpr(continue_pred, updates, target, fuel=fuel)
        for target in sorted(updates)
    }

    boxes: Dict[NodeId, Box] = {
        node_id: box for node_id, box in flowchart.boxes.items()
        if node_id not in region.interior()
    }
    _emit_assignment_sequence(boxes, merged, region.decision, region.exit)
    return Flowchart(boxes, flowchart.input_variables,
                     flowchart.output_variable,
                     name=name or f"{flowchart.name}-while")


def while_transform_all(flowchart: Flowchart,
                        name: Optional[str] = None) -> Flowchart:
    """Apply :func:`while_transform` until no while regions remain."""
    result = flowchart
    while True:
        regions = find_while_regions(result)
        if not regions:
            break
        result = while_transform(result, regions[0])
    if name:
        result = Flowchart(result.boxes, result.input_variables,
                           result.output_variable, name=name)
    return result


def duplicate_assignment_transform(flowchart: Flowchart, region: IteRegion,
                                   drop_both: bool = False,
                                   name: Optional[str] = None) -> Flowchart:
    """Example 9's transform: duplicate an arm's trailing assignment
    above the decision.

    The then-arm's trailing assignment ``T := E`` is copied in front of
    the test and removed from the arm; on the else path the duplicate is
    dead (the else arm's own trailing assignment to ``T`` overwrites
    it), so the result is functionally equivalent — but the then path
    now computes ``T`` *before* any branch on the test, which is what
    lets the transformed program's surveillance mechanism accept it
    (Example 9: a violation notice only when x1 ≠ 0).

    Safety conditions (checked, :class:`FlowchartError` otherwise):

    - both arms end with an assignment to the same variable ``T``
      (the else copy guarantees the overwrite);
    - ``E`` reads no variable written earlier in the then-arm (it is
      evaluated earlier now);
    - ``T`` is read nowhere in the region (decision predicate or either
      arm), so the early write cannot be observed before the overwrite.

    ``drop_both=True`` additionally removes the else copy; that is only
    equivalence-preserving when the two trailing expressions are
    structurally equal (the identical-arms special case), and is
    rejected otherwise.
    """
    if not region.then_chain or not region.else_chain:
        raise FlowchartError("duplicate transform needs non-empty arms")
    decision = flowchart.boxes[region.decision]
    assert isinstance(decision, DecisionBox)
    then_last = flowchart.boxes[region.then_chain[-1]]
    else_last = flowchart.boxes[region.else_chain[-1]]
    assert isinstance(then_last, AssignBox) and isinstance(else_last, AssignBox)
    if then_last.target != else_last.target:
        raise FlowchartError("arms end with assignments to different variables")
    target = then_last.target
    hoisted = then_last.expression

    then_earlier_writes = set()
    for node_id in region.then_chain[:-1]:
        box = flowchart.boxes[node_id]
        assert isinstance(box, AssignBox)
        then_earlier_writes.add(box.target)
    if hoisted.variables() & then_earlier_writes:
        raise FlowchartError(
            "trailing assignment reads arm-local values; cannot hoist")
    if target in hoisted.variables():
        raise FlowchartError("trailing assignment reads its own target")

    region_reads = set(decision.predicate.variables())
    for node_id in region.then_chain[:-1] + region.else_chain:
        region_reads |= flowchart.boxes[node_id].read_variables()
    if target in region_reads:
        raise FlowchartError(
            f"{target!r} is read inside the region; hoisting would be "
            "observable before the overwrite")

    if drop_both and not structurally_equal(then_last.expression,
                                            else_last.expression):
        raise FlowchartError(
            "drop_both requires identical trailing assignments")

    boxes: Dict[NodeId, Box] = dict(flowchart.boxes)

    # Hoist: a new assignment box takes over the decision's id, followed
    # by the decision under a fresh id.
    new_decision_id = _fresh_id("d")
    boxes.pop(region.decision)
    boxes[region.decision] = AssignBox(target, hoisted, new_decision_id)
    boxes[new_decision_id] = decision

    def drop_trailing(chain: List[NodeId]) -> None:
        last_id = chain[-1]
        last_box = boxes.pop(last_id)
        assert isinstance(last_box, AssignBox)
        _repoint(boxes, last_id, last_box.next)

    drop_trailing(region.then_chain)
    if drop_both:
        drop_trailing(region.else_chain)

    return Flowchart(boxes, flowchart.input_variables,
                     flowchart.output_variable,
                     name=name or f"{flowchart.name}-dup")


def functionally_equivalent(first: Flowchart, second: Flowchart,
                            domain: ProductDomain,
                            fuel: int = DEFAULT_FUEL) -> bool:
    """Exhaustively check two flowcharts compute the same *value*.

    Equivalence is on values only — transforms deliberately change
    running time, which is why Section 4 studies them under the
    time-unobservable output model.
    """
    if first.arity != second.arity or domain.arity != first.arity:
        raise FlowchartError("arity mismatch in equivalence check")
    for point in domain:
        if execute(first, point, fuel=fuel).value != execute(second, point, fuel=fuel).value:
            return False
    return True
