"""The influence pass: a static fixpoint over the surveillance lattice.

Section 3's surveillance mechanism computes, *at run time*, an
over-approximation of which inputs influenced each variable and the
program counter.  This module computes the compile-time counterpart: an
iterative forward dataflow over the same powerset-of-inputs labels,
joining over all paths instead of following one.

Invariant (the static-soundness property the test suite checks on every
concrete run): at any box ``n`` and any point of any execution that
reaches ``n``,

- ``pc_influence[n]`` ⊇ the dynamic C̄ at that moment, and
- ``var_influence[n][v]`` ⊇ the dynamic *high-water* label of ``v``
  (and hence ⊇ the forgetting surveillance label, since high-water
  dominates it pointwise).

To guarantee the high-water half, the transfer function itself is
high-water style — an assignment *accumulates* into the old label
rather than replacing it — and the PC component is the monotone
forward union of test labels.  Implicit flows are additionally folded
in through :func:`repro.staticflow.cfgcertify.control_dependencies`
(the Ferrante–Ottenstein–Warren criterion over
:func:`repro.flowchart.analysis.postdominators`), matching the paper's
rule 2: an assignment reached under a decision carries that decision's
test label.

The verdict: a flowchart is *statically certified* for ``allow(J)``
iff at every halt box ``var_influence[halt][y] ∪ pc_influence[halt]
⊆ J``.  Soundness argument (no execution needed): static labels
dominate dynamic surveillance labels, so a certified program can never
trip surveillance's rule-4 check — the surveillance mechanism equals Q
everywhere, and by Theorem 3 that mechanism is sound, hence Q itself is
sound for the policy.  The price is completeness: the join over paths
rejects programs the dynamic mechanism (let alone Theorem 2's maximal
mechanism) accepts — the gap :mod:`repro.analysis.precision` measures.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional

from ..core.errors import PolicyError
from ..core.policy import AllowPolicy
from ..flowchart.boxes import (AssignBox, DecisionBox, NodeId, RecvBox,
                               SendBox)
from ..flowchart.program import Flowchart
from ..staticflow.cfgcertify import control_dependencies

Label = FrozenSet[int]

EMPTY: Label = frozenset()


class StaticVerdict:
    """Outcome of checking the influence fixpoint against a policy."""

    __slots__ = ("certified", "output_label", "allowed", "halt_labels")

    def __init__(self, certified: bool, output_label: Label, allowed: Label,
                 halt_labels: Dict[NodeId, Label]) -> None:
        self.certified = certified
        self.output_label = output_label
        self.allowed = allowed
        self.halt_labels = dict(halt_labels)

    def __bool__(self) -> bool:
        return self.certified

    @property
    def excess(self) -> Label:
        """Input indices the output may depend on beyond the policy."""
        return self.output_label - self.allowed

    def __repr__(self) -> str:
        verdict = "CERTIFIED" if self.certified else "REJECTED"
        return (f"StaticVerdict({verdict}: ȳ={sorted(self.output_label)} "
                f"vs J={sorted(self.allowed)})")


class InfluenceAnalysis:
    """Fixpoint result: per-box PC and per-variable influence labels."""

    def __init__(self, flowchart: Flowchart,
                 pc_influence: Dict[NodeId, Label],
                 var_influence: Dict[NodeId, Dict[str, Label]],
                 iterations: int) -> None:
        self.flowchart = flowchart
        self.pc_influence = dict(pc_influence)
        self.var_influence = {node: dict(state)
                              for node, state in var_influence.items()}
        self.iterations = iterations

    def label_at(self, node: NodeId, variable: str) -> Label:
        """The influence label of ``variable`` on entry to ``node``."""
        return self.var_influence.get(node, {}).get(variable, EMPTY)

    def test_label(self, decision_id: NodeId) -> Label:
        """The static label of a decision's test, at its own state."""
        box = self.flowchart.boxes[decision_id]
        assert isinstance(box, DecisionBox)
        state = self.var_influence.get(decision_id, {})
        label: Label = EMPTY
        for name in box.predicate.variables():
            label |= state.get(name, EMPTY)
        return label

    def output_label(self) -> Label:
        """Join over halts of ``label(y) ∪ pc`` — what the user may learn."""
        label: Label = EMPTY
        for halt_id, halt_label in self.halt_labels().items():
            label |= halt_label
        return label

    def halt_labels(self) -> Dict[NodeId, Label]:
        """Per-halt observable label: ``label(y) ∪ pc`` at that halt."""
        output = self.flowchart.output_variable
        return {
            halt_id: (self.label_at(halt_id, output)
                      | self.pc_influence.get(halt_id, EMPTY))
            for halt_id in self.flowchart.halt_ids()
        }

    def verdict(self, policy: AllowPolicy) -> StaticVerdict:
        """Certify the flowchart for ``allow(J)`` without executing it."""
        if not isinstance(policy, AllowPolicy):
            raise PolicyError(
                "the influence verdict is defined for allow(...) policies")
        if policy.arity != self.flowchart.arity:
            raise PolicyError(
                f"policy arity {policy.arity} != flowchart arity "
                f"{self.flowchart.arity}")
        halts = self.halt_labels()
        output = EMPTY
        for label in halts.values():
            output |= label
        return StaticVerdict(output <= policy.allowed, output,
                             policy.allowed, halts)

    def __repr__(self) -> str:
        return (f"InfluenceAnalysis({self.flowchart.name}: "
                f"{len(self.var_influence)} boxes, "
                f"iterations={self.iterations})")


def influence_analysis(flowchart: Flowchart) -> InfluenceAnalysis:
    """Run the forward influence fixpoint over a flowchart.

    States are *entry* states: ``var_influence[n]`` / ``pc_influence[n]``
    describe the moment control is about to execute box ``n``.  Merging
    is pointwise union; the lattice (powerset of input indices, per
    variable, per box) is finite and the transfer functions monotone,
    so the iteration terminates.
    """
    order = flowchart.reachable_from(flowchart.start_id)
    predecessors = flowchart.predecessors()
    dependencies = control_dependencies(flowchart)

    initial: Dict[str, Label] = {
        name: frozenset((position,))
        for position, name in enumerate(flowchart.input_variables, 1)}

    var_in: Dict[NodeId, Dict[str, Label]] = {node: {} for node in order}
    pc_in: Dict[NodeId, Label] = {node: EMPTY for node in order}
    var_in[flowchart.start_id] = dict(initial)

    def read_label(state: Dict[str, Label], names) -> Label:
        label: Label = EMPTY
        for name in names:
            label |= state.get(name, EMPTY)
        return label

    def implicit_label(node: NodeId) -> Label:
        """Rule-2 implicit flows via FOW control dependence."""
        label: Label = EMPTY
        for decision_id in dependencies[node]:
            decision = flowchart.boxes[decision_id]
            assert isinstance(decision, DecisionBox)
            label |= read_label(var_in[decision_id],
                                decision.predicate.variables())
        return label

    def out_state(node: NodeId):
        state = dict(var_in[node])
        pc = pc_in[node]
        box = flowchart.boxes[node]
        if isinstance(box, AssignBox):
            incoming = (read_label(state, box.expression.variables())
                        | pc | implicit_label(node))
            # High-water transfer: accumulate, never forget — this is
            # what makes the fixpoint dominate the dynamic labels.
            state[box.target] = state.get(box.target, EMPTY) | incoming
        elif isinstance(box, DecisionBox):
            pc = pc | read_label(state, box.predicate.variables())
        elif isinstance(box, SendBox):
            # Channels are pseudo-variables ("#chan:ch"): a send pours
            # its envelope label (v̄ ∪ C̄ ∪ implicit) into the channel's
            # static upper bound.  Any message a recv consumes was sent
            # on some CFG path reaching it, so path propagation of the
            # pseudo-variable conservatively covers the queue.
            key = f"#chan:{box.channel}"
            incoming = (read_label(state, (box.variable,))
                        | pc | implicit_label(node))
            state[key] = state.get(key, EMPTY) | incoming
        elif isinstance(box, RecvBox):
            key = f"#chan:{box.channel}"
            incoming = state.get(key, EMPTY) | pc | implicit_label(node)
            state[box.variable] = state.get(box.variable, EMPTY) | incoming
        return state, pc

    iterations = 0
    changed = True
    while changed:
        iterations += 1
        changed = False
        for node in order:
            if node == flowchart.start_id:
                merged_vars: Dict[str, Label] = dict(initial)
                merged_pc: Label = EMPTY
            else:
                merged_vars = {}
                merged_pc = EMPTY
                for predecessor in predecessors[node]:
                    pred_vars, pred_pc = out_state(predecessor)
                    merged_pc |= pred_pc
                    for name, label in pred_vars.items():
                        merged_vars[name] = merged_vars.get(name, EMPTY) | label
            target = var_in[node]
            for name, label in merged_vars.items():
                combined = target.get(name, EMPTY) | label
                if combined != target.get(name):
                    target[name] = combined
                    changed = True
            combined_pc = pc_in[node] | merged_pc
            if combined_pc != pc_in[node]:
                pc_in[node] = combined_pc
                changed = True

    return InfluenceAnalysis(flowchart, pc_in, var_in, iterations)


def static_verdict(flowchart: Flowchart, policy: AllowPolicy,
                   analysis: Optional[InfluenceAnalysis] = None
                   ) -> StaticVerdict:
    """Convenience: fixpoint + verdict in one call."""
    if analysis is None:
        analysis = influence_analysis(flowchart)
    return analysis.verdict(policy)
