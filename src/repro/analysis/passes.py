"""The built-in flowlint passes (influence verdict + hygiene).

Diagnostic codes:

========  ========  =====================================================
code      severity  meaning
========  ========  =====================================================
FLOW001   error     static influence verdict: output may depend on a
                    disallowed input (per offending halt box)
FLOW002   info      static influence verdict: certified (output label
                    within the policy) — emitted by the plain influence
                    pass on fixed-policy flowcharts and by the epoch
                    pass on dynamic-policy ones
DYN001    error     epoch verdict: a flow completes under an in-force
                    policy that does not admit its influence (see
                    :mod:`repro.analysis.epochs`)
DYN002    warning   a flow licensed at write time is retroactively
                    disallowed by a later policy change
DYN003    info      a halt is reachable under several distinct in-force
                    policies (epoch-ambiguous observation point)
INT000    info      unwinding conditions verified; data records the
                    explored state-space size and iteration count
INT001    error     unwinding: local respect fails at an observation
                    point (see :mod:`repro.analysis.unwinding`)
INT002    warning   unwinding: a downgrade occurrence is conditioned on
                    secrets outside the policy and the admitted edge
TIME001   warning   decision on disallowed data whose arms have unequal
                    static step counts (Theorem 3's observable-time
                    caveat) — see :mod:`repro.analysis.timing`
TIME002   warning   decision on disallowed data whose arm step counts
                    are not statically bounded (loop / nested branch)
HYG001    warning   variable read before any assignment on some path
                    (the semantics supplies 0, but it is usually a bug)
HYG002    warning   box unreachable once constant predicates are folded
HYG003    info      decision with a constant predicate (one arm dead)
HYG004    warning   dead assignment (value never read before overwrite
                    or halt)
HYG005    warning   division/modulus by a constant-zero divisor (the
                    total semantics defines it as 0)
========  ========  =====================================================

The hygiene passes deliberately report at *warning* severity: the
Section 3 semantics keeps all of these total and well-defined (implicit
zero initialisation, total division), so none is an execution error —
but each is a smell the figure-library reconstructions should be and
are clean of at error level.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Union

from ..flowchart.boxes import (AssignBox, DecisionBox, HaltBox, NodeId,
                               StartBox)
from ..flowchart.expr import (And, BinOp, BoolConst, Compare, Const, Expr,
                              Ite, LoopExpr, Neg, Not, Or, Pred, Var)
from .diagnostics import Diagnostic, Severity
from .manager import AnalysisContext, AnalysisPass
from .timing import TimingChannelPass


class InfluencePass(AnalysisPass):
    """The static soundness verdict against the provided allow policy."""

    name = "influence"
    requires_policy = True

    def __init__(self) -> None:
        self.iterations: Optional[int] = None

    def run(self, context: AnalysisContext) -> List[Diagnostic]:
        if context.flowchart.has_dynamic_policy():
            # A single-policy verdict is unsound once the policy can
            # change mid-program (a later `policy allow(...)` may
            # tighten it); the epoch pass owns certification there.
            return []
        analysis = context.influence()
        self.iterations = analysis.iterations
        verdict = analysis.verdict(context.policy)
        if verdict.certified:
            return [Diagnostic(
                "FLOW002", Severity.INFO, self.name,
                f"statically certified: output influence "
                f"{sorted(verdict.output_label)} within "
                f"{context.policy.name}",
                data={"output_label": sorted(verdict.output_label),
                      "allowed": sorted(verdict.allowed)})]
        diagnostics: List[Diagnostic] = []
        for halt_id, label in sorted(verdict.halt_labels.items()):
            excess = label - verdict.allowed
            if not excess:
                continue
            diagnostics.append(Diagnostic(
                "FLOW001", Severity.ERROR, self.name,
                f"output at this halt may depend on disallowed "
                f"input(s) {sorted(excess)} (influence {sorted(label)}, "
                f"policy {context.policy.name})",
                node=halt_id,
                data={"influence": sorted(label),
                      "allowed": sorted(verdict.allowed),
                      "excess": sorted(excess)}))
        return diagnostics


class UninitializedReadPass(AnalysisPass):
    """Reads of variables not definitely assigned on every path (HYG001)."""

    name = "uninit"

    def run(self, context: AnalysisContext) -> List[Diagnostic]:
        flowchart = context.flowchart
        order = flowchart.reachable_from(flowchart.start_id)
        predecessors = context.predecessors()
        inputs = frozenset(flowchart.input_variables)

        # Forward must-analysis: variables assigned on *every* path to
        # the box.  Merge is intersection, so seed non-start boxes with
        # "everything" (top) and shrink.
        everything = frozenset(
            name for box in flowchart.boxes.values()
            for name in ((box.written_variable(),)
                         if box.written_variable() else ())) | inputs
        assigned: Dict[NodeId, FrozenSet[str]] = {
            node: everything for node in order}
        assigned[flowchart.start_id] = inputs

        def out_set(node: NodeId) -> FrozenSet[str]:
            box = flowchart.boxes[node]
            target = box.written_variable()
            return assigned[node] | {target} if target else assigned[node]

        changed = True
        while changed:
            changed = False
            for node in order:
                if node == flowchart.start_id:
                    continue
                incoming = [out_set(p) for p in predecessors[node]]
                merged = (frozenset.intersection(*incoming)
                          if incoming else frozenset())
                if merged != assigned[node]:
                    assigned[node] = merged
                    changed = True

        diagnostics: List[Diagnostic] = []
        for node in order:
            box = flowchart.boxes[node]
            reads = set(box.read_variables())
            if isinstance(box, HaltBox):
                reads.add(flowchart.output_variable)
            for name in sorted(reads - assigned[node] - inputs):
                message = (f"halt reached with output {name!r} possibly "
                           f"unassigned (defaults to 0)"
                           if isinstance(box, HaltBox) else
                           f"read of {name!r} before any assignment on "
                           f"some path (defaults to 0)")
                diagnostics.append(Diagnostic(
                    "HYG001", Severity.WARNING, self.name, message,
                    node=node, data={"variable": name}))
        return diagnostics


def _constant_truth(predicate: Pred) -> Optional[bool]:
    """Evaluate a variable-free predicate, None when not constant."""
    if not predicate.variables() and not _contains_loop(predicate):
        return bool(predicate.eval({}))
    return None


class UnreachableCodePass(AnalysisPass):
    """Boxes dead once constant predicates are folded (HYG002/HYG003)."""

    name = "unreachable"

    def run(self, context: AnalysisContext) -> List[Diagnostic]:
        flowchart = context.flowchart
        diagnostics: List[Diagnostic] = []
        seen: Set[NodeId] = set()
        stack = [flowchart.start_id]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            box = flowchart.boxes[current]
            if isinstance(box, DecisionBox):
                truth = _constant_truth(box.predicate)
                if truth is not None:
                    diagnostics.append(Diagnostic(
                        "HYG003", Severity.INFO, self.name,
                        f"decision predicate {box.predicate!r} is "
                        f"constant; always takes the "
                        f"{'true' if truth else 'false'} arm",
                        node=current,
                        data={"constant": truth}))
                    stack.append(box.true_next if truth else box.false_next)
                    continue
            stack.extend(box.successors())
        for node in sorted(set(flowchart.boxes) - seen, key=str):
            diagnostics.append(Diagnostic(
                "HYG002", Severity.WARNING, self.name,
                f"box {flowchart.boxes[node]!r} is unreachable once "
                f"constant predicates are folded",
                node=node))
        return diagnostics


class DeadAssignmentPass(AnalysisPass):
    """Assignments whose value can never be observed (HYG004)."""

    name = "dead-assign"

    def run(self, context: AnalysisContext) -> List[Diagnostic]:
        flowchart = context.flowchart
        order = flowchart.reachable_from(flowchart.start_id)
        # Backward liveness: live_in[n] = variables whose value on entry
        # to n may still be read before being overwritten.
        live_in: Dict[NodeId, FrozenSet[str]] = {
            node: frozenset() for node in order}

        def transfer(node: NodeId) -> FrozenSet[str]:
            box = flowchart.boxes[node]
            live: FrozenSet[str] = frozenset()
            for successor in box.successors():
                live |= live_in[successor]
            if isinstance(box, HaltBox):
                return frozenset((flowchart.output_variable,))
            if isinstance(box, AssignBox):
                return (live - {box.target}) | box.expression.variables()
            if isinstance(box, DecisionBox):
                return live | box.predicate.variables()
            return live

        changed = True
        while changed:
            changed = False
            for node in reversed(order):
                updated = transfer(node)
                if updated != live_in[node]:
                    live_in[node] = updated
                    changed = True

        diagnostics: List[Diagnostic] = []
        for node in order:
            box = flowchart.boxes[node]
            if not isinstance(box, AssignBox):
                continue
            live_out: FrozenSet[str] = frozenset()
            for successor in box.successors():
                live_out |= live_in[successor]
            if box.target not in live_out:
                diagnostics.append(Diagnostic(
                    "HYG004", Severity.WARNING, self.name,
                    f"assignment to {box.target!r} is dead: the value "
                    f"is never read before being overwritten or halting",
                    node=node, data={"variable": box.target}))
        return diagnostics


def _subexpressions(node: Union[Expr, Pred]) -> Iterator[Union[Expr, Pred]]:
    """Every expression/predicate node in a box label, root included."""
    yield node
    if isinstance(node, (BinOp, Compare, And, Or)):
        yield from _subexpressions(node.left)
        yield from _subexpressions(node.right)
    elif isinstance(node, (Neg, Not)):
        yield from _subexpressions(node.operand)
    elif isinstance(node, Ite):
        yield from _subexpressions(node.predicate)
        yield from _subexpressions(node.then_value)
        yield from _subexpressions(node.else_value)
    elif isinstance(node, LoopExpr):
        yield from _subexpressions(node.predicate)
        for update in node.updates.values():
            yield from _subexpressions(update)


def _contains_loop(node: Union[Expr, Pred]) -> bool:
    return any(isinstance(sub, LoopExpr) for sub in _subexpressions(node))


def _fold_constant(node: Expr) -> Optional[int]:
    """Constant-fold a total, variable-free arithmetic subtree."""
    if isinstance(node, Const):
        return node.value
    if isinstance(node, Neg):
        operand = _fold_constant(node.operand)
        return None if operand is None else -operand
    if isinstance(node, BinOp):
        left = _fold_constant(node.left)
        right = _fold_constant(node.right)
        if left is None or right is None:
            return None
        return node.eval({})
    return None


class DivisionByZeroPass(AnalysisPass):
    """Statically-reachable division/modulus by zero (HYG005)."""

    name = "div-by-zero"

    def run(self, context: AnalysisContext) -> List[Diagnostic]:
        flowchart = context.flowchart
        diagnostics: List[Diagnostic] = []
        for node in flowchart.reachable_from(flowchart.start_id):
            box = flowchart.boxes[node]
            if isinstance(box, AssignBox):
                roots: List[Union[Expr, Pred]] = [box.expression]
            elif isinstance(box, DecisionBox):
                roots = [box.predicate]
            else:
                continue
            for root in roots:
                for sub in _subexpressions(root):
                    if (isinstance(sub, BinOp) and sub.op in ("//", "%")
                            and _fold_constant(sub.right) == 0):
                        diagnostics.append(Diagnostic(
                            "HYG005", Severity.WARNING, self.name,
                            f"{'division' if sub.op == '//' else 'modulus'}"
                            f" by constant zero in {sub!r} (the total "
                            f"semantics yields 0)",
                            node=node, data={"operator": sub.op}))
        return diagnostics


def default_passes() -> List[AnalysisPass]:
    """The standard flowlint pass set, in execution order."""
    from .epochs import DynamicPolicyPass
    from .unwinding import UnwindingPass

    return [
        InfluencePass(),
        DynamicPolicyPass(),
        UnwindingPass(),
        TimingChannelPass(),
        UninitializedReadPass(),
        UnreachableCodePass(),
        DeadAssignmentPass(),
        DivisionByZeroPass(),
    ]
