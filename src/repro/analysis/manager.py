"""The flowlint pass manager: registration, shared analyses, execution.

A pass is a small object with a ``name`` and a ``run(context)`` method
returning :class:`~repro.analysis.diagnostics.Diagnostic` lists.  The
:class:`AnalysisContext` memoises the graph analyses several passes
share (dominators, postdominators, control dependence, the influence
fixpoint) so a full lint run computes each exactly once, and the
:class:`PassManager` runs every registered pass, times it, and folds
the findings into one :class:`~repro.analysis.diagnostics.LintReport`.

Passes that need a policy (the influence verdict) declare
``requires_policy = True`` and are skipped — not failed — when the
caller lints without one.
"""

from __future__ import annotations

import time
from typing import Dict, FrozenSet, List, Optional, Sequence

from ..core.policy import AllowPolicy
from ..flowchart.analysis import dominators, postdominators
from ..flowchart.boxes import NodeId
from ..flowchart.program import Flowchart
from ..obs import runtime as _obs
from ..staticflow.cfgcertify import control_dependencies
from .diagnostics import Diagnostic, LintReport
from .influence import InfluenceAnalysis, influence_analysis


class AnalysisContext:
    """One flowchart + optional policy + memoised shared analyses."""

    def __init__(self, flowchart: Flowchart,
                 policy: Optional[AllowPolicy] = None) -> None:
        self.flowchart = flowchart
        self.policy = policy
        self._dominators: Optional[Dict[NodeId, FrozenSet[NodeId]]] = None
        self._postdominators: Optional[Dict[NodeId, FrozenSet[NodeId]]] = None
        self._control_dependencies = None
        self._influence: Optional[InfluenceAnalysis] = None
        self._predecessors = None
        self._epoch_influence = None
        self._unwinding = None

    def dominators(self) -> Dict[NodeId, FrozenSet[NodeId]]:
        if self._dominators is None:
            self._dominators = dominators(self.flowchart)
        return self._dominators

    def postdominators(self) -> Dict[NodeId, FrozenSet[NodeId]]:
        if self._postdominators is None:
            self._postdominators = postdominators(self.flowchart)
        return self._postdominators

    def control_dependencies(self):
        if self._control_dependencies is None:
            self._control_dependencies = control_dependencies(self.flowchart)
        return self._control_dependencies

    def influence(self) -> InfluenceAnalysis:
        if self._influence is None:
            self._influence = influence_analysis(self.flowchart)
        return self._influence

    def predecessors(self):
        if self._predecessors is None:
            self._predecessors = self.flowchart.predecessors()
        return self._predecessors

    def epoch_influence(self):
        """Epoch-aware influence fixpoint (requires a policy)."""
        if self._epoch_influence is None:
            if self.policy is None:
                raise ValueError(
                    "epoch influence analysis requires a policy")
            from .epochs import epoch_influence_analysis
            self._epoch_influence = epoch_influence_analysis(
                self.flowchart, self.policy.allowed)
        return self._epoch_influence

    def unwinding(self):
        """Exact-state unwinding check (requires a policy)."""
        if self._unwinding is None:
            if self.policy is None:
                raise ValueError("the unwinding check requires a policy")
            from .unwinding import unwinding_check
            self._unwinding = unwinding_check(self.flowchart, self.policy)
        return self._unwinding


class AnalysisPass:
    """Base class for flowlint passes."""

    #: Unique pass name (shows up in diagnostics and timings).
    name: str = "pass"
    #: Skip this pass when the caller provides no policy.
    requires_policy: bool = False

    def run(self, context: AnalysisContext) -> List[Diagnostic]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name})"


class PassManager:
    """Runs registered passes over a flowchart, aggregating diagnostics."""

    def __init__(self, passes: Optional[Sequence[AnalysisPass]] = None) -> None:
        self.passes: List[AnalysisPass] = list(passes or [])

    @classmethod
    def with_default_passes(cls) -> "PassManager":
        from .passes import default_passes

        return cls(default_passes())

    def register(self, analysis_pass: AnalysisPass) -> "PassManager":
        if any(existing.name == analysis_pass.name
               for existing in self.passes):
            raise ValueError(
                f"duplicate pass name {analysis_pass.name!r}")
        self.passes.append(analysis_pass)
        return self

    def pass_names(self) -> List[str]:
        return [analysis_pass.name for analysis_pass in self.passes]

    def run(self, flowchart: Flowchart,
            policy: Optional[AllowPolicy] = None) -> LintReport:
        context = AnalysisContext(flowchart, policy)
        diagnostics: List[Diagnostic] = []
        pass_seconds: Dict[str, float] = {}
        pass_stats: Dict[str, Dict[str, object]] = {}
        lint_span = _obs.span_begin("lint", program=flowchart.name,
                                    policy=policy.name if policy else None)
        for analysis_pass in self.passes:
            if analysis_pass.requires_policy and policy is None:
                continue
            pass_span = _obs.span_begin("lint_pass", push=True,
                                        program=flowchart.name,
                                        **{"pass": analysis_pass.name})
            started = time.perf_counter()
            found = analysis_pass.run(context)
            elapsed = time.perf_counter() - started
            diagnostics.extend(found)
            pass_seconds[analysis_pass.name] = elapsed
            stats: Dict[str, object] = {"seconds": elapsed,
                                        "diagnostics": len(found)}
            # Fixpoint passes expose their convergence cost after run();
            # fold it into the per-pass stats the JSON report carries.
            iterations = getattr(analysis_pass, "iterations", None)
            if iterations is not None:
                stats["iterations"] = iterations
            states = getattr(analysis_pass, "states_explored", None)
            if states is not None:
                stats["states_explored"] = states
            pass_stats[analysis_pass.name] = stats
            if _obs.active:
                _obs.inc("lint.passes")
                _obs.inc("lint.diagnostics", len(found))
                _obs.observe("lint.pass_seconds", elapsed)
                _obs.emit("lint_pass", program=flowchart.name,
                          **{"pass": analysis_pass.name},
                          seconds=round(elapsed, 6),
                          diagnostics=len(found))
            if (_obs.explain_active and policy is not None
                    and any(d.code == "FLOW001" for d in found)):
                # A FLOW001 rejection is justified by the influence
                # fixpoint; attach the static chain behind it.
                from ..obs.provenance import explain_static
                explanation = explain_static(flowchart, policy)
                _obs.emit("explanation", **explanation.event_fields())
            _obs.span_finish(pass_span, diagnostics=len(found))
        if _obs.active:
            _obs.inc("lint.runs")
        _obs.span_finish(lint_span, diagnostics=len(diagnostics))
        return LintReport(flowchart.name, diagnostics, pass_seconds,
                          policy_name=policy.name if policy else None,
                          pass_stats=pass_stats)


def lint_flowchart(flowchart: Flowchart,
                   policy: Optional[AllowPolicy] = None,
                   manager: Optional[PassManager] = None) -> LintReport:
    """Lint one flowchart with the default (or a custom) pass set."""
    if manager is None:
        manager = PassManager.with_default_passes()
    return manager.run(flowchart, policy)
