"""Epoch-aware influence: verify every flow against the policy in force
when the flow *completes*.

Van Delft, Hunt, and Sands ("Very Static Enforcement of Dynamic
Policies") observe that under a policy that changes mid-program, the
natural security criterion judges each flow by the policy in force at
the moment the flow reaches the observer — not the policy under which
the data was written.  The fixed-policy influence fixpoint
(:mod:`repro.analysis.influence`) checks halts against one J and is
therefore *unsound* the moment a ``policy_change`` box can tighten the
policy after a licensed write.

This module generalises the fixpoint: abstract states are keyed by
``(node, policy-in-force)``, so the analysis tracks, for every box, the
per-epoch label environment under every policy regime that can be in
force when control reaches it.  Transfers mirror the dynamic
surveillance semantics exactly:

- assignment: high-water accumulate of operand ∪ PC ∪ implicit labels
  (so static labels dominate both surveillance variants per epoch);
- decision: PC accumulates the test label;
- ``policy_change(P)``: the state flows into the successor's ``P``
  bucket — the policy key *changes*, the labels do not;
- ``downgrade v(D)``: ``v``'s label drops D pointwise (monotone in the
  entry state, so the fixpoint still converges).

Diagnostics:

========  ========  =====================================================
code      severity  meaning
========  ========  =====================================================
DYN001    error     a halt is reachable under an in-force policy that
                    does not admit the observable label there (the
                    completion-time criterion fails)
DYN002    warning   a flow licensed at write time is retroactively
                    disallowed: at a policy change, a live variable's
                    label fits the outgoing policy but not the incoming
                    one
DYN003    info      a halt is reachable under several distinct in-force
                    policies (epoch-ambiguous observation point)
========  ========  =====================================================
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..core.errors import PolicyError
from ..core.policy import AllowPolicy
from ..flowchart.boxes import (AssignBox, DecisionBox, DowngradeBox, HaltBox,
                               NodeId, PolicyChangeBox, RecvBox, SendBox)
from ..flowchart.program import Flowchart
from ..staticflow.cfgcertify import control_dependencies
from .diagnostics import Diagnostic, Severity
from .influence import StaticVerdict
from .manager import AnalysisContext, AnalysisPass

Label = FrozenSet[int]
PolicyKey = FrozenSet[int]

EMPTY: Label = frozenset()


class EpochInfluenceAnalysis:
    """Fixpoint result keyed by (node, policy-in-force).

    ``var_states[n][P]`` / ``pc_states[n][P]`` are *entry* states: the
    label environment when control arrives at ``n`` with policy ``P``
    in force.  ``iterations`` counts fixpoint sweeps over the graph.
    """

    def __init__(self, flowchart: Flowchart, initial_allowed: Label,
                 var_states: Dict[NodeId, Dict[PolicyKey, Dict[str, Label]]],
                 pc_states: Dict[NodeId, Dict[PolicyKey, Label]],
                 iterations: int) -> None:
        self.flowchart = flowchart
        self.initial_allowed = frozenset(initial_allowed)
        self.var_states = var_states
        self.pc_states = pc_states
        self.iterations = iterations

    def policies_at(self, node: NodeId) -> List[PolicyKey]:
        """The in-force policies under which ``node`` is reachable."""
        return sorted(self.var_states.get(node, {}), key=sorted)

    def label_at(self, node: NodeId, variable: str,
                 policy: Optional[PolicyKey] = None) -> Label:
        """Entry label of ``variable`` at ``node``.

        With ``policy``, the label in that epoch bucket; without, the
        union over every in-force policy (the epoch-blind summary).
        """
        buckets = self.var_states.get(node, {})
        if policy is not None:
            return buckets.get(frozenset(policy), {}).get(variable, EMPTY)
        label: Label = EMPTY
        for state in buckets.values():
            label |= state.get(variable, EMPTY)
        return label

    def pc_at(self, node: NodeId,
              policy: Optional[PolicyKey] = None) -> Label:
        buckets = self.pc_states.get(node, {})
        if policy is not None:
            return buckets.get(frozenset(policy), EMPTY)
        label: Label = EMPTY
        for pc in buckets.values():
            label |= pc
        return label

    def halt_observations(self) -> Dict[NodeId, Dict[PolicyKey, Label]]:
        """Per-halt, per-in-force-policy observable label ``ȳ ∪ C̄``."""
        output = self.flowchart.output_variable
        observations: Dict[NodeId, Dict[PolicyKey, Label]] = {}
        for halt_id in self.flowchart.halt_ids():
            row: Dict[PolicyKey, Label] = {}
            for policy_key, state in self.var_states.get(halt_id,
                                                         {}).items():
                row[policy_key] = (state.get(output, EMPTY)
                                   | self.pc_states[halt_id][policy_key])
            observations[halt_id] = row
        return observations

    def verdict(self) -> StaticVerdict:
        """Certified iff every (halt, in-force policy) check passes.

        Reuses :class:`~repro.analysis.influence.StaticVerdict` so the
        precision harness consumes either verdict uniformly;
        ``halt_labels`` carries the per-halt label union and ``allowed``
        the *initial* policy (each epoch was checked against its own).
        """
        certified = True
        halt_labels: Dict[NodeId, Label] = {}
        output_label: Label = EMPTY
        for halt_id, row in self.halt_observations().items():
            union: Label = EMPTY
            for policy_key, label in row.items():
                union |= label
                if not label <= policy_key:
                    certified = False
            halt_labels[halt_id] = union
            output_label |= union
        return StaticVerdict(certified, output_label, self.initial_allowed,
                             halt_labels)

    def __repr__(self) -> str:
        buckets = sum(len(row) for row in self.var_states.values())
        return (f"EpochInfluenceAnalysis({self.flowchart.name}: "
                f"{len(self.var_states)} boxes, {buckets} epoch states, "
                f"iterations={self.iterations})")


def epoch_influence_analysis(flowchart: Flowchart,
                             initial_allowed: Label
                             ) -> EpochInfluenceAnalysis:
    """Run the per-epoch influence fixpoint.

    Entry states per (node, in-force policy); merge is pointwise union
    within a bucket and bucket creation across policies.  All transfers
    are monotone in the entry state (including the downgrade's constant
    set-difference), so iteration over the finite lattice terminates.
    """
    order = flowchart.reachable_from(flowchart.start_id)
    predecessors = flowchart.predecessors()
    dependencies = control_dependencies(flowchart)
    initial_policy: PolicyKey = frozenset(initial_allowed)

    initial_vars: Dict[str, Label] = {
        name: frozenset((position,))
        for position, name in enumerate(flowchart.input_variables, 1)}

    var_states: Dict[NodeId, Dict[PolicyKey, Dict[str, Label]]] = {
        node: {} for node in order}
    pc_states: Dict[NodeId, Dict[PolicyKey, Label]] = {
        node: {} for node in order}
    var_states[flowchart.start_id] = {initial_policy: dict(initial_vars)}
    pc_states[flowchart.start_id] = {initial_policy: EMPTY}

    def read_label(state: Dict[str, Label], names) -> Label:
        label: Label = EMPTY
        for name in names:
            label |= state.get(name, EMPTY)
        return label

    def implicit_label(node: NodeId) -> Label:
        """Rule-2 implicit flows, epoch-blind (union over buckets —
        a sound over-approximation of the controlling tests' labels)."""
        label: Label = EMPTY
        for decision_id in dependencies[node]:
            decision = flowchart.boxes[decision_id]
            for state in var_states[decision_id].values():
                label |= read_label(state, decision.predicate.variables())
        return label

    def out_states(node: NodeId
                   ) -> List[Tuple[PolicyKey, Dict[str, Label], Label]]:
        """Transfer every bucket of ``node`` through its box."""
        box = flowchart.boxes[node]
        results = []
        for policy_key in var_states[node]:
            state = dict(var_states[node][policy_key])
            pc = pc_states[node][policy_key]
            out_policy = policy_key
            if isinstance(box, AssignBox):
                incoming = (read_label(state, box.expression.variables())
                            | pc | implicit_label(node))
                state[box.target] = state.get(box.target, EMPTY) | incoming
            elif isinstance(box, DecisionBox):
                pc = pc | read_label(state, box.predicate.variables())
            elif isinstance(box, PolicyChangeBox):
                out_policy = frozenset(box.allowed)
            elif isinstance(box, DowngradeBox):
                dropped = frozenset(box.indices)
                state[box.variable] = state.get(box.variable,
                                                EMPTY) - dropped
            elif isinstance(box, SendBox):
                # Channel pseudo-variable transfer, mirroring the plain
                # influence fixpoint (see repro.analysis.influence).
                key = f"#chan:{box.channel}"
                incoming = (read_label(state, (box.variable,))
                            | pc | implicit_label(node))
                state[key] = state.get(key, EMPTY) | incoming
            elif isinstance(box, RecvBox):
                key = f"#chan:{box.channel}"
                incoming = state.get(key, EMPTY) | pc | implicit_label(node)
                state[box.variable] = (state.get(box.variable, EMPTY)
                                       | incoming)
            results.append((out_policy, state, pc))
        return results

    iterations = 0
    changed = True
    while changed:
        iterations += 1
        changed = False
        for node in order:
            if node == flowchart.start_id:
                continue
            for predecessor in predecessors[node]:
                for policy_key, state, pc in out_states(predecessor):
                    bucket = var_states[node].setdefault(policy_key, {})
                    for name, label in state.items():
                        combined = bucket.get(name, EMPTY) | label
                        if combined != bucket.get(name):
                            bucket[name] = combined
                            changed = True
                    old_pc = pc_states[node].get(policy_key)
                    combined_pc = (old_pc or EMPTY) | pc
                    if combined_pc != old_pc:
                        pc_states[node][policy_key] = combined_pc
                        changed = True

    return EpochInfluenceAnalysis(flowchart, initial_allowed, var_states,
                                  pc_states, iterations)


def epoch_verdict(flowchart: Flowchart, policy: AllowPolicy,
                  analysis: Optional[EpochInfluenceAnalysis] = None
                  ) -> StaticVerdict:
    """Convenience: epoch fixpoint + completion-time verdict."""
    if not isinstance(policy, AllowPolicy):
        raise PolicyError(
            "the epoch verdict is defined for allow(...) policies")
    if policy.arity != flowchart.arity:
        raise PolicyError(
            f"policy arity {policy.arity} != flowchart arity "
            f"{flowchart.arity}")
    if analysis is None or analysis.initial_allowed != policy.allowed:
        analysis = epoch_influence_analysis(flowchart, policy.allowed)
    return analysis.verdict()


def _live_after(flowchart: Flowchart, node: NodeId) -> FrozenSet[str]:
    """Variables read by any box reachable from ``node``'s successors."""
    live: Set[str] = set()
    seen: Set[NodeId] = set()
    stack = list(flowchart.boxes[node].successors())
    while stack:
        current = stack.pop()
        if current in seen:
            continue
        seen.add(current)
        box = flowchart.boxes[current]
        live |= box.read_variables()
        if isinstance(box, HaltBox):
            live.add(flowchart.output_variable)
        stack.extend(box.successors())
    return frozenset(live)


class DynamicPolicyPass(AnalysisPass):
    """Epoch-aware soundness verdict for dynamic-policy flowcharts.

    Owns the FLOW-style certification whenever the flowchart contains
    ``policy_change``/``downgrade`` boxes (the plain influence pass
    defers — its single-policy verdict is unsound there); emits
    DYN001/DYN002/DYN003 plus a FLOW002 certification info when every
    epoch checks out.  Skips classic flowcharts entirely.
    """

    name = "epochs"
    requires_policy = True

    def __init__(self) -> None:
        self.iterations: Optional[int] = None

    def run(self, context: AnalysisContext) -> List[Diagnostic]:
        flowchart = context.flowchart
        if not flowchart.has_dynamic_policy():
            return []
        analysis = context.epoch_influence()
        self.iterations = analysis.iterations
        diagnostics: List[Diagnostic] = []

        observations = analysis.halt_observations()
        certified = True
        for halt_id in sorted(observations, key=str):
            row = observations[halt_id]
            for policy_key in sorted(row, key=sorted):
                label = row[policy_key]
                excess = label - policy_key
                if excess:
                    certified = False
                    diagnostics.append(Diagnostic(
                        "DYN001", Severity.ERROR, self.name,
                        f"flow completes under policy "
                        f"allow({sorted(policy_key)}) which does not admit "
                        f"input(s) {sorted(excess)} "
                        f"(observable influence {sorted(label)})",
                        node=halt_id,
                        data={"in_force": sorted(policy_key),
                              "influence": sorted(label),
                              "excess": sorted(excess)}))
            if len(row) > 1:
                diagnostics.append(Diagnostic(
                    "DYN003", Severity.INFO, self.name,
                    f"halt reachable under {len(row)} distinct in-force "
                    f"policies: "
                    f"{[sorted(key) for key in sorted(row, key=sorted)]}",
                    node=halt_id,
                    data={"policies": [sorted(key)
                                       for key in sorted(row, key=sorted)]}))

        inputs = frozenset(flowchart.input_variables)
        for change_id in sorted(flowchart.policy_change_ids(), key=str):
            box = flowchart.boxes[change_id]
            new_policy = frozenset(box.allowed)
            live = _live_after(flowchart, change_id) - inputs
            for old_policy in analysis.policies_at(change_id):
                state = analysis.var_states[change_id][old_policy]
                for variable in sorted(live):
                    label = state.get(variable, EMPTY)
                    if (label and label <= old_policy
                            and not label <= new_policy):
                        diagnostics.append(Diagnostic(
                            "DYN002", Severity.WARNING, self.name,
                            f"{variable!r} (influence {sorted(label)}) was "
                            f"licensed under allow({sorted(old_policy)}) "
                            f"but is retroactively disallowed by "
                            f"allow({sorted(box.allowed)})",
                            node=change_id,
                            data={"variable": variable,
                                  "influence": sorted(label),
                                  "old_policy": sorted(old_policy),
                                  "new_policy": sorted(box.allowed)}))

        if certified:
            verdict = analysis.verdict()
            diagnostics.append(Diagnostic(
                "FLOW002", Severity.INFO, self.name,
                f"statically certified across all epochs: every halt's "
                f"observable influence fits the policy in force there "
                f"(output influence {sorted(verdict.output_label)})",
                data={"output_label": sorted(verdict.output_label),
                      "initial_allowed": sorted(analysis.initial_allowed),
                      "iterations": analysis.iterations}))
        return diagnostics
