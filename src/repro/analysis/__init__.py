"""flowlint: static analysis for flowchart programs.

A pass-manager-driven analyzer over :class:`repro.flowchart.Flowchart`
programs.  The centrepiece is the *influence pass* — a static fixpoint
over the same powerset-of-inputs labels Section 3's surveillance
mechanism tracks dynamically — which certifies or rejects a program
against an ``allow(J)`` policy without executing it.  Around it sit a
timing-channel pass (Theorem 3's observable-time caveat, detected
statically) and hygiene passes, plus a precision harness quantifying
what the static verdict gives up against dynamic surveillance and the
maximal mechanism.

Surface: ``repro lint`` on the CLI; :func:`lint_flowchart` /
:func:`precision_harness` from code.
"""

from .diagnostics import Diagnostic, LintReport, Severity
from .epochs import (DynamicPolicyPass, EpochInfluenceAnalysis,
                     epoch_influence_analysis, epoch_verdict)
from .influence import (EMPTY, InfluenceAnalysis, Label, StaticVerdict,
                        influence_analysis, static_verdict)
from .manager import (AnalysisContext, AnalysisPass, PassManager,
                      lint_flowchart)
from .passes import (DeadAssignmentPass, DivisionByZeroPass, InfluencePass,
                     UninitializedReadPass, UnreachableCodePass,
                     default_passes)
from .precision import (PairPrecision, PrecisionReport, pair_precision,
                        precision_harness)
from .timing import TimingChannelPass, arm_steps
from .unwinding import (UnwindingPass, UnwindingResult, UnwindingViolation,
                        unwinding_check)

__all__ = [
    "AnalysisContext",
    "AnalysisPass",
    "DeadAssignmentPass",
    "Diagnostic",
    "DivisionByZeroPass",
    "DynamicPolicyPass",
    "EMPTY",
    "EpochInfluenceAnalysis",
    "InfluenceAnalysis",
    "InfluencePass",
    "Label",
    "LintReport",
    "PairPrecision",
    "PassManager",
    "PrecisionReport",
    "Severity",
    "StaticVerdict",
    "TimingChannelPass",
    "UninitializedReadPass",
    "UnreachableCodePass",
    "UnwindingPass",
    "UnwindingResult",
    "UnwindingViolation",
    "arm_steps",
    "default_passes",
    "epoch_influence_analysis",
    "epoch_verdict",
    "influence_analysis",
    "lint_flowchart",
    "pair_precision",
    "precision_harness",
    "static_verdict",
]
