"""The timing-channel pass: Theorem 3's observable-time caveat, statically.

Theorem 3 proves surveillance sound only when running time is *not*
observable; Theorem 3′ repairs it by halting before any test on
disallowed data.  The static symptom of the underlying leak is exactly
identifiable: a decision whose test carries disallowed influence and
whose two arms take *different numbers of boxes* to reconverge — then
the Observability Postulate makes the step count an output and the
branch a timing channel.

This pass reuses the fastpath compiler's basic-block machinery
(:func:`~repro.flowchart.fastpath._find_leaders` /
:func:`~repro.flowchart.fastpath._block_chain` — the same block
decomposition its fuel accounting is built on) to count each arm's
static steps from the branch target to the decision's immediate
postdominator (the reconvergence point, from
:func:`~repro.flowchart.analysis.postdominators`).  An arm whose walk
leaves straight-line territory — a nested decision, or a jump back to a
node that *dominates* the decision (a loop around it, detected with
:func:`~repro.flowchart.analysis.dominators`) — has no static bound,
which is reported as its own diagnostic (TIME002): unbounded arms are
the timing-loop shape of Section 2.

With a policy, only decisions whose test influence exceeds the policy's
allowed set are flagged; without one, any input-influenced decision is
(there is then no notion of "allowed", so every input is treated as
potentially disallowed).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional

from ..flowchart.analysis import immediate_postdominator
from ..flowchart.boxes import DecisionBox, HaltBox, NodeId
from ..flowchart.fastpath import _block_chain, _find_leaders
from ..flowchart.program import Flowchart
from .diagnostics import Diagnostic, Severity
from .manager import AnalysisContext, AnalysisPass


def arm_steps(flowchart: Flowchart, start: NodeId, join: Optional[NodeId],
              decision_id: NodeId,
              dom: Dict[NodeId, FrozenSet[NodeId]],
              leader_set: Optional[frozenset] = None) -> Optional[int]:
    """Static box count from ``start`` to ``join`` (or a halt).

    Returns None when the count is not statically bounded: the walk
    meets a nested decision, revisits a block (a loop inside the arm),
    or jumps back to a dominator of the decision (a loop around it).
    ``join`` may be None (arms that halt independently); the walk then
    counts to the halt box, which still yields comparable step counts.
    """
    if leader_set is None:
        entry = flowchart.boxes[flowchart.start_id].successors()[0]
        leader_set = frozenset(_find_leaders(flowchart, entry))
    steps = 0
    current = start
    visited = set()
    while True:
        if current == join:
            return steps
        if current in visited:
            return None  # loop inside the arm
        if current in dom[decision_id]:
            return None  # back above the decision: the arm loops
        visited.add(current)
        chain, fallthrough = _block_chain(flowchart, current, leader_set)
        for node in chain:
            if node == join:
                return steps
            box = flowchart.boxes[node]
            steps += 1
            if isinstance(box, HaltBox):
                return steps
            if isinstance(box, DecisionBox):
                return None  # nested branch: not a straight-line arm
        if fallthrough is None:  # pragma: no cover - chain always ends
            return None          # at a decision/halt or a fallthrough
        current = fallthrough


class TimingChannelPass(AnalysisPass):
    """Flags unequal-arm decisions on disallowed data (TIME001/TIME002)."""

    name = "timing"

    def run(self, context: AnalysisContext) -> List[Diagnostic]:
        flowchart = context.flowchart
        influence = context.influence()
        pdom = context.postdominators()
        dom = context.dominators()
        entry = flowchart.boxes[flowchart.start_id].successors()[0]
        leader_set = frozenset(_find_leaders(flowchart, entry))

        diagnostics: List[Diagnostic] = []
        for decision_id in flowchart.decision_ids():
            test = influence.test_label(decision_id)
            if context.policy is not None:
                disallowed = test - context.policy.allowed
            else:
                disallowed = test
            if not disallowed:
                continue
            box = flowchart.boxes[decision_id]
            assert isinstance(box, DecisionBox)
            join = immediate_postdominator(flowchart, decision_id, pdom)
            true_steps = arm_steps(flowchart, box.true_next, join,
                                   decision_id, dom, leader_set)
            false_steps = arm_steps(flowchart, box.false_next, join,
                                    decision_id, dom, leader_set)
            data = {
                "test_influence": sorted(test),
                "disallowed": sorted(disallowed),
                "true_steps": true_steps,
                "false_steps": false_steps,
                "join": join,
            }
            if true_steps is None or false_steps is None:
                diagnostics.append(Diagnostic(
                    "TIME002", Severity.WARNING, self.name,
                    f"decision on {box.predicate!r} (influence "
                    f"{sorted(disallowed)} disallowed) has a statically "
                    f"unbounded arm; running time may reveal the tested "
                    f"data (Theorem 3 caveat)",
                    node=decision_id, data=data))
            elif true_steps != false_steps:
                diagnostics.append(Diagnostic(
                    "TIME001", Severity.WARNING, self.name,
                    f"decision on {box.predicate!r} (influence "
                    f"{sorted(disallowed)} disallowed) has arms with "
                    f"unequal static step counts ({true_steps} vs "
                    f"{false_steps}); running time reveals the branch "
                    f"taken (Theorem 3 caveat)",
                    node=decision_id, data=data))
        return diagnostics
