"""Unwinding-based verification of intransitive declassification.

Eggert, van der Meyden, Schnoor, and Wilke ("The Complexity of
Intransitive Noninterference") characterise intransitive
noninterference by *unwinding conditions* — local properties of a
transition system that together imply the global hypersafety property.
This module adapts the two classic conditions to the surveillance
monitor's own state space:

- **local respect** (INT001): at every reachable observation point
  (halt), the observable influence must lie within the policy in force
  there.  A ``downgrade`` box is the *only* admitted intransitive edge
  — it discharges the designated indices from a label before the check.
- **step consistency** (INT002): the *occurrence* of a declassification
  step must not itself depend on secrets outside the admitted edge.  A
  reachable ``downgrade`` state whose PC label carries indices neither
  allowed by the in-force policy nor discharged by the downgrade leaks
  through the decision to declassify.

Unlike the epoch fixpoint (:mod:`repro.analysis.epochs`), which merges
states per (node, policy) bucket, the unwinding checker enumerates the
monitor's *exact* reachable abstract states — no merging — so it is a
decision procedure for the finite label space rather than an
approximation.  It records the explored state-space size and worklist
iteration count; the precision harness persists both per pair.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..core.errors import PolicyError
from ..core.policy import AllowPolicy
from ..flowchart.boxes import (AssignBox, DecisionBox, DowngradeBox, HaltBox,
                               NodeId, PolicyChangeBox, StartBox)
from ..flowchart.program import Flowchart
from .diagnostics import Diagnostic, Severity
from .manager import AnalysisContext, AnalysisPass

#: Exact abstract monitor state: (node, sorted nonzero variable label
#: masks, PC label mask, in-force policy mask).
AbstractState = Tuple[NodeId, Tuple[Tuple[str, int], ...], int, int]


def _to_mask(indices: FrozenSet[int]) -> int:
    mask = 0
    for index in indices:
        mask |= 1 << (index - 1)
    return mask


def _from_mask(mask: int) -> FrozenSet[int]:
    indices = []
    index = 1
    while mask:
        if mask & 1:
            indices.append(index)
        mask >>= 1
        index += 1
    return frozenset(indices)


class UnwindingViolation:
    """One failed unwinding condition at one reachable abstract state."""

    __slots__ = ("condition", "node", "excess", "in_force", "pc")

    def __init__(self, condition: str, node: NodeId,
                 excess: FrozenSet[int], in_force: FrozenSet[int],
                 pc: FrozenSet[int]) -> None:
        self.condition = condition
        self.node = node
        self.excess = excess
        self.in_force = in_force
        self.pc = pc

    def __repr__(self) -> str:
        return (f"UnwindingViolation({self.condition} at {self.node!r}: "
                f"excess={sorted(self.excess)})")


class UnwindingResult:
    """Outcome of the exact reachable-state unwinding check."""

    def __init__(self, flowchart_name: str, certified: bool,
                 local_respect: List[UnwindingViolation],
                 step_consistency: List[UnwindingViolation],
                 states_explored: int, iterations: int) -> None:
        self.flowchart_name = flowchart_name
        self.certified = certified
        self.local_respect = local_respect
        self.step_consistency = step_consistency
        self.states_explored = states_explored
        self.iterations = iterations

    def __bool__(self) -> bool:
        return self.certified

    def to_dict(self) -> dict:
        return {
            "flowchart": self.flowchart_name,
            "certified": self.certified,
            "local_respect_violations": len(self.local_respect),
            "step_consistency_violations": len(self.step_consistency),
            "states_explored": self.states_explored,
            "iterations": self.iterations,
        }

    def __repr__(self) -> str:
        verdict = "CERTIFIED" if self.certified else "REJECTED"
        return (f"UnwindingResult({verdict}: {self.flowchart_name}, "
                f"states={self.states_explored}, "
                f"iterations={self.iterations})")


def unwinding_check(flowchart: Flowchart,
                    policy: AllowPolicy) -> UnwindingResult:
    """Enumerate the monitor's reachable abstract states and check both
    unwinding conditions at every one of them.

    The abstract transition relation mirrors the dynamic surveillance
    semantics exactly (forgetting variant: assignment *sets* the label
    to operands ∪ C̄), except decisions take both branches — the value
    state is abstracted away, label state is kept exact.  The state
    space is finite (nodes × label assignments × PC × policies), so the
    worklist terminates; no widening, no merging.
    """
    if not isinstance(policy, AllowPolicy):
        raise PolicyError(
            "the unwinding check is defined for allow(...) policies")
    if policy.arity != flowchart.arity:
        raise PolicyError(
            f"policy arity {policy.arity} != flowchart arity "
            f"{flowchart.arity}")

    output = flowchart.output_variable
    initial_labels = tuple(sorted(
        (name, 1 << (position - 1))
        for position, name in enumerate(flowchart.input_variables, 1)))
    initial: AbstractState = (flowchart.start_id, initial_labels,
                              0, _to_mask(policy.allowed))

    def label_of(labels: Tuple[Tuple[str, int], ...], name: str) -> int:
        for entry_name, mask in labels:
            if entry_name == name:
                return mask
        return 0

    def with_label(labels: Tuple[Tuple[str, int], ...], name: str,
                   mask: int) -> Tuple[Tuple[str, int], ...]:
        kept = [(n, m) for n, m in labels if n != name]
        if mask:
            kept.append((name, mask))
        return tuple(sorted(kept))

    local_respect: List[UnwindingViolation] = []
    step_consistency: List[UnwindingViolation] = []
    flagged: Set[Tuple[str, NodeId, int]] = set()

    seen: Set[AbstractState] = {initial}
    worklist: List[AbstractState] = [initial]
    iterations = 0
    while worklist:
        iterations += 1
        node, labels, pc, allowed = worklist.pop()
        box = flowchart.boxes[node]
        successors: List[AbstractState] = []
        if isinstance(box, StartBox):
            successors.append((box.next, labels, pc, allowed))
        elif isinstance(box, AssignBox):
            incoming = pc
            for name in box.expression.variables():
                incoming |= label_of(labels, name)
            successors.append((box.next,
                               with_label(labels, box.target, incoming),
                               pc, allowed))
        elif isinstance(box, DecisionBox):
            test = pc
            for name in box.predicate.variables():
                test |= label_of(labels, name)
            successors.append((box.true_next, labels, test, allowed))
            successors.append((box.false_next, labels, test, allowed))
        elif isinstance(box, PolicyChangeBox):
            successors.append((box.next, labels, pc,
                               _to_mask(frozenset(box.allowed))))
        elif isinstance(box, DowngradeBox):
            dropped = _to_mask(frozenset(box.indices))
            # Step consistency: the occurrence of this declassification
            # step is conditioned on the PC; indices there that are
            # neither in force nor discharged by the admitted edge make
            # the *decision to declassify* an unlicensed channel.
            excess = pc & ~(allowed | dropped)
            if excess and ("INT002", node, excess) not in flagged:
                flagged.add(("INT002", node, excess))
                step_consistency.append(UnwindingViolation(
                    "step-consistency", node, _from_mask(excess),
                    _from_mask(allowed), _from_mask(pc)))
            current = label_of(labels, box.variable)
            successors.append((box.next,
                               with_label(labels, box.variable,
                                          current & ~dropped),
                               pc, allowed))
        elif isinstance(box, HaltBox):
            # Local respect: at the observation point the observable
            # influence (output label ∪ PC) must fit the policy in
            # force *now* — downgrades already discharged their edge.
            observable = label_of(labels, output) | pc
            excess = observable & ~allowed
            if excess and ("INT001", node, excess) not in flagged:
                flagged.add(("INT001", node, excess))
                local_respect.append(UnwindingViolation(
                    "local-respect", node, _from_mask(excess),
                    _from_mask(allowed), _from_mask(pc)))
        for successor in successors:
            if successor not in seen:
                seen.add(successor)
                worklist.append(successor)

    certified = not local_respect
    return UnwindingResult(flowchart.name, certified, local_respect,
                           step_consistency, len(seen), iterations)


class UnwindingPass(AnalysisPass):
    """Flowlint pass wrapping :func:`unwinding_check`.

    Only meaningful for flowcharts with an admitted intransitive edge
    (a ``downgrade`` box); skipped otherwise so classic programs see no
    new diagnostics.  INT001 is an error (local respect fails at an
    observation point); INT002 is a warning (secret-dependent
    declassification occurrence).
    """

    name = "unwinding"
    requires_policy = True

    def __init__(self) -> None:
        self.iterations: Optional[int] = None
        self.states_explored: Optional[int] = None

    def run(self, context: AnalysisContext) -> List[Diagnostic]:
        flowchart = context.flowchart
        if not flowchart.downgrade_ids():
            return []
        assert context.policy is not None
        result = context.unwinding()
        self.iterations = result.iterations
        self.states_explored = result.states_explored
        diagnostics: List[Diagnostic] = []
        for violation in result.local_respect:
            diagnostics.append(Diagnostic(
                "INT001", Severity.ERROR, self.name,
                f"local respect fails: observable influence carries "
                f"input(s) {sorted(violation.excess)} not admitted by the "
                f"in-force policy allow({sorted(violation.in_force)}) and "
                f"not discharged by any downgrade edge",
                node=violation.node,
                data={"excess": sorted(violation.excess),
                      "in_force": sorted(violation.in_force),
                      "pc": sorted(violation.pc)}))
        for violation in result.step_consistency:
            diagnostics.append(Diagnostic(
                "INT002", Severity.WARNING, self.name,
                f"step consistency at risk: the downgrade occurrence is "
                f"conditioned on input(s) {sorted(violation.excess)} "
                f"outside the in-force policy and the admitted edge "
                f"(PC influence {sorted(violation.pc)})",
                node=violation.node,
                data={"excess": sorted(violation.excess),
                      "in_force": sorted(violation.in_force),
                      "pc": sorted(violation.pc)}))
        if result.certified:
            diagnostics.append(Diagnostic(
                "INT000", Severity.INFO, self.name,
                f"unwinding conditions verified over "
                f"{result.states_explored} reachable abstract state(s) "
                f"({result.iterations} iteration(s))",
                data=result.to_dict()))
        return diagnostics
