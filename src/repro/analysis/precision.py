"""The static-vs-dynamic precision harness.

The reproduction question flowlint exists to answer: *how much
completeness does the static check give up* relative to Section 3's
dynamic surveillance and Theorem 2's maximal mechanism?  For every
(figure-library program, allow policy) pair over a finite grid, this
harness computes the full enforcement ladder:

- ``static`` — the flowlint influence verdict (all-or-nothing: a
  certified pair runs the bare program and accepts every input; a
  rejected pair accepts none),
- ``cfg`` — the forgetting CFG certifier of
  :mod:`repro.staticflow.cfgcertify` (still static, but region-scoped
  implicit flows — sharper than the monotone influence pass, and on
  reconvergent programs sharper even than dynamic surveillance, the
  page-49 phenomenon),
- ``dynamic`` — per-input acceptance of the surveillance mechanism,
- ``highwater`` — per-input acceptance of the no-forgetting variant,
- ``maximal`` — per-input acceptance of the (finite-domain) maximal
  mechanism: accept exactly the policy classes Q is constant on,
- ``exhaustive_sound`` — whether the *bare program* is already sound
  (equivalently: the maximal mechanism accepts everything).

Soundness obligation (the acceptance criterion CI enforces): a static
verdict must never certify a pair the exhaustive semantic check
rejects — :meth:`PrecisionReport.unsound_pairs` must be empty.  The
completeness gap is everything else: pairs where the ladder's lower
rungs reject inputs the upper rungs accept.

Pair *families*: classic pairs (no dynamic-policy boxes) keep the
ladder above verbatim.  ``policy-change`` and ``downgrader`` pairs use
the epoch-aware verdict (:mod:`repro.analysis.epochs`) as their static
rung and the *dynamic surveillance monitor* as their semantic soundness
reference — the fixed-policy NI baseline (``exhaustive_sound``) is
still reported but no longer arbitrates ``unsound_static``, because an
admitted intransitive downgrade *intentionally* violates NI while being
exactly the behaviour the dynamic policy licenses.  Downgrader pairs
additionally record the unwinding checker's explored state-space size
and iteration count.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from ..core.domains import ProductDomain
from ..flowchart.fastpath import run_flowchart
from ..flowchart.interpreter import DEFAULT_FUEL
from ..flowchart.program import Flowchart
from ..staticflow.cfgcertify import certify_flowchart
from ..surveillance.dynamic import surveil
from ..verify.enumerate import all_allow_policies, default_grid
from .influence import influence_analysis


class PairPrecision:
    """The enforcement ladder for one (program, policy, grid) triple."""

    __slots__ = ("program_name", "policy_name", "domain_size",
                 "static_certified", "cfg_certified", "dynamic_accepts",
                 "highwater_accepts", "maximal_accepts", "exhaustive_sound",
                 "family", "unwinding_certified", "unwinding_states",
                 "unwinding_iterations")

    def __init__(self, program_name: str, policy_name: str,
                 domain_size: int, static_certified: bool,
                 cfg_certified: bool, dynamic_accepts: int,
                 highwater_accepts: int, maximal_accepts: int,
                 exhaustive_sound: bool, family: str = "classic",
                 unwinding_certified: Optional[bool] = None,
                 unwinding_states: Optional[int] = None,
                 unwinding_iterations: Optional[int] = None) -> None:
        self.program_name = program_name
        self.policy_name = policy_name
        self.domain_size = domain_size
        self.static_certified = static_certified
        self.cfg_certified = cfg_certified
        self.dynamic_accepts = dynamic_accepts
        self.highwater_accepts = highwater_accepts
        self.maximal_accepts = maximal_accepts
        self.exhaustive_sound = exhaustive_sound
        self.family = family
        self.unwinding_certified = unwinding_certified
        self.unwinding_states = unwinding_states
        self.unwinding_iterations = unwinding_iterations

    @property
    def static_accepts(self) -> int:
        """All-or-nothing: certified pairs run the bare program."""
        return self.domain_size if self.static_certified else 0

    @property
    def cfg_accepts(self) -> int:
        return self.domain_size if self.cfg_certified else 0

    @property
    def unsound_static(self) -> bool:
        """True would be a soundness bug: static accepted, semantics reject.

        Family-dependent semantic reference: classic pairs use the NI
        baseline (``exhaustive_sound``); dynamic-policy pairs use the
        surveillance monitor itself, since admitted declassification
        violates NI by design — there, unsoundness means the static
        verdict certified a pair whose monitor still fires on some
        input.
        """
        if self.family == "classic":
            return ((self.static_certified or self.cfg_certified)
                    and not self.exhaustive_sound)
        return ((self.static_certified or self.cfg_certified)
                and self.dynamic_accepts < self.domain_size)

    @property
    def static_gap(self) -> int:
        """Inputs the maximal mechanism accepts but static enforcement loses."""
        return self.maximal_accepts - self.static_accepts

    @property
    def dynamic_gap(self) -> int:
        """Inputs the maximal mechanism accepts but surveillance loses."""
        return self.maximal_accepts - self.dynamic_accepts

    def to_dict(self) -> dict:
        row = {
            "program": self.program_name,
            "policy": self.policy_name,
            "family": self.family,
            "domain_size": self.domain_size,
            "static_certified": self.static_certified,
            "cfg_certified": self.cfg_certified,
            "static_accepts": self.static_accepts,
            "cfg_accepts": self.cfg_accepts,
            "dynamic_accepts": self.dynamic_accepts,
            "highwater_accepts": self.highwater_accepts,
            "maximal_accepts": self.maximal_accepts,
            "exhaustive_sound": self.exhaustive_sound,
            "unsound_static": self.unsound_static,
            "static_gap": self.static_gap,
            "dynamic_gap": self.dynamic_gap,
        }
        if self.unwinding_certified is not None:
            row["unwinding_certified"] = self.unwinding_certified
            row["unwinding_states"] = self.unwinding_states
            row["unwinding_iterations"] = self.unwinding_iterations
        return row

    def __repr__(self) -> str:
        return (f"PairPrecision({self.program_name}, {self.policy_name} "
                f"[{self.family}]: "
                f"static={self.static_accepts} cfg={self.cfg_accepts} "
                f"dyn={self.dynamic_accepts} max={self.maximal_accepts}"
                f"/{self.domain_size})")


class PrecisionReport:
    """All ladder rows plus the aggregate completeness-gap accounting."""

    def __init__(self, pairs: List[PairPrecision]) -> None:
        self.pairs = list(pairs)

    def unsound_pairs(self) -> List[PairPrecision]:
        """Static-certified pairs the exhaustive check rejects — must be []."""
        return [pair for pair in self.pairs if pair.unsound_static]

    def false_positives(self) -> Dict[str, int]:
        """Pairs each static verdict rejects although Q is sound as-is.

        Classic pairs only: the NI baseline is not the semantic
        reference for dynamic-policy families, so counting their
        rejections here would mislabel intentional declassification.
        """
        classic = [p for p in self.pairs if p.family == "classic"]
        return {
            "influence": sum(1 for p in classic
                             if p.exhaustive_sound and not p.static_certified),
            "cfg": sum(1 for p in classic
                       if p.exhaustive_sound and not p.cfg_certified),
        }

    def families(self) -> Dict[str, dict]:
        """Per-family pair counts and acceptance totals (CI gate input)."""
        summary: Dict[str, dict] = {}
        for pair in self.pairs:
            row = summary.setdefault(pair.family, {
                "pairs": 0, "static_certified": 0, "dynamic_accepts": 0,
                "domain_points": 0, "unsound_static": 0,
                "unwinding_states": 0, "unwinding_iterations": 0,
            })
            row["pairs"] += 1
            row["static_certified"] += int(pair.static_certified)
            row["dynamic_accepts"] += pair.dynamic_accepts
            row["domain_points"] += pair.domain_size
            row["unsound_static"] += int(pair.unsound_static)
            row["unwinding_states"] += pair.unwinding_states or 0
            row["unwinding_iterations"] += pair.unwinding_iterations or 0
        return summary

    def per_program(self) -> Dict[str, dict]:
        summary: Dict[str, dict] = {}
        for pair in self.pairs:
            row = summary.setdefault(pair.program_name, {
                "pairs": 0, "static_certified": 0, "cfg_certified": 0,
                "exhaustive_sound": 0, "static_accepts": 0,
                "dynamic_accepts": 0, "maximal_accepts": 0,
                "domain_points": 0,
            })
            row["pairs"] += 1
            row["static_certified"] += int(pair.static_certified)
            row["cfg_certified"] += int(pair.cfg_certified)
            row["exhaustive_sound"] += int(pair.exhaustive_sound)
            row["static_accepts"] += pair.static_accepts
            row["dynamic_accepts"] += pair.dynamic_accepts
            row["maximal_accepts"] += pair.maximal_accepts
            row["domain_points"] += pair.domain_size
        return summary

    def totals(self) -> dict:
        return {
            "pairs": len(self.pairs),
            "unsound_static_accepts": len(self.unsound_pairs()),
            "false_positives": self.false_positives(),
            "families": self.families(),
            "static_accepts": sum(p.static_accepts for p in self.pairs),
            "cfg_accepts": sum(p.cfg_accepts for p in self.pairs),
            "dynamic_accepts": sum(p.dynamic_accepts for p in self.pairs),
            "highwater_accepts": sum(p.highwater_accepts
                                     for p in self.pairs),
            "maximal_accepts": sum(p.maximal_accepts for p in self.pairs),
            "domain_points": sum(p.domain_size for p in self.pairs),
        }

    def to_dict(self) -> dict:
        return {
            "totals": self.totals(),
            "per_program": self.per_program(),
            "pairs": [pair.to_dict() for pair in self.pairs],
        }

    def render(self) -> str:
        from ..verify.report import Table

        table = Table(
            "precision ladder: accepted inputs per enforcement mechanism",
            ["program", "policy", "family", "static", "cfg", "dynamic",
             "highwater", "maximal", "|D|", "Q sound"])
        for pair in self.pairs:
            table.add_row(
                pair.program_name, pair.policy_name, pair.family,
                str(pair.static_accepts), str(pair.cfg_accepts),
                str(pair.dynamic_accepts), str(pair.highwater_accepts),
                str(pair.maximal_accepts), str(pair.domain_size),
                str(pair.exhaustive_sound))
        totals = self.totals()
        lines = [table.render(),
                 f"{totals['pairs']} pairs; unsound static accepts: "
                 f"{totals['unsound_static_accepts']} (must be 0); "
                 f"static false positives: "
                 f"{totals['false_positives']['influence']} influence / "
                 f"{totals['false_positives']['cfg']} cfg"]
        for family, row in sorted(self.families().items()):
            line = (f"  family {family}: {row['pairs']} pairs, "
                    f"{row['static_certified']} statically certified, "
                    f"{row['dynamic_accepts']}/{row['domain_points']} "
                    f"dynamic accepts")
            if row["unwinding_states"]:
                line += (f", unwinding {row['unwinding_states']} states / "
                         f"{row['unwinding_iterations']} iterations")
            lines.append(line)
        return "\n".join(lines)

    def __repr__(self) -> str:
        totals = self.totals()
        return (f"PrecisionReport({totals['pairs']} pairs, "
                f"unsound={totals['unsound_static_accepts']})")


def pair_precision(flowchart: Flowchart, policy, domain,
                   values: Optional[Dict[tuple, int]] = None,
                   fuel: int = DEFAULT_FUEL) -> PairPrecision:
    """Compute one ladder row.

    ``values`` may carry precomputed ``{input: Q(input)}`` so sweeps
    evaluate each program once per grid rather than once per policy.
    """
    if values is None:
        values = {tuple(point): run_flowchart(flowchart, point,
                                              fuel=fuel).value
                  for point in domain}

    if flowchart.downgrade_ids():
        family = "downgrader"
    elif flowchart.policy_change_ids():
        family = "policy-change"
    else:
        family = "classic"

    unwinding_certified = unwinding_states = unwinding_iterations = None
    if family == "classic":
        analysis = influence_analysis(flowchart)
        static = analysis.verdict(policy).certified
    else:
        # The single-policy influence verdict is unsound under a
        # mid-program policy change; the epoch verdict owns the static
        # rung for dynamic families.
        from .epochs import epoch_verdict
        from .unwinding import unwinding_check
        static = epoch_verdict(flowchart, policy).certified
        unwinding = unwinding_check(flowchart, policy)
        unwinding_certified = unwinding.certified
        unwinding_states = unwinding.states_explored
        unwinding_iterations = unwinding.iterations
    cfg = certify_flowchart(flowchart, policy).certified

    dynamic_accepts = 0
    highwater_accepts = 0
    for point in domain:
        if not surveil(flowchart, point, policy.allowed,
                       fuel=fuel).violated:
            dynamic_accepts += 1
        if not surveil(flowchart, point, policy.allowed, forgetting=False,
                       fuel=fuel).violated:
            highwater_accepts += 1

    # Theorem 2's construction, inlined over precomputed values: a
    # policy class is accepted iff Q is constant on it.
    classes: Dict[object, List[tuple]] = {}
    for point in domain:
        classes.setdefault(policy(*point), []).append(tuple(point))
    maximal_accepts = 0
    for members in classes.values():
        first = values[members[0]]
        if all(values[member] == first for member in members[1:]):
            maximal_accepts += len(members)
    exhaustive_sound = maximal_accepts == len(domain)

    return PairPrecision(flowchart.name, policy.name, len(domain),
                         static, cfg, dynamic_accepts, highwater_accepts,
                         maximal_accepts, exhaustive_sound, family=family,
                         unwinding_certified=unwinding_certified,
                         unwinding_states=unwinding_states,
                         unwinding_iterations=unwinding_iterations)


def precision_harness(flowcharts: Optional[Sequence[Flowchart]] = None,
                      grid: Optional[Callable[[int], ProductDomain]] = None,
                      fuel: int = DEFAULT_FUEL) -> PrecisionReport:
    """The full ladder over the figure library × every allow policy.

    The default program set is the extended figure library plus the
    dynamic-policy suite (the ``policy-change`` and ``downgrader``
    families).
    """
    if flowcharts is None:
        from ..flowchart.library import dynamic_policy_suite, extended_suite

        flowcharts = list(extended_suite()) + list(dynamic_policy_suite())
    grid = grid or default_grid

    pairs: List[PairPrecision] = []
    for flowchart in flowcharts:
        domain = grid(flowchart.arity)
        values = {tuple(point): run_flowchart(flowchart, point,
                                              fuel=fuel).value
                  for point in domain}
        for policy in all_allow_policies(flowchart.arity):
            pairs.append(pair_precision(flowchart, policy, domain,
                                        values=values, fuel=fuel))
    return PrecisionReport(pairs)
