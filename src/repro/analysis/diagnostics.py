"""Diagnostics: what a flowlint pass reports and how it is rendered.

Every finding is a :class:`Diagnostic` — a machine-readable code
(``FLOW001``, ``TIME001``, ``HYG00x``), a :class:`Severity`, the pass
that produced it, the box it anchors to, and a human message plus a
``data`` dict for tooling.  :class:`LintReport` aggregates the
diagnostics of one :class:`~repro.analysis.manager.PassManager` run and
owns the text/JSON renderings and the CLI exit-code convention:

- exit 0 — no error-severity diagnostics,
- exit 1 — at least one error-severity diagnostic,
- exit 2 — usage error (bad arguments), raised before any pass runs.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional

from ..flowchart.boxes import NodeId


class Severity(enum.IntEnum):
    """Severity ladder; only :data:`ERROR` makes ``repro lint`` fail."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:
        return self.name.lower()


class Diagnostic:
    """One finding of one analysis pass, anchored to a flowchart box."""

    __slots__ = ("code", "severity", "pass_name", "node", "message", "data")

    def __init__(self, code: str, severity: Severity, pass_name: str,
                 message: str, node: Optional[NodeId] = None,
                 data: Optional[dict] = None) -> None:
        self.code = code
        self.severity = Severity(severity)
        self.pass_name = pass_name
        self.node = node
        self.message = message
        self.data = dict(data) if data else {}

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "severity": str(self.severity),
            "pass": self.pass_name,
            "node": self.node,
            "message": self.message,
            "data": self.data,
        }

    def render(self) -> str:
        location = f"[{self.node}] " if self.node is not None else ""
        return f"{self.severity}: {self.code} {location}{self.message}"

    def __repr__(self) -> str:
        return (f"Diagnostic({self.code}, {self.severity}, "
                f"pass={self.pass_name}, node={self.node!r}, "
                f"{self.message!r})")


def _sort_key(diagnostic: Diagnostic):
    # pass_name is the final tiebreak: two passes can legitimately emit
    # the same (code, node) pair, and without it the report order would
    # depend on pass registration order — nondeterministic across
    # custom managers.
    return (-int(diagnostic.severity), diagnostic.code,
            str(diagnostic.node or ""), diagnostic.pass_name)


class LintReport:
    """All diagnostics from one PassManager run over one flowchart."""

    def __init__(self, flowchart_name: str,
                 diagnostics: List[Diagnostic],
                 pass_seconds: Dict[str, float],
                 policy_name: Optional[str] = None,
                 pass_stats: Optional[Dict[str, dict]] = None) -> None:
        self.flowchart_name = flowchart_name
        self.diagnostics = sorted(diagnostics, key=_sort_key)
        self.pass_seconds = dict(pass_seconds)
        self.policy_name = policy_name
        # Canonical (name-sorted) per-pass stats: wall time plus, for
        # fixpoint passes, iteration counts / explored state counts.
        self.pass_stats = {name: dict((pass_stats or {})[name])
                           for name in sorted(pass_stats or {})}

    def by_severity(self, severity: Severity) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == severity]

    @property
    def errors(self) -> List[Diagnostic]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> List[Diagnostic]:
        return self.by_severity(Severity.WARNING)

    @property
    def has_errors(self) -> bool:
        return bool(self.errors)

    @property
    def exit_code(self) -> int:
        return 1 if self.has_errors else 0

    def counts(self) -> Dict[str, int]:
        return {
            "error": len(self.errors),
            "warning": len(self.warnings),
            "info": len(self.by_severity(Severity.INFO)),
        }

    def to_dict(self) -> dict:
        return {
            "flowchart": self.flowchart_name,
            "policy": self.policy_name,
            "counts": self.counts(),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "pass_seconds": self.pass_seconds,
            "pass_stats": self.pass_stats,
        }

    def render(self) -> str:
        header = f"flowlint: {self.flowchart_name}"
        if self.policy_name:
            header += f" (policy {self.policy_name})"
        lines = [header]
        for diagnostic in self.diagnostics:
            lines.append(f"  {diagnostic.render()}")
        counts = self.counts()
        lines.append(f"  {counts['error']} error(s), "
                     f"{counts['warning']} warning(s), "
                     f"{counts['info']} info(s)")
        return "\n".join(lines)

    def __repr__(self) -> str:
        counts = self.counts()
        return (f"LintReport({self.flowchart_name}: "
                f"{counts['error']}E/{counts['warning']}W/"
                f"{counts['info']}I)")
