"""The faulty link layer: chaos at send, at-least-once by retransmit.

One :class:`Transport` lives in each node process.  Sends go through
the installed :class:`~repro.verify.chaos.FaultPlan` — every
drop/dup/corrupt/delay decision a pure function of ``(seed, channel,
seq, attempt)`` — and every data/control envelope is kept on a
retransmit timer until the receiver acknowledges ``(channel, seq)``.
Acks travel unfaulted: that keeps the fate of attempt *k* deterministic
(attempt *k* happens iff attempts ``0..k-1`` were all dropped or
their acks have not yet arrived), which is what makes a chaosed run
replayable.

Retransmission backs off exponentially with deterministic seed-keyed
jitter (the same :func:`repro.verify.chaos.jitter` the sweep retry
ladder uses), bounded so a dropped-heavy schedule recovers in bounded
expected time without hammering the queues.

The transport never blocks: :meth:`pump` is called from the node's
event loop and delivers due delayed envelopes / fires due retransmits.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Tuple

from ..verify.chaos import FaultPlan, jitter
from .envelope import corrupt_in_flight

#: Retransmission timer: first timeout ~RTO_BASE, doubling per attempt,
#: bounded by RTO_CAP; jittered into [0.5x, 1x].
RTO_BASE_S = 0.08
RTO_CAP_S = 1.0


def retransmit_timeout(seed: int, channel: str, seq: int,
                       attempt: int) -> float:
    """The per-message timeout before attempt ``attempt + 1``."""
    base = min(RTO_CAP_S, RTO_BASE_S * (2 ** attempt))
    return base * (0.5 + 0.5 * jitter(seed, "rto", channel, seq, attempt))


class Transport:
    """Chaos-faulted, acknowledged delivery between node processes.

    ``queues`` maps node index to that node's inbox queue; ``emit`` is
    the node's event forwarder (``message_sent``/``message_retried``
    events ride it to the coordinator's sinks).
    """

    def __init__(self, node: int, queues: List, plan: Optional[FaultPlan],
                 emit: Callable[..., None],
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.node = node
        self._queues = queues
        self._plan = plan
        self._emit = emit
        self._clock = clock
        #: (dst, channel, seq) -> [envelope, attempts_made, next_due]
        self._pending: Dict[Tuple[int, str, int], List] = {}
        #: (due_time, dst, payload) for delay-faulted deliveries
        self._delayed: List[Tuple[float, int, Dict]] = []
        self.sent = 0
        self.retried = 0

    # -- outbound ---------------------------------------------------------

    def send(self, envelope: Dict) -> None:
        """Send (and keep retransmitting until acked) one envelope."""
        key = (envelope["dst"], envelope["channel"], envelope["seq"])
        if key in self._pending:
            return
        self.sent += 1
        self._emit("message_sent", channel=envelope["channel"],
                   seq=envelope["seq"], src=self.node, dst=envelope["dst"])
        self._attempt(envelope, 0)
        due = self._clock() + retransmit_timeout(
            self._seed(), envelope["channel"], envelope["seq"], 0)
        self._pending[key] = [envelope, 0, due]

    def ack(self, envelope: Dict) -> None:
        """Acknowledge a received envelope back to its sender, unfaulted."""
        src = envelope["src"]
        if src < 0:
            return  # coordinator injections are fire-and-forget
        from .envelope import ack_envelope
        self._queues[src].put(ack_envelope(envelope["channel"],
                                           envelope["seq"],
                                           src=self.node, dst=src))

    def on_ack(self, channel: str, seq: int, src: int) -> None:
        """The receiver confirmed ``(channel, seq)`` — stop retransmitting."""
        self._pending.pop((src, channel, seq), None)

    # -- the event-loop hook ----------------------------------------------

    def pump(self) -> None:
        """Deliver due delayed envelopes and fire due retransmits."""
        now = self._clock()
        if self._delayed:
            still: List[Tuple[float, int, Dict]] = []
            for due, dst, payload in self._delayed:
                if due <= now:
                    self._queues[dst].put(payload)
                else:
                    still.append((due, dst, payload))
            self._delayed = still
        for key, entry in list(self._pending.items()):
            envelope, attempts, due = entry
            if due > now:
                continue
            attempt = attempts + 1
            entry[1] = attempt
            self.retried += 1
            self._emit("message_retried", channel=envelope["channel"],
                       seq=envelope["seq"], attempt=attempt)
            self._attempt(envelope, attempt)
            entry[2] = now + retransmit_timeout(
                self._seed(), envelope["channel"], envelope["seq"], attempt)

    @property
    def idle(self) -> bool:
        return not self._pending and not self._delayed

    # -- internals --------------------------------------------------------

    def _seed(self) -> int:
        return self._plan.seed if self._plan is not None else 0

    def _attempt(self, envelope: Dict, attempt: int) -> None:
        dst = envelope["dst"]
        if self._plan is None:
            self._queues[dst].put(envelope)
            return
        fault = self._plan.decide_message(envelope["channel"],
                                          envelope["seq"], attempt)
        if fault.corrupt:
            self._queues[dst].put(corrupt_in_flight(envelope))
        elif fault.drop:
            pass  # the retransmit timer recovers it
        elif fault.duplicate:
            self._queues[dst].put(envelope)
            self._queues[dst].put(dict(envelope))
        elif fault.delay > 0.0:
            # Delivered late — possibly behind later traffic, which is
            # exactly the reordering the seq-ordered mailboxes absorb.
            self._delayed.append((self._clock() + fault.delay, dst,
                                  envelope))
        else:
            self._queues[dst].put(envelope)
