"""Spawn, monitor, and recover a multi-node enforcement run.

:func:`run_distributed` partitions a flowchart over ``nodes`` OS
processes, injects the initial control token at node 0, and supervises:

- **liveness** — nodes heartbeat; a process found dead before the run
  finished is a crash (chaos kill or bug).  The coordinator emits
  ``node_crashed``, respawns the node at ``incarnation + 1``, and the
  new process replays its checkpoint journal back to the crash point
  (emitting ``node_recovered``) — at-least-once links do the rest.
- **observability** — node processes forward their trace events
  (spans, ``message_sent``/``message_retried``) to the coordinator,
  which emits them into its own attached sinks; node spans parent onto
  the coordinator's ``dist_run`` span, so ``repro trace spans --tree``
  shows one rooted tree across processes.
- **totalization** — a node that hits a declared fault (fuel, value
  cap, empty or corrupted channel) reports it; the coordinator turns it
  into the same distinguished notice the serial sweep path would
  (``Λ!fuel[N]``, ``Λ!cap[C]``, ``Λ!msg[detail]``), never a silent
  wrong answer.

:func:`serial_reference` computes the row the single-node semantics
produce for the same point — the comparison the headline invariant
(serial == distributed row-for-row for non-corrupting plans under any
recoverable fault schedule) is stated against.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
import shutil
import tempfile
import time
from typing import Dict, Optional, Sequence, Union

from ..core.errors import ArityMismatchError, ReproError
from ..core.mechanism import ViolationNotice
from ..flowchart.interpreter import DEFAULT_FUEL, initial_environment
from ..flowchart.program import Flowchart
from ..obs import runtime as _obs
from ..robustness.faults import (DECLARED_FAULTS, cap_notice,
                                 default_value_cap, fault_notice,
                                 fuel_notice, message_notice,
                                 resolve_value_cap)
from ..surveillance.dynamic import surveil
from ..surveillance.labels import EMPTY, singleton
from ..verify.chaos import FaultPlan
from .envelope import control_envelope
from .node import NodeSpec, node_main, pack_token
from .partition import Partition, build_partition

#: A node is respawned at most this many times before the run aborts —
#: a backstop against a deterministic bug crash-looping forever.
MAX_INCARNATIONS = 8


class DistResult:
    """One distributed run: the row plus the supervision ledger."""

    __slots__ = ("outcome", "steps", "env", "labels", "pc_label", "epoch",
                 "halted_early", "nodes", "crashes", "recoveries",
                 "messages_sent", "messages_retried", "elapsed_s")

    def __init__(self, outcome, steps, env, labels, pc_label, epoch,
                 halted_early, nodes, crashes, recoveries, messages_sent,
                 messages_retried, elapsed_s) -> None:
        self.outcome = outcome
        self.steps = steps
        self.env = env
        self.labels = labels
        self.pc_label = pc_label
        self.epoch = epoch
        self.halted_early = halted_early
        self.nodes = nodes
        self.crashes = crashes
        self.recoveries = recoveries
        self.messages_sent = messages_sent
        self.messages_retried = messages_retried
        self.elapsed_s = elapsed_s

    @property
    def violated(self) -> bool:
        return isinstance(self.outcome, ViolationNotice)

    def row(self) -> Dict:
        """The comparison row: outcome, steps, final store, labels."""
        return _row(self.outcome, self.steps, self.env, self.labels,
                    self.pc_label, self.epoch)

    def __repr__(self) -> str:
        return (f"DistResult(outcome={self.outcome!r}, steps={self.steps}, "
                f"nodes={self.nodes}, crashes={self.crashes})")


def _row(outcome, steps, env, labels, pc_label, epoch) -> Dict:
    # Totalized fault rows (Λ!…) normalise their machine state away:
    # the serial path raised out of the interpreter, so the notice text
    # is the whole observable and both sides must agree on exactly that.
    faulted = str(outcome).startswith("Λ!")
    return {
        "outcome": str(outcome),
        "steps": None if faulted else steps,
        "env": dict(env) if env is not None and not faulted else None,
        "labels": ({name: sorted(label) for name, label in labels.items()}
                   if labels is not None and not faulted else None),
        "pc": (sorted(pc_label)
               if pc_label is not None and not faulted else None),
        "epoch": None if faulted else epoch,
    }


def serial_reference(flowchart: Flowchart, inputs: Sequence[int], allowed,
                     timed: bool = False, forgetting: bool = True,
                     fuel: int = DEFAULT_FUEL,
                     value_cap: Optional[int] = None) -> Dict:
    """The single-node row a distributed run must reproduce exactly."""
    from ..flowchart.interpreter import execute

    try:
        run = surveil(flowchart, inputs, frozenset(allowed), timed=timed,
                      forgetting=forgetting, fuel=fuel, value_cap=value_cap)
    except DECLARED_FAULTS as error:
        return _row(fault_notice(error), None, None, None, None, None)
    env = None
    if not run.violated:
        # The surveillance walk does not snapshot the store; the plain
        # interpreter is value-identical, so its final env is the store.
        env = execute(flowchart, inputs, fuel=fuel, capture_env=True,
                      value_cap=value_cap).env
    return _row(run.outcome, run.steps, env, run.labels, run.pc_label,
                run.epoch)


def run_distributed(flowchart: Flowchart, inputs: Sequence[int], allowed,
                    nodes: int = 2, plan: Optional[FaultPlan] = None,
                    timed: bool = False, forgetting: bool = True,
                    fuel: int = DEFAULT_FUEL,
                    value_cap: Optional[int] = None,
                    timeout: float = 60.0,
                    workdir: Optional[str] = None) -> DistResult:
    """Run ``flowchart`` under surveillance across ``nodes`` processes."""
    if len(inputs) != flowchart.arity:
        raise ArityMismatchError(
            f"flowchart {flowchart.name} takes {flowchart.arity} inputs, "
            f"got {len(inputs)}")
    cap = (default_value_cap() if value_cap is None
           else resolve_value_cap(value_cap))
    partition = build_partition(flowchart, nodes)
    owns_workdir = workdir is None
    if owns_workdir:
        workdir = tempfile.mkdtemp(prefix="repro-dist-")
    try:
        return _supervise(flowchart, inputs, frozenset(allowed), nodes,
                          partition, plan, timed, forgetting, fuel, cap,
                          timeout, workdir)
    finally:
        if owns_workdir:
            shutil.rmtree(workdir, ignore_errors=True)


def _initial_token(flowchart: Flowchart, inputs, allowed) -> Dict:
    env = initial_environment(flowchart, inputs)
    labels = {name: EMPTY for name in env}
    for position, name in enumerate(flowchart.input_variables, 1):
        labels[name] = singleton(position)
    return {
        "current": flowchart.boxes[flowchart.start_id].successors()[0],
        "env": env,
        "labels": labels,
        "pc": EMPTY,
        "allowed": frozenset(allowed),
        "epoch": 0,
        "steps": 0,
        "sent": {},
        "has_epochs": bool(flowchart.policy_change_ids()),
    }


def _spawn(context, spec: NodeSpec):
    process = context.Process(target=node_main, args=(spec,), daemon=True)
    process.start()
    return process


def _supervise(flowchart, inputs, allowed, nodes, partition: Partition,
               plan, timed, forgetting, fuel, cap, timeout,
               workdir) -> DistResult:
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        context = multiprocessing.get_context()
    queues = [context.Queue() for _ in range(nodes)]
    coord_queue = context.Queue()
    trace = _obs.trace_active
    root = _obs.span_begin("dist_run", program=flowchart.name, nodes=nodes)
    root_span = root.id if root is not None else None

    def spec_for(node: int, incarnation: int) -> NodeSpec:
        return NodeSpec(
            node=node, flowchart=flowchart, partition=partition, plan=plan,
            fuel=fuel, cap=cap, timed=timed, forgetting=forgetting,
            journal_path=os.path.join(workdir, f"node{node}.jsonl"),
            incarnation=incarnation, queues=queues,
            coord_queue=coord_queue, root_span=root_span, trace=trace)

    started = time.monotonic()
    incarnations = [0] * nodes
    spawned = [started] * nodes
    processes = [_spawn(context, spec_for(node, 0))
                 for node in range(nodes)]
    stats = {node: {"sent": 0, "retried": 0} for node in range(nodes)}
    crashes = 0
    recoveries = 0
    terminal: Optional[Dict] = None

    # Inject the token where the first box lives (reliably: the chaos
    # plan governs inter-node links, not the coordinator's ignition).
    entry = partition.node_of(
        flowchart.boxes[flowchart.start_id].successors()[0])
    token = _initial_token(flowchart, inputs, allowed)
    queues[entry].put(control_envelope(0, pack_token(token), src=-1,
                                       dst=entry))

    try:
        while terminal is None:
            if time.monotonic() - started > timeout:
                raise ReproError(
                    f"distributed run of {flowchart.name} did not finish "
                    f"within {timeout}s (unrecoverable fault schedule?)")
            try:
                message = coord_queue.get(timeout=0.05)
            except queue_module.Empty:
                message = None
            if message is not None:
                kind = message.get("kind")
                if kind == "heartbeat":
                    stats[message["node"]] = {
                        "sent": message.get("sent", 0),
                        "retried": message.get("retried", 0)}
                elif kind == "event":
                    event = message["event"]
                    _obs.emit(event.pop("kind"), **event)
                elif kind in ("result", "fault"):
                    terminal = message
                continue
            # No traffic: check liveness and recover dead nodes.
            for node in range(nodes):
                process = processes[node]
                if process.is_alive():
                    continue
                crashes += 1
                _obs.emit("node_crashed", node=node,
                          exitcode=process.exitcode)
                # The dead incarnation can never close its own span;
                # its id is deterministic (pid + node + incarnation), so
                # the coordinator closes it — the cross-process tree
                # stays well formed even through crashes.
                _obs.emit("span_end",
                          span=f"{process.pid}-node{node}"
                               f"i{incarnations[node]}",
                          op="node",
                          elapsed_s=round(
                              time.monotonic() - spawned[node], 6),
                          crashed=True)
                incarnations[node] += 1
                recoveries += 1
                if incarnations[node] > MAX_INCARNATIONS:
                    raise ReproError(
                        f"node {node} of {flowchart.name} crashed more "
                        f"than {MAX_INCARNATIONS} times; giving up")
                spawned[node] = time.monotonic()
                processes[node] = _spawn(
                    context, spec_for(node, incarnations[node]))
    finally:
        for q in queues:
            q.put({"kind": "shutdown"})
        deadline = time.monotonic() + 2.0
        for process in processes:
            process.join(timeout=max(0.0, deadline - time.monotonic()))
            if process.is_alive():  # pragma: no cover - teardown backstop
                process.terminate()
        # Drain forwarded events (surviving nodes' span_ends, final
        # heartbeats) that raced the shutdown broadcast.
        while True:
            try:
                message = coord_queue.get(timeout=0.05)
            except queue_module.Empty:
                break
            if message.get("kind") == "event":
                event = message["event"]
                _obs.emit(event.pop("kind"), **event)
            elif message.get("kind") == "heartbeat":
                stats[message["node"]] = {
                    "sent": message.get("sent", 0),
                    "retried": message.get("retried", 0)}
        _obs.span_finish(root, crashes=crashes)
        for q in queues + [coord_queue]:
            q.cancel_join_thread()
            q.close()

    elapsed = round(time.monotonic() - started, 6)
    messages_sent = sum(entry["sent"] for entry in stats.values())
    messages_retried = sum(entry["retried"] for entry in stats.values())
    if terminal["kind"] == "fault":
        outcome = _totalize(terminal)
        return DistResult(outcome, terminal.get("steps"), None, None, None,
                          None, False, nodes, crashes, recoveries,
                          messages_sent, messages_retried, elapsed)
    raw = terminal["outcome"]
    outcome: Union[int, ViolationNotice] = (
        ViolationNotice(raw["notice"]) if "notice" in raw else raw["value"])
    env = terminal["env"] if "value" in raw else None
    return DistResult(
        outcome, terminal["steps"], env,
        {name: frozenset(label)
         for name, label in terminal["labels"].items()},
        frozenset(terminal["pc"]), terminal["epoch"],
        terminal["halted_early"], nodes, crashes, recoveries,
        messages_sent, messages_retried, elapsed)


def _totalize(fault: Dict) -> ViolationNotice:
    kind = fault["fault"]
    if kind == "fuel":
        return fuel_notice(fault["arg"])
    if kind == "cap":
        return cap_notice(fault["arg"])
    return message_notice(fault["arg"])
