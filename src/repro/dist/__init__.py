"""Distributed enforcement: multi-node flowcharts over faulty channels.

The single-node interpreter and surveillance walk are the reference
semantics; this package runs the *same* program across several OS
processes connected by typed channels whose links drop, duplicate,
reorder, delay, and corrupt messages under a seeded
:class:`~repro.verify.chaos.FaultPlan` — and still produces the same
row.  See ``docs/ROBUSTNESS.md`` ("Distributed enforcement & message
chaos") for the design and the determinism argument.

Public surface:

- :func:`~repro.dist.coordinator.run_distributed` /
  :class:`~repro.dist.coordinator.DistResult` — run a partitioned
  flowchart over N nodes and collect the row.
- :func:`~repro.dist.coordinator.serial_reference` — the single-node
  row the distributed run is compared against.
- :func:`~repro.dist.partition.build_partition` — the deterministic
  box→node assignment (channel homes pinned, start on node 0).
"""

from .coordinator import (DistResult, run_distributed,  # noqa: F401
                          serial_reference)
from .partition import Partition, build_partition, channel_homes  # noqa: F401

__all__ = [
    "DistResult", "Partition", "build_partition", "channel_homes",
    "run_distributed", "serial_reference",
]
