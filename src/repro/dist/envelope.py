"""Message envelopes for the distributed enforcement runtime.

Every value that crosses a node boundary travels inside an envelope
that carries, next to the payload, the two things the single-node
semantics would otherwise lose:

- the value's **surveillance label** (v̄ ∪ C̄ at the send site) — the
  distributed-setting soundness requirement: a label must migrate with
  its value or the receiving node under-approximates what the receive
  taught the program (Almeida Matos & Cederquist);
- a **checksum** over the canonical payload, so in-flight corruption
  is *detected* and totalized as a ``Λ!msg[corrupt:CH#SEQ]`` notice,
  never silently decoded into a wrong answer.

Envelope identity is deterministic, never random: a data envelope is
``(channel, seq)`` where ``seq`` is the channel's send ordinal in
program order, and a control envelope is ``("#ctl", hop)`` where
``hop`` counts control-token migrations.  Determinism is what lets
at-least-once delivery dedup exactly and lets a seeded fault plan give
a retransmitted envelope the same fate in every replay.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Tuple

#: The pseudo-channel carrying the migrating control token.
CONTROL_CHANNEL = "#ctl"


def _canonical(payload: Dict) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def checksum(payload: Dict) -> str:
    """A short deterministic digest of an envelope payload."""
    return hashlib.sha256(_canonical(payload).encode()).hexdigest()[:16]


def data_envelope(channel: str, seq: int, value: int, label,
                  src: int, dst: int) -> Dict:
    """One labelled value in flight to its channel's home node."""
    payload = {"channel": channel, "seq": seq, "value": int(value),
               "label": sorted(label)}
    return {"kind": "data", "src": src, "dst": dst,
            "sum": checksum(payload), **payload}


def control_envelope(hop: int, state: Dict, src: int, dst: int) -> Dict:
    """The migrating control token: the full machine state, checksummed.

    ``state`` is the packed token (current box, env, labels, pc label,
    epoch, active policy, step count, per-channel send ordinals) — see
    :mod:`repro.dist.node`.  ``hop`` is the token's migration ordinal;
    it doubles as the envelope's dedup seq on the control channel.
    """
    payload = {"channel": CONTROL_CHANNEL, "seq": int(hop), "state": state}
    return {"kind": "control", "src": src, "dst": dst,
            "sum": checksum(payload), **payload}


def ack_envelope(channel: str, seq: int, src: int, dst: int) -> Dict:
    """Acknowledges receipt of ``(channel, seq)`` — never chaos-faulted."""
    return {"kind": "ack", "channel": channel, "seq": int(seq),
            "src": src, "dst": dst}


def envelope_id(envelope: Dict) -> Tuple[str, int]:
    """The deterministic dedup identity of a data/control envelope."""
    return (envelope["channel"], envelope["seq"])


def verify_checksum(envelope: Dict) -> bool:
    """Whether an arrived envelope still matches its send-time digest."""
    if envelope["kind"] == "data":
        payload = {"channel": envelope["channel"], "seq": envelope["seq"],
                   "value": envelope["value"], "label": envelope["label"]}
    else:
        payload = {"channel": envelope["channel"], "seq": envelope["seq"],
                   "state": envelope["state"]}
    return checksum(payload) == envelope.get("sum")


def corrupt_in_flight(envelope: Dict) -> Dict:
    """What the chaos layer delivers for a ``corrupt`` fault decision.

    The payload is damaged but the original checksum is kept, so the
    receiver's :func:`verify_checksum` must fail — modelling a wire that
    flips bits, not an attacker who can re-sign.
    """
    damaged = dict(envelope)
    if envelope["kind"] == "data":
        damaged["value"] = envelope["value"] ^ 0x2A
    else:
        state = dict(envelope["state"])
        state["steps"] = state.get("steps", 0) ^ 0x2A
        damaged["state"] = state
    return damaged
