"""One node of a distributed enforcement run.

A node owns a partition slice of the flowchart, the mailboxes of the
channels homed on it, and — intermittently — the **control token**: the
full machine state (environment, surveillance labels, PC label, active
policy, epoch, step count, per-channel send ordinals) packed into a
checksummed control envelope.  Exactly one token exists, so at most one
node is executing boxes at any moment and the distributed run *is* the
serial run, spread across processes: row-for-row identical final store,
notices (including ``Λ@e{n}`` epoch tags) and step counts, which is the
headline invariant the test suite checks under chaos.

Box stepping mirrors :func:`repro.surveillance.dynamic.surveil` arm
for arm.  The only genuinely distributed arms:

- ``send ch(v)``: the labelled value goes to ``ch``'s home node inside
  a data envelope (or straight into the local mailbox when the home is
  this node); the token's per-channel send ordinal becomes the
  envelope's dedup seq.
- ``recv ch(v)``: consumed strictly in seq order from the home
  mailbox.  If the token's send ordinal says a message exists but it
  has not arrived (dropped, delayed, in retransmit), the node **parks**
  — keeps the token and retries as traffic lands.  If no send ever
  happened, the serial semantics would have found the queue empty too:
  the run totalizes as ``Λ!msg[empty:ch]``.

Durability: every accepted (post-dedup) envelope is journalled through
:class:`repro.verify.checkpoint.JournalWriter` *before* it is
processed.  Crash recovery replays the journal through the normal
handler — re-sends and all; receivers dedup and re-ack — so a respawned
incarnation deterministically reconstructs mailboxes, dedup state, and
any in-flight token.  Chaos kills (``FaultPlan.decide_kill``) fire only
on incarnation 0, so every scheduled crash is followed by a recovery
that runs the schedule off.
"""

from __future__ import annotations

import os
import queue as queue_module
import time
from typing import Dict, List, Optional

from ..flowchart.boxes import (AssignBox, DecisionBox, DowngradeBox, HaltBox,
                               PolicyChangeBox, RecvBox, SendBox, StartBox)
from ..surveillance.labels import join, permitted
from ..verify.checkpoint import JournalWriter, load_journal
from .envelope import (CONTROL_CHANNEL, control_envelope, data_envelope,
                       verify_checksum)
from .transport import Transport

#: Exit code of a chaos-scheduled node kill (distinguishes an injected
#: crash from a bug in the node loop when the coordinator looks).
KILLED_EXIT = 23

#: How often an idle node proves liveness to the coordinator.
HEARTBEAT_S = 0.1


class NodeSpec:
    """Everything a node process needs, bundled for the spawn call."""

    __slots__ = ("node", "flowchart", "partition", "plan", "fuel", "cap",
                 "timed", "forgetting", "journal_path", "incarnation",
                 "queues", "coord_queue", "root_span", "trace")

    def __init__(self, node, flowchart, partition, plan, fuel, cap, timed,
                 forgetting, journal_path, incarnation, queues, coord_queue,
                 root_span, trace) -> None:
        self.node = node
        self.flowchart = flowchart
        self.partition = partition
        self.plan = plan
        self.fuel = fuel
        self.cap = cap
        self.timed = timed
        self.forgetting = forgetting
        self.journal_path = journal_path
        self.incarnation = incarnation
        self.queues = queues
        self.coord_queue = coord_queue
        self.root_span = root_span
        self.trace = trace


def pack_token(state: Dict) -> Dict:
    """The JSON-safe wire form of the control token."""
    return {
        "current": state["current"],
        "env": dict(state["env"]),
        "labels": {name: sorted(label)
                   for name, label in state["labels"].items()},
        "pc": sorted(state["pc"]),
        "allowed": sorted(state["allowed"]),
        "epoch": state["epoch"],
        "steps": state["steps"],
        "sent": dict(state["sent"]),
        "has_epochs": state["has_epochs"],
    }


def unpack_token(wire: Dict) -> Dict:
    """Invert :func:`pack_token` (labels back to frozensets)."""
    return {
        "current": wire["current"],
        "env": {name: int(value) for name, value in wire["env"].items()},
        "labels": {name: frozenset(label)
                   for name, label in wire["labels"].items()},
        "pc": frozenset(wire["pc"]),
        "allowed": frozenset(wire["allowed"]),
        "epoch": int(wire["epoch"]),
        "steps": int(wire["steps"]),
        "sent": {name: int(count)
                 for name, count in wire["sent"].items()},
        "has_epochs": bool(wire["has_epochs"]),
    }


class NodeRuntime:
    """The event loop of one node process."""

    def __init__(self, spec: NodeSpec) -> None:
        self.spec = spec
        self.flowchart = spec.flowchart
        self.partition = spec.partition
        self.node = spec.node
        self.inbox = spec.queues[spec.node]
        self.coord = spec.coord_queue
        self.transport = Transport(spec.node, spec.queues, spec.plan,
                                   self._emit)
        #: channel -> {seq: (value, label)} — messages awaiting consumption
        self.mailboxes: Dict[str, Dict[int, tuple]] = {}
        #: channel -> next seq to consume (== count already consumed)
        self.consumed: Dict[str, int] = {}
        self.last_hop = -1
        self.token: Optional[Dict] = None
        self.accepted = 0
        self.finished = False
        self._stop = False
        self._journal: Optional[JournalWriter] = None
        self._span = f"{os.getpid()}-node{spec.node}i{spec.incarnation}"

    # -- event forwarding -------------------------------------------------

    def _emit(self, kind: str, **fields) -> None:
        if self.spec.trace:
            self.coord.put({"kind": "event",
                            "event": dict(fields, kind=kind)})

    # -- the loop ---------------------------------------------------------

    def run(self) -> None:
        replayed = self._recover()
        self._journal = JournalWriter(self.spec.journal_path,
                                      fresh=self.spec.incarnation == 0,
                                      start_seq=replayed)
        self._emit("span_start", span=self._span, op="node",
                   parent=self.spec.root_span, node=self.node,
                   incarnation=self.spec.incarnation)
        started = time.monotonic()
        if self.spec.incarnation > 0:
            self._emit("node_recovered", node=self.node,
                       incarnation=self.spec.incarnation)
        last_beat = 0.0
        while not self._stop:
            now = time.monotonic()
            if now - last_beat >= HEARTBEAT_S:
                last_beat = now
                self.coord.put({"kind": "heartbeat", "node": self.node,
                                "incarnation": self.spec.incarnation,
                                "sent": self.transport.sent,
                                "retried": self.transport.retried})
            self.transport.pump()
            try:
                message = self.inbox.get(timeout=0.02)
            except queue_module.Empty:
                message = None
            if message is not None:
                self._handle(message)
            if self.token is not None and not self._stop:
                self._drive_token()
        # Final stats beat: the coordinator drains this after shutdown,
        # so message counters reflect the whole run, not the last beat.
        self.coord.put({"kind": "heartbeat", "node": self.node,
                        "incarnation": self.spec.incarnation,
                        "sent": self.transport.sent,
                        "retried": self.transport.retried})
        self._emit("span_end", span=self._span, op="node",
                   elapsed_s=round(time.monotonic() - started, 6))
        self._journal.close()

    def _handle(self, message: Dict) -> None:
        kind = message.get("kind")
        if kind == "shutdown":
            self._stop = True
        elif kind == "ack":
            self.transport.on_ack(message["channel"], message["seq"],
                                  message["src"])
        elif kind in ("data", "control"):
            self._receive(message)

    # -- inbound envelopes ------------------------------------------------

    def _receive(self, envelope: Dict) -> None:
        if not verify_checksum(envelope):
            # A damaged envelope is detected, totalized, and terminal —
            # never decoded into a silent wrong answer.
            detail = f"corrupt:{envelope['channel']}#{envelope['seq']}"
            self.coord.put({"kind": "fault", "node": self.node,
                            "fault": "msg", "arg": detail})
            return
        if self._duplicate(envelope):
            self.transport.ack(envelope)
            return
        # Journal first: an accepted envelope must survive a crash that
        # lands anywhere after this line, including the chaos kill below.
        self._journal.write({"kind": "node_accept", "envelope": envelope})
        self.accepted += 1
        plan = self.spec.plan
        if (plan is not None and self.spec.incarnation == 0
                and plan.decide_kill(self.node, self.accepted)):
            os._exit(KILLED_EXIT)
        self._accept(envelope)
        self.transport.ack(envelope)

    def _duplicate(self, envelope: Dict) -> bool:
        if envelope["kind"] == "control":
            return envelope["seq"] <= self.last_hop
        channel, seq = envelope["channel"], envelope["seq"]
        if seq < self.consumed.get(channel, 0):
            return True
        return seq in self.mailboxes.get(channel, ())

    def _accept(self, envelope: Dict) -> None:
        if envelope["kind"] == "control":
            self.last_hop = envelope["seq"]
            self.token = unpack_token(envelope["state"])
            self.token["hop"] = envelope["seq"]
        else:
            self.mailboxes.setdefault(envelope["channel"], {})[
                envelope["seq"]] = (envelope["value"],
                                    frozenset(envelope["label"]))

    def _recover(self) -> int:
        """Replay the journal through the normal handler; returns records.

        Re-sends happen live (receivers dedup and re-ack), so after the
        replay the node's mailboxes, dedup state, retransmit timers, and
        any held token are exactly what the crash interrupted.
        """
        if self.spec.incarnation == 0:
            return 0
        records = load_journal(self.spec.journal_path)
        for record in records:
            if record.get("kind") != "node_accept":
                continue
            envelope = record["envelope"]
            if self._duplicate(envelope):
                continue
            self._accept(envelope)
            if self.token is not None:
                self._drive_token()
        return len(records)

    # -- driving the control token ----------------------------------------

    def _drive_token(self) -> None:
        """Execute boxes until the token migrates, parks, or the run ends.

        Arm-for-arm the semantics of
        :func:`repro.surveillance.dynamic.surveil`; every completed box
        costs one step, a parked receive costs nothing until it fires.
        """
        token = self.token
        flowchart = self.flowchart
        spec = self.spec
        bound = (1 << spec.cap) if spec.cap is not None else None
        while True:
            current = token["current"]
            owner = self.partition.node_of(current)
            if owner != self.node:
                self._migrate(owner)
                return
            if token["steps"] >= spec.fuel:
                self._fault("fuel", spec.fuel)
                return
            box = flowchart.boxes[current]
            if isinstance(box, RecvBox):
                # Park *before* the step is charged: arrival at a recv
                # whose message is still in flight is not an executed box.
                want = self.consumed.get(box.channel, 0)
                if want < token["sent"].get(box.channel, 0):
                    if want not in self.mailboxes.get(box.channel, ()):
                        return  # in flight — park, keep the token
                else:
                    token["steps"] += 1
                    self._fault("msg", f"empty:{box.channel}")
                    return
            token["steps"] += 1
            labels = token["labels"]
            env = token["env"]
            if isinstance(box, HaltBox):
                output_label = join(labels[flowchart.output_variable],
                                    token["pc"])
                if permitted(output_label, token["allowed"]):
                    self._result({"value": env[flowchart.output_variable]},
                                 halted_early=False)
                else:
                    self._result({"notice": self._notice(token)},
                                 halted_early=False)
                return
            if isinstance(box, AssignBox):
                incoming = join(*(labels[name]
                                  for name in box.expression.variables()),
                                token["pc"])
                if spec.forgetting:
                    labels[box.target] = incoming
                else:
                    labels[box.target] = join(labels[box.target], incoming)
                value = box.expression.eval(env)
                env[box.target] = value
                if bound is not None and (value >= bound or value <= -bound):
                    self._fault("cap", spec.cap)
                    return
                token["current"] = box.next
            elif isinstance(box, DecisionBox):
                test_label = join(*(labels[name]
                                    for name in box.predicate.variables()))
                if spec.timed and not permitted(test_label,
                                                token["allowed"]):
                    self._result({"notice": self._notice(token)},
                                 halted_early=True)
                    return
                token["pc"] = join(token["pc"], test_label)
                token["current"] = (box.true_next if box.predicate.eval(env)
                                    else box.false_next)
            elif isinstance(box, PolicyChangeBox):
                token["allowed"] = frozenset(box.allowed)
                token["epoch"] += 1
                token["current"] = box.next
            elif isinstance(box, DowngradeBox):
                labels[box.variable] = (labels[box.variable]
                                        - frozenset(box.indices))
                token["current"] = box.next
            elif isinstance(box, SendBox):
                seq = token["sent"].get(box.channel, 0)
                token["sent"][box.channel] = seq + 1
                label = join(labels[box.variable], token["pc"])
                home = self.partition.homes[box.channel]
                if home == self.node:
                    self.mailboxes.setdefault(box.channel, {})[seq] = (
                        env[box.variable], label)
                else:
                    self.transport.send(data_envelope(
                        box.channel, seq, env[box.variable], label,
                        src=self.node, dst=home))
                token["current"] = box.next
            elif isinstance(box, RecvBox):
                want = self.consumed[box.channel] = self.consumed.get(
                    box.channel, 0)
                value, message_label = self.mailboxes[box.channel].pop(want)
                self.consumed[box.channel] = want + 1
                env[box.variable] = value
                incoming = join(message_label, token["pc"])
                if spec.forgetting:
                    labels[box.variable] = incoming
                else:
                    labels[box.variable] = join(labels[box.variable],
                                                incoming)
                token["current"] = box.next
            elif isinstance(box, StartBox):  # pragma: no cover - partition
                token["current"] = box.successors()[0]

    def _notice(self, token: Dict) -> str:
        return (f"Λ@e{token['epoch']}" if token["has_epochs"] else "Λ")

    def _migrate(self, owner: int) -> None:
        token = self.token
        hop = token.get("hop", -1) + 1
        self.transport.send(control_envelope(hop, pack_token(token),
                                             src=self.node, dst=owner))
        self.token = None

    def _result(self, outcome: Dict, halted_early: bool) -> None:
        token = self.token
        self.coord.put({
            "kind": "result", "node": self.node,
            "outcome": outcome, "steps": token["steps"],
            "env": dict(token["env"]),
            "labels": {name: sorted(label)
                       for name, label in token["labels"].items()},
            "pc": sorted(token["pc"]),
            "epoch": token["epoch"],
            "halted_early": halted_early,
        })
        self.token = None
        self.finished = True

    def _fault(self, fault: str, arg) -> None:
        self.coord.put({"kind": "fault", "node": self.node,
                        "fault": fault, "arg": arg,
                        "steps": self.token["steps"]})
        self.token = None
        self.finished = True


def node_main(spec: NodeSpec) -> None:
    """Process entry point: run the node loop, swallow teardown races."""
    try:
        NodeRuntime(spec).run()
    except KeyboardInterrupt:  # pragma: no cover - interactive teardown
        pass
