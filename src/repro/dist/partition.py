"""Deterministic partitioning of a flowchart across nodes.

The distributed runtime moves a single control token between nodes; the
partition decides which node executes each box.  Two hard rules, then
balance:

1. **Channel homes.**  Every ``recv`` of a channel lives on that
   channel's *home node* — the node that owns the channel's mailbox.
   Without this, two nodes could race to consume the same message and
   the seq-ordered mailbox discipline (which defeats duplication and
   reordering) would fall apart.  The home is a pure function of the
   channel's rank among the flowchart's channels, so every process
   derives the same map with no coordination.
2. **Start on node 0.**  The run begins where the coordinator injects
   the token.

Everything else is round-robin over box ids in sorted order —
deterministic, and on real programs it scatters assignments and
decisions across nodes so control actually migrates (the point of the
exercise: exercising the faulty links, not minimising hops).
"""

from __future__ import annotations

from typing import Dict, List

from ..core.errors import ReproError
from ..flowchart.boxes import NodeId, RecvBox, StartBox
from ..flowchart.program import Flowchart


def channel_homes(flowchart: Flowchart, nodes: int) -> Dict[str, int]:
    """Map each channel to its home node (rank modulo node count)."""
    return {channel: rank % nodes
            for rank, channel in enumerate(flowchart.channels())}


class Partition:
    """A box→node assignment for one flowchart over ``nodes`` nodes."""

    __slots__ = ("nodes", "assignment", "homes")

    def __init__(self, nodes: int, assignment: Dict[NodeId, int],
                 homes: Dict[str, int]) -> None:
        self.nodes = nodes
        self.assignment = dict(assignment)
        self.homes = dict(homes)

    def node_of(self, box_id: NodeId) -> int:
        return self.assignment[box_id]

    def boxes_on(self, node: int) -> List[NodeId]:
        return sorted(box_id for box_id, owner in self.assignment.items()
                      if owner == node)

    def __repr__(self) -> str:
        return f"Partition(nodes={self.nodes}, boxes={len(self.assignment)})"


def build_partition(flowchart: Flowchart, nodes: int) -> Partition:
    """Assign every box of ``flowchart`` to one of ``nodes`` nodes."""
    if nodes < 1:
        raise ReproError(f"a distributed run needs >= 1 node; got {nodes}")
    homes = channel_homes(flowchart, nodes)
    assignment: Dict[NodeId, int] = {}
    rank = 0
    for box_id in sorted(flowchart.boxes):
        box = flowchart.boxes[box_id]
        if isinstance(box, StartBox):
            assignment[box_id] = 0
        elif isinstance(box, RecvBox):
            assignment[box_id] = homes[box.channel]
        else:
            assignment[box_id] = rank % nodes
            rank += 1
    # The first executed box is the start box's successor; pin it to
    # node 0 with the start so every run begins where the token enters.
    first = flowchart.boxes[flowchart.start_id].successors()[0]
    if not isinstance(flowchart.boxes[first], RecvBox):
        assignment[first] = 0
    return Partition(nodes, assignment, homes)
