"""Crash-safe sweep checkpoints: journal chunk summaries, resume later.

A checkpoint is a JSONL file of *valid trace events* (they pass
:func:`repro.obs.events.validate_jsonl`):

- one ``checkpoint_meta`` header carrying the sweep's config
  fingerprint (programs, policies, grid, factory, budgets, and the
  chunk layout — everything resume determinism depends on);
- one ``checkpoint_written`` record per completed chunk, carrying the
  chunk's full :class:`~repro.verify.parallel.ChunkSummary` (acceptance
  count, per-policy-class representatives in domain order, conflict
  flag).

Crash safety is line-at-a-time: every record is flushed as it is
written, so a sweep killed mid-flight leaves at worst one torn final
line, which :func:`load_checkpoint` tolerates.  Resume re-opens the
journal in append mode and the sweep re-schedules only the chunks the
journal does not already cover; because the summaries are merged in
chunk order either way, a resumed sweep's rows are bit-identical to an
uninterrupted run's.

The config fingerprint is the resume guard: a checkpoint written under
one sweep configuration (different grid, fuel, value cap, chunk size…)
refuses to resume another, because restored summaries would then be
merged against a different chunk layout and silently corrupt verdicts.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from typing import Dict, List, Optional, Tuple

from ..core.errors import ReproError
from ..core.mechanism import ViolationNotice

__all__ = ["CheckpointWriter", "JournalWriter", "config_fingerprint",
           "encode_value", "decode_value", "load_checkpoint",
           "load_journal"]


def encode_value(value):
    """JSON-encode a policy-class key or mechanism output.

    Violation notices carry their message under ``"n"``, tuples
    (policy values, timed outputs) under ``"t"``; plain ints pass
    through.  The encoding round-trips through :func:`decode_value`
    exactly — notice equality is message equality, so a restored class
    representative compares identically to a recomputed one.
    """
    if isinstance(value, ViolationNotice):
        return {"n": value.message}
    if isinstance(value, tuple):
        return {"t": [encode_value(part) for part in value]}
    if isinstance(value, bool) or not isinstance(value, (int, str)):
        raise ReproError(
            f"cannot checkpoint value of type {type(value).__name__}: "
            f"{value!r}")
    return value


def decode_value(encoded):
    """Invert :func:`encode_value`."""
    if isinstance(encoded, dict):
        if "n" in encoded:
            return ViolationNotice(encoded["n"])
        if "t" in encoded:
            return tuple(decode_value(part) for part in encoded["t"])
        raise ReproError(f"unrecognised checkpoint value {encoded!r}")
    return encoded


def config_fingerprint(descriptor: Dict) -> str:
    """A stable hash of everything resume determinism depends on."""
    canonical = json.dumps(descriptor, sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


class JournalWriter:
    """A crash-safe append-only JSONL journal: fsync per record.

    The durability contract every journal in the repo shares (sweep
    checkpoints here, node-state journals in :mod:`repro.dist`): each
    record gains a monotone ``seq`` and relative timestamp ``t``, is
    written as one line, and is flushed *and* fsynced before the write
    returns — a SIGKILL leaves at worst one torn final line, which
    :func:`load_journal` tolerates.

    ``fresh`` truncates; resume passes ``fresh=False`` (and
    ``start_seq`` past the restored records) to append.
    """

    def __init__(self, path: str, fresh: bool = True,
                 start_seq: int = 0) -> None:
        self.path = path
        self._seq = start_seq
        self._t0 = time.monotonic()
        self._file = open(path, "w" if fresh else "a", encoding="utf-8")

    def _write(self, record: Dict) -> None:
        record = dict(record)
        record["seq"] = self._seq
        record["t"] = round(time.monotonic() - self._t0, 6)
        self._seq += 1
        self._file.write(json.dumps(record, sort_keys=True,
                                    separators=(",", ":")) + "\n")
        # Flush per record: the journal must survive a SIGKILL with at
        # worst a torn final line (the resume test exercises this).
        self._file.flush()
        os.fsync(self._file.fileno())

    def write(self, record: Dict) -> None:
        """Append one record durably (seq and timestamp added here)."""
        self._write(record)

    def close(self) -> None:
        if not self._file.closed:
            self._file.flush()
            self._file.close()

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class CheckpointWriter(JournalWriter):
    """Appends one flushed JSONL record per completed chunk.

    ``fresh`` truncates and writes the ``checkpoint_meta`` header;
    resume passes ``fresh=False`` (and ``start_seq`` past the restored
    records) to append to the existing journal.
    """

    def __init__(self, path: str, descriptor: Dict, fresh: bool = True,
                 start_seq: int = 0) -> None:
        super().__init__(path, fresh=fresh, start_seq=start_seq)
        if fresh:
            self._write({"kind": "checkpoint_meta",
                         "config": config_fingerprint(descriptor),
                         "sweep": descriptor})

    def write_chunk(self, pair: int, chunk: int, summary) -> None:
        record = {
            "kind": "checkpoint_written",
            "pair": pair,
            "chunk": chunk,
            "accepts": summary.accepts,
            "conflict": summary.conflict,
            "classes": [[encode_value(key), encode_value(output)]
                        for key, output in summary.classes.items()],
        }
        backend = getattr(summary, "backend", None)
        if backend is not None:
            record["backend"] = backend
        self._write(record)


def load_journal(path: str) -> List[Dict]:
    """Read a JSONL journal, tolerating one torn final line.

    The load half of the :class:`JournalWriter` durability contract: a
    journal whose writer was SIGKILLed mid-record parses up to the torn
    tail; corruption anywhere *else* raises, because a mid-file tear
    means the file is not the journal we wrote.
    """
    if not os.path.exists(path):
        raise ReproError(f"journal {path!r} does not exist")
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.readlines()
    records: List[Dict] = []
    for index, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except ValueError:
            if index == len(lines) - 1:
                break  # torn tail from a mid-write kill — expected
            raise ReproError(
                f"journal {path!r} is corrupt at line {index + 1}")
    return records


def load_checkpoint(path: str,
                    expected_fingerprint: Optional[str] = None
                    ) -> Tuple[Dict, Dict[Tuple[int, int], object], int]:
    """Read a checkpoint journal; returns ``(meta, summaries, records)``.

    ``summaries`` maps ``(pair, chunk)`` to restored
    :class:`~repro.verify.parallel.ChunkSummary` objects (class dicts
    rebuilt in their journalled — i.e. domain — order).  ``records`` is
    the total record count (for seq continuation on append).

    A torn final line (the SIGKILL case) is tolerated; anything else
    malformed raises.  When ``expected_fingerprint`` is given, a
    mismatch with the journal's ``checkpoint_meta`` raises — resuming
    under a different sweep configuration would corrupt verdicts.
    """
    from .parallel import ChunkSummary

    records = load_journal(path)
    if not records or records[0].get("kind") != "checkpoint_meta":
        raise ReproError(
            f"checkpoint {path!r} has no checkpoint_meta header")
    meta = records[0]
    if (expected_fingerprint is not None
            and meta.get("config") != expected_fingerprint):
        raise ReproError(
            f"checkpoint {path!r} was written by a different sweep "
            "configuration (programs/policies/grid/budgets/chunking "
            "changed); refusing to resume")
    summaries: Dict[Tuple[int, int], object] = {}
    for record in records[1:]:
        if record.get("kind") != "checkpoint_written":
            raise ReproError(
                f"checkpoint {path!r} contains unexpected "
                f"{record.get('kind')!r} record")
        classes = {}
        for key, output in record["classes"]:
            classes[decode_value(key)] = decode_value(output)
        summaries[(record["pair"], record["chunk"])] = ChunkSummary(
            record["accepts"], classes, record["conflict"],
            record.get("backend"))
    return meta, summaries, len(records)
