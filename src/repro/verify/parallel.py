"""Parallel ∀-sweeps: the policy × grid product across a worker pool.

``soundness_sweep`` enumerates ``2^k`` allow-policies × ``3^k`` grid
points per flowchart — an embarrassingly parallel product.  This module
chunks that product across a :mod:`concurrent.futures` pool and merges
the per-chunk summaries back into the same
:class:`~repro.verify.enumerate.SweepResult` rows the serial sweep
produces.

Work unit and merge
-------------------
A task is one ``(flowchart, policy, chunk-of-grid-points)`` triple.
Each worker evaluates the mechanism **once per point** and returns a
:class:`ChunkSummary`: the acceptance count plus, per policy-class, the
first output seen and whether the chunk itself witnessed a conflict.
Merging chunks (in domain order) compares class representatives across
chunk boundaries, so the merged soundness verdict is exactly the serial
factorization verdict — the per-point outputs are shared between the
soundness check and the accepts count, never recomputed.

Fuel
----
The sweep's ``fuel`` budget reaches every mechanism factory (the
registered :data:`FACTORIES` take ``(flowchart, policy, domain,
fuel)``), and a run that exhausts it is recorded as the distinguished
:func:`~repro.verify.enumerate.fuel_notice` outcome instead of
unwinding the pool — so serial and parallel sweeps agree row-for-row
at *any* budget, and a sweep is a total function of its arguments.

Fault tolerance
---------------
Pooled chunks are supervised: a chunk that raises (or exceeds
``chunk_timeout`` seconds) is retried up to ``max_chunk_retries``
times (a ``worker_retry`` trace event per attempt); a chunk that keeps
failing is recovered by evaluating it inline in the parent.  If the
pool itself dies — a crashed worker process, a pool that cannot spawn
— the sweep degrades ``process → thread → serial``, emitting a
``pool_degraded`` event rather than a traceback, and re-schedules only
the chunks that had not yet completed.

A chunk that *keeps* crashing deterministically (a poison point — an
OOM-style fault that follows the work wherever it runs) is not retried
forever: inline recovery runs under :func:`quarantine_chunk`, which
bisects the chunk to the crashing point(s) and totalizes each one into
a distinguished ``Λ!crash[Type]`` notice (``point_quarantined`` trace
events carry the provenance), so the sweep completes and serial,
thread, and process executors still agree row-for-row.  Injected
faults for testing this machinery come from :mod:`repro.verify.chaos`.

Checkpoint / resume
-------------------
``checkpoint=`` journals every completed chunk summary to a crash-safe
JSONL file (see :mod:`repro.verify.checkpoint`); ``resume=True``
restores the journalled chunks and re-schedules only the remainder,
producing bit-identical merged rows.  ``stop=`` / ``deadline=`` let a
signal handler or watchdog interrupt the sweep cleanly: in-flight
chunks drain, the journal flushes, and the sweep raises
:class:`~repro.core.errors.SweepInterruptedError`.

Observability
-------------
When :mod:`repro.obs` is enabled the sweep emits ``sweep_start``,
``chunk_done``, ``worker_retry``, ``pool_degraded``, ``pair_done`` and
``sweep_end`` events and maintains the ``sweep.*`` counters and the
``sweep.pair_seconds`` histogram (see ``docs/OBSERVABILITY.md``).  The
optional ``progress`` callback fires as each (program, policy) pair
completes — the CLI's ``--progress`` flag rides it.

Executor selection
------------------
``executor="auto"`` picks:

- ``"serial"`` when the machine has one core or the product is small
  (pool overhead would dominate);
- ``"process"`` when the mechanism factory is a *registered* named
  factory (see :data:`FACTORIES`) so the task is picklable;
- ``"thread"`` otherwise (closures capture unpicklable state; threads
  share the mechanism object and its memo).

Any mode can be forced explicitly; ``"process"`` with an unpicklable
factory raises a clear error instead of a pickling traceback.
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import (FIRST_COMPLETED, BrokenExecutor,
                                ProcessPoolExecutor, ThreadPoolExecutor,
                                wait)
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.domains import ProductDomain
from ..core.errors import (FuelExhaustedError, MessageError, ReproError,
                           SweepInterruptedError, ValueCapExceededError)
from ..core.mechanism import ViolationNotice, is_violation
from ..core.policy import AllowPolicy
from ..flowchart.batchpath import K_CAP, K_FUEL, K_OK, execute_batch
from ..flowchart.fastpath import resolve_backend
from ..flowchart.interpreter import DEFAULT_FUEL
from ..flowchart.program import Flowchart
from ..obs import runtime as _obs
from ..obs.audit import (AuditLedger, budget_fingerprint, decision_payload,
                         merge_segments)
from ..robustness.faults import (cap_notice, crash_notice, fuel_notice,
                                 message_notice, resolve_value_cap)
from . import chaos
from .checkpoint import (CheckpointWriter, config_fingerprint, encode_value,
                         load_checkpoint)
from .enumerate import (SweepResult, all_allow_policies, build_mechanism,
                        default_grid)

EXECUTORS = ("auto", "serial", "thread", "process")

#: Point-count threshold below which "auto" stays serial.
_AUTO_SERIAL_THRESHOLD = 4096

#: Fallback order when a pool dies under the sweep.
_MODE_LADDER = {
    "process": ("process", "thread", "serial"),
    "thread": ("thread", "serial"),
    "serial": ("serial",),
}

#: Test hook: ``(pair_index, chunk_index, attempt) -> bool`` deciding
#: whether a pooled chunk attempt should crash before evaluating — the
#: injected-worker-failure switch the retry tests flip.  Decided in the
#: parent at submit time (so it reaches process workers via the task
#: payload); inline recovery and plain serial execution never inject.
_FAIL_INJECTOR: Optional[Callable[[int, int, int], bool]] = None

#: Test hook: ``(pair_index, chunk_index, attempt) -> seconds`` of
#: artificial delay before a *thread-pool* chunk runs (for exercising
#: ``chunk_timeout``).  ``None`` or 0 means no delay.
_DELAY_INJECTOR: Optional[Callable[[int, int, int], float]] = None

#: Retry backoff ladder: first retry waits ~BASE, doubling per attempt,
#: bounded by CAP so a degraded pool is never hammered by an immediate
#: resubmit storm yet recovery latency stays sub-second.
_BACKOFF_BASE_S = 0.05
_BACKOFF_CAP_S = 1.0


def retry_backoff(pair_index: int, chunk_index: int, attempt: int,
                  seed: int = 0) -> float:
    """Seconds a retried chunk waits before re-running (0 for attempt 0).

    Bounded exponential backoff with *deterministic* jitter: the jitter
    factor (0.5x–1x of the exponential base) is a pure function of
    ``(seed, pair, chunk, attempt)`` via the chaos hash, so a replayed
    sweep backs off identically.  The wait is a worker-side sleep and
    never touches chunk results — serial == thread == process rows hold
    with or without retries.
    """
    if attempt <= 0:
        return 0.0
    base = min(_BACKOFF_CAP_S, _BACKOFF_BASE_S * (2 ** (attempt - 1)))
    jitter = chaos.jitter(seed, "retry-backoff", pair_index, chunk_index,
                          attempt)
    return base * (0.5 + 0.5 * jitter)


class _InjectedWorkerFailure(RuntimeError):
    """Raised by the test-hook injection to simulate a crashed worker."""


class _PoolBroken(Exception):
    """Internal: the current pool can no longer make progress."""


class _StopRequested(Exception):
    """Internal: a stop/deadline fired; in-flight work has drained."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


class ChunkSummary:
    """What one worker learned from its slice of the domain."""

    __slots__ = ("accepts", "classes", "conflict", "backend")

    def __init__(self, accepts: int, classes: Dict, conflict: bool,
                 backend: Optional[str] = None) -> None:
        self.accepts = accepts
        #: policy_value -> first mechanism output seen in this chunk
        self.classes = classes
        self.conflict = conflict
        #: execution backend that actually produced this summary
        #: ("batch", "compiled", ...; None when unrecorded).
        self.backend = backend


def evaluate_chunk(mechanism, policy, points: Iterable[Tuple],
                   span: Optional[str] = None,
                   plan: Optional[chaos.FaultPlan] = None) -> ChunkSummary:
    """Evaluate the mechanism once per point; summarise for the merge.

    Declared faults inside the mechanism — fuel exhaustion, a value-cap
    breach — are recorded as their distinguished notices
    (:func:`~repro.robustness.faults.fuel_notice` /
    :func:`~repro.robustness.faults.cap_notice`), never exceptions —
    the same totalisation the serial sweep applies.  *Undeclared*
    exceptions (a genuine crash, a chaos poison point) propagate: the
    caller decides between retry and :func:`quarantine_chunk`.

    ``span`` is the enclosing chunk's span id (when tracing): each
    point gets a child span, and the mechanism's own leaf events
    (``run_end``, ``violation``, ``explanation``) attach to it via the
    thread-local span stack.  ``plan`` overrides the installed chaos
    plan (process workers receive theirs via the task payload).
    """
    if plan is None:
        plan = chaos.current_plan()
    classes: Dict = {}
    accepts = 0
    conflict = False
    evaluated = 0
    for point in points:
        evaluated += 1
        if plan is not None and plan.poisons(point):
            raise MemoryError(f"chaos poison point {tuple(point)!r}")
        point_span = _obs.span_begin("point", parent=span, push=True,
                                     point=list(point))
        try:
            try:
                output = mechanism(*point)
            except FuelExhaustedError as error:
                output = fuel_notice(error.fuel)
                if _obs.active:
                    _obs.record_fuel_exhausted(
                        getattr(mechanism, "name", "?"), error.fuel)
            except ValueCapExceededError as error:
                output = cap_notice(error.cap)
                if _obs.active:
                    _obs.record_value_cap_exceeded(
                        getattr(mechanism, "name", "?"), error.cap)
            except MessageError as error:
                output = message_notice(error.detail)
            accepted = not is_violation(output)
        finally:
            _obs.span_finish(point_span)
        if accepted:
            accepts += 1
        policy_value = policy(*point)
        if policy_value not in classes:
            classes[policy_value] = output
        elif not conflict and classes[policy_value] != output:
            conflict = True
    return ChunkSummary(accepts, classes, conflict)


#: Factory families the batch tier can evaluate whole-chunk: their
#: per-point output is a pure function of one flowchart execution.
_BATCH_FAMILIES = ("program", "surveillance")

_VIOL_KIND = 3  # merged outcome code for a surveillance violation

_CPU_COUNT: Optional[int] = None


def _cpu_count() -> Optional[int]:
    """``os.cpu_count()`` is a syscall on some platforms; ask once."""
    global _CPU_COUNT
    if _CPU_COUNT is None:
        _CPU_COUNT = os.cpu_count()
    return _CPU_COUNT


def _batch_outcome(lane: int, outkind, values, fuel_out, cap_out, viol_out):
    """Decode one lane's merged outcome code into the mechanism output."""
    code = int(outkind[lane])
    if code == K_FUEL:
        return fuel_out
    if code == K_CAP:
        return cap_out
    if code == _VIOL_KIND:
        return viol_out
    return int(values[lane])


def _summarize_batch_vector(rows, view, policy: AllowPolicy, points,
                            flowchart, fuel_out, cap_out, viol_out,
                            surveillance: bool) -> Optional[ChunkSummary]:
    """Vectorized ChunkSummary for an AllowPolicy batch (numpy lanes).

    Groups lanes by the policy projection with one ``np.unique`` instead
    of a Python dict insert per point.  Returns None when the points
    cannot columnize (callers fall back to the scalar walk).
    """
    np_mod, kinds, values = view
    pts = rows.input_matrix
    if pts is None:
        try:
            pts = np_mod.asarray(points, dtype=np_mod.int64)
        except (OverflowError, ValueError):  # oversized inputs: be safe
            return None
    # (outkind, accepts, vals) depend on the rows alone, never on the
    # policy; the rows memo serves one BatchResult to all 2^k policies
    # of a pair, so compute them once and park them on the result.
    cached = rows.summary_cache
    if cached is not None:
        outkind, accepts, vals = cached
    else:
        outkind = kinds
        if surveillance:
            from ..surveillance.instrument import VIOLATION_FLAG
            violated = ((kinds == K_OK)
                        & (rows.env_column(VIOLATION_FLAG) == 1))
            outkind = np_mod.where(violated, _VIOL_KIND, kinds)
        ok = outkind == K_OK
        accepts = int(ok.sum())
        vals = np_mod.where(ok, values, 0)
        rows.summary_cache = (outkind, accepts, vals)
    if surveillance and _obs.active:
        violations = int((outkind == _VIOL_KIND).sum())
        for _ in range(violations):
            _obs.record_violation(flowchart.name, "instrumented",
                                  timed=False)
    columns = [index - 1 for index in policy.indices]
    if not columns:
        # allow(): a single policy class, represented by the first lane.
        conflict = bool(((outkind != outkind[0]) | (vals != vals[0])).any())
        representative = _batch_outcome(0, outkind, values, fuel_out,
                                        cap_out, viol_out)
        return ChunkSummary(accepts, {(): representative}, conflict,
                            backend="batch")
    projection = pts[:, columns]
    # Mixed-radix encode the projected columns into one int64 key per
    # lane: a 1-D np.unique is far cheaper than the axis=0 row path,
    # and the encoding preserves lexicographic class order.  Falls back
    # to row-unique if the radix product would overflow the key space.
    if projection.shape[1] == 1:
        keys = projection[:, 0]
    else:
        shifted = projection - projection.min(axis=0)
        spans = shifted.max(axis=0) + 1
        keys = shifted[:, 0]
        radix = int(spans[0])
        for j in range(1, shifted.shape[1]):
            span = int(spans[j])
            radix *= span
            if radix > (1 << 62):
                keys = None
                break
            keys = keys * span + shifted[:, j]
        if keys is None:
            unique_rows, first, inverse = np_mod.unique(
                projection, axis=0, return_index=True, return_inverse=True)
            inverse = inverse.reshape(-1)
            conflict = bool(((outkind != outkind[first][inverse])
                             | (vals != vals[first][inverse])).any())
            classes: Dict = {}
            for u in np_mod.argsort(first, kind="stable"):
                lane = int(first[u])
                key = tuple(int(part) for part in unique_rows[u])
                classes[key] = _batch_outcome(lane, outkind, values,
                                              fuel_out, cap_out, viol_out)
            return ChunkSummary(accepts, classes, conflict,
                                backend="batch")
    _, first, inverse = np_mod.unique(keys, return_index=True,
                                      return_inverse=True)
    # Conflict detection: singleton classes cannot conflict; a single
    # class conflicts iff any lane differs from lane 0; the general
    # case compares each lane to its class representative.
    if first.size == keys.size:
        conflict = False
    elif first.size == 1:
        lane = int(first[0])
        conflict = bool(((outkind != outkind[lane])
                         | (vals != vals[lane])).any())
    else:
        conflict = bool(((outkind != outkind[first][inverse])
                         | (vals != vals[first][inverse])).any())
    # One bulk .tolist() per array beats a Python int() per element:
    # class representatives come out in first-seen (domain) order by
    # sorting the first-occurrence lane indices.
    order = np_mod.sort(first)
    key_rows = projection[order].tolist()
    codes = outkind[order].tolist()
    reps = values[order].tolist()
    classes = {}
    for key_row, code, rep in zip(key_rows, codes, reps):
        if code == K_FUEL:
            output = fuel_out
        elif code == K_CAP:
            output = cap_out
        elif code == _VIOL_KIND:
            output = viol_out
        else:
            output = rep
        classes[tuple(key_row)] = output
    return ChunkSummary(accepts, classes, conflict, backend="batch")


def _evaluate_chunk_batch(flowchart: Flowchart, family: str, policy,
                          points: List[Tuple], fuel: int,
                          value_cap: Optional[int], mechanism_name: str,
                          span: Optional[str] = None,
                          plan: Optional[chaos.FaultPlan] = None,
                          lane_engine: Optional[str] = None
                          ) -> ChunkSummary:
    """Evaluate a whole chunk on the batch tier; summarise for the merge.

    Supports the ``program`` and ``surveillance`` factory families —
    the two whose per-point output is a pure function of one flowchart
    execution (surveillance reads the instrumented flowchart's
    ``_viol`` flag from the final environment).  The summary is
    row-identical to :func:`evaluate_chunk` over the same points: same
    accepts, same first-seen class representatives in domain order,
    same conflict flag, same ``Λ!fuel[N]`` / ``Λ!cap[C]`` notices.

    A chaos poison point raises ``MemoryError`` *before* any lane
    executes; the caller's quarantine machinery then bisects the chunk
    per-point exactly as it would a per-point chunk, so quarantined
    rows agree across backends.  ``span`` is accepted for signature
    symmetry: the batch tier emits chunk-level events
    (``batch_compiled`` / ``batch_fallback``), not per-point spans.
    """
    del span  # no per-point spans on the batch tier
    if plan is None:
        plan = chaos.current_plan()
    if plan is not None:
        for point in points:
            if plan.poisons(point):
                raise MemoryError(f"chaos poison point {tuple(point)!r}")
    surveillance = family == "surveillance"
    if surveillance:
        from ..surveillance.instrument import VIOLATION_FLAG, instrument
        target = instrument(flowchart, policy)
    else:
        target = flowchart
    rows = execute_batch(target, points, fuel=fuel, value_cap=value_cap,
                         engine=lane_engine, need_env=surveillance)
    fuel_out = fuel_notice(fuel)
    cap_out = cap_notice(rows.cap) if rows.cap is not None else None
    viol_out = ViolationNotice("Λ") if surveillance else None
    if _obs.active:
        for i in range(len(points)):
            kind = rows.kind(i)
            if kind == K_FUEL:
                _obs.record_fuel_exhausted(mechanism_name, fuel)
            elif kind == K_CAP:
                _obs.record_value_cap_exceeded(mechanism_name, rows.cap)
    view = rows.vector_view()
    if view is not None and isinstance(policy, AllowPolicy):
        summary = _summarize_batch_vector(rows, view, policy, points,
                                          flowchart, fuel_out, cap_out,
                                          viol_out, surveillance)
        if summary is not None:
            return summary
    classes: Dict = {}
    accepts = 0
    conflict = False
    for i, point in enumerate(points):
        kind = rows.kind(i)
        if kind == K_FUEL:
            output = fuel_out
        elif kind == K_CAP:
            output = cap_out
        elif surveillance and rows.env_value(i, VIOLATION_FLAG) == 1:
            output = viol_out
            if _obs.active:
                _obs.record_violation(flowchart.name, "instrumented",
                                      timed=False)
        else:
            output = rows.value(i)
        if not is_violation(output):
            accepts += 1
        policy_value = policy(*point)
        if policy_value not in classes:
            classes[policy_value] = output
        elif not conflict and classes[policy_value] != output:
            conflict = True
    return ChunkSummary(accepts, classes, conflict, backend="batch")


def _merge_summaries(parts: Sequence[ChunkSummary]) -> ChunkSummary:
    """Fold sub-summaries (in domain order) into one ChunkSummary.

    Insertion order of the class dict is preserved across the fold, so
    a bisected chunk's summary is indistinguishable from one evaluated
    straight through.
    """
    classes: Dict = {}
    accepts = 0
    conflict = False
    for part in parts:
        accepts += part.accepts
        if part.conflict:
            conflict = True
        for policy_value, output in part.classes.items():
            if policy_value not in classes:
                classes[policy_value] = output
            elif not conflict and classes[policy_value] != output:
                conflict = True
    return ChunkSummary(accepts, classes, conflict)


def quarantine_chunk(mechanism, policy, points: List[Tuple],
                     pair_index: int = 0, chunk_index: int = 0,
                     span: Optional[str] = None,
                     plan: Optional[chaos.FaultPlan] = None,
                     evaluate: Optional[Callable[[], ChunkSummary]] = None
                     ) -> ChunkSummary:
    """Evaluate a chunk, bisecting deterministic crashes to their points.

    The total-function backstop: an undeclared exception (MemoryError,
    a segfaulting extension, a chaos poison point) is isolated by
    recursive bisection — halves that evaluate cleanly contribute their
    summaries unchanged; a single crashing point is *quarantined*,
    contributing the distinguished
    :func:`~repro.robustness.faults.crash_notice` for its policy class
    (and a ``point_quarantined`` trace event) instead of sinking the
    sweep.  Because the notice encodes only the exception type, the
    quarantined row is identical in serial, thread, and process mode.

    ``evaluate`` overrides the whole-chunk attempt (the batch tier
    rides it); the bisection itself always walks per-point via
    ``mechanism``, so quarantined rows agree across backends.
    """
    try:
        if evaluate is not None:
            return evaluate()
        return evaluate_chunk(mechanism, policy, points, span=span,
                              plan=plan)
    except Exception as error:
        if _obs.active:
            _obs.inc("sweep.chunks_quarantined")
            _obs.emit("chunk_quarantined", pair=pair_index,
                      chunk=chunk_index, points=len(points),
                      reason=type(error).__name__,
                      **({"span": span} if span else {}))
        return _bisect_crash(mechanism, policy, points, pair_index,
                             chunk_index, span, plan, error)


def _bisect_crash(mechanism, policy, points: List[Tuple], pair_index: int,
                  chunk_index: int, span: Optional[str],
                  plan: Optional[chaos.FaultPlan],
                  error: BaseException) -> ChunkSummary:
    """Isolate the crashing point(s) of a chunk known to raise ``error``."""
    if len(points) == 1:
        point = points[0]
        if _obs.active:
            _obs.inc("sweep.points_quarantined")
            _obs.emit("point_quarantined", pair=pair_index,
                      chunk=chunk_index, point=list(point),
                      reason=type(error).__name__,
                      **({"span": span} if span else {}))
        return ChunkSummary(0, {policy(*point): crash_notice(error)}, False)
    middle = len(points) // 2
    parts: List[ChunkSummary] = []
    for half in (points[:middle], points[middle:]):
        try:
            parts.append(evaluate_chunk(mechanism, policy, half, span=span,
                                        plan=plan))
        except Exception as half_error:
            parts.append(_bisect_crash(mechanism, policy, half, pair_index,
                                       chunk_index, span, plan, half_error))
    return _merge_summaries(parts)


def merge_chunks(summaries: Sequence[ChunkSummary]) -> Tuple[bool, int]:
    """Fold chunk summaries (in domain order) into (sound, accepts)."""
    classes: Dict = {}
    accepts = 0
    sound = True
    for summary in summaries:
        accepts += summary.accepts
        if summary.conflict:
            sound = False
        for policy_value, output in summary.classes.items():
            if policy_value not in classes:
                classes[policy_value] = output
            elif sound and classes[policy_value] != output:
                sound = False
    return sound, accepts


# ---------------------------------------------------------------------------
# Named factories (picklable work units for process pools)
# ---------------------------------------------------------------------------

def _factory_program(flowchart, policy, domain, fuel=DEFAULT_FUEL,
                     value_cap=None, backend=None):
    from ..core.mechanism import program_as_mechanism
    from ..flowchart.interpreter import as_program

    return program_as_mechanism(as_program(flowchart, domain, fuel=fuel,
                                           value_cap=value_cap,
                                           backend=backend))


def _factory_surveillance(flowchart, policy, domain, fuel=DEFAULT_FUEL,
                          value_cap=None, backend=None):
    # The literal Section 3 construction: instrument Q and execute the
    # instrumented flowchart (compiled backend, instrument+compile
    # caches).  Extensionally equal to the interpreter-level
    # ``surveillance_mechanism`` (bench E04 asserts this) but several
    # times faster in sweeps.
    from ..surveillance.instrument import instrumented_mechanism

    return instrumented_mechanism(flowchart, policy, domain, fuel=fuel,
                                  value_cap=value_cap, backend=backend)


def _factory_timed(flowchart, policy, domain, fuel=DEFAULT_FUEL,
                   value_cap=None, backend=None):
    from ..surveillance import timed_surveillance_mechanism

    return timed_surveillance_mechanism(flowchart, policy, domain, fuel=fuel,
                                        value_cap=value_cap, backend=backend)


def _factory_highwater(flowchart, policy, domain, fuel=DEFAULT_FUEL,
                       value_cap=None, backend=None):
    from ..surveillance import highwater_mechanism

    return highwater_mechanism(flowchart, policy, domain, fuel=fuel,
                               value_cap=value_cap, backend=backend)


#: Mechanism families addressable by name (CLI, process pools, benches).
#: Every registered factory takes ``(flowchart, policy, domain, fuel,
#: value_cap, backend)``.
FACTORIES: Dict[str, Callable] = {
    "program": _factory_program,
    "surveillance": _factory_surveillance,
    "timed": _factory_timed,
    "highwater": _factory_highwater,
}


def resolve_factory(factory) -> Callable:
    """A named family or a ``(flowchart, policy, domain[, fuel])`` callable."""
    if callable(factory):
        return factory
    try:
        return FACTORIES[factory]
    except (KeyError, TypeError):
        known = ", ".join(sorted(FACTORIES))
        raise ReproError(
            f"unknown mechanism factory {factory!r}; known: {known}"
        ) from None


def _chunk(points: List[Tuple], size: int) -> List[List[Tuple]]:
    return [points[start:start + size]
            for start in range(0, len(points), size)]


def _run_pair_task(payload: bytes) -> Tuple[int, int, ChunkSummary]:
    """Process-pool entry: rebuild the mechanism, evaluate one chunk.

    ``span_id`` is the parent-side chunk span: fork-started workers
    inherit the parent's attached sinks, so their point spans (and leaf
    events) land in the same trace and must link to the chunk that
    scheduled them.  Spawn-started workers have tracing off and ignore
    it.  The worker also drops any span stack inherited mid-fork — its
    events must not attribute to the parent's open spans.

    The chaos ``plan`` rides the payload (never a module global — spawn
    workers would miss it): injected delays sleep here, injected
    crashes raise here, and poison points crash inside
    :func:`evaluate_chunk` exactly as they would in the parent.
    """
    (pair_index, chunk_index, flowchart, policy, domain, factory_name,
     points, fuel, value_cap, inject_failure, delay, plan, span_id,
     batch_family, backend, lane_engine) = pickle.loads(payload)
    _obs._stack().clear()
    if delay:
        time.sleep(delay)
    if inject_failure:
        raise _InjectedWorkerFailure(
            f"injected failure for chunk ({pair_index}, {chunk_index})")
    mechanism = FACTORIES[factory_name](flowchart, policy, domain, fuel,
                                        value_cap=value_cap, backend=backend)
    if batch_family is not None:
        return pair_index, chunk_index, _evaluate_chunk_batch(
            flowchart, batch_family, policy, points, fuel, value_cap,
            mechanism.name, span=span_id, plan=plan,
            lane_engine=lane_engine)
    return pair_index, chunk_index, evaluate_chunk(mechanism, policy, points,
                                                   span=span_id, plan=plan)


def _pick_executor(executor: str, factory, workers: int,
                   total_points: int) -> str:
    if executor not in EXECUTORS:
        raise ReproError(
            f"unknown executor {executor!r}; expected one of {EXECUTORS}")
    if executor != "auto":
        return executor
    if workers <= 1 or total_points < _AUTO_SERIAL_THRESHOLD:
        return "serial"
    if isinstance(factory, str) or (
            callable(factory) and factory in FACTORIES.values()):
        return "process"
    return "thread"


def parallel_soundness_sweep(
        flowcharts: Sequence[Flowchart],
        mechanism_factory,
        grid: Optional[Callable[[int], ProductDomain]] = None,
        fuel: int = DEFAULT_FUEL,
        executor: str = "auto",
        max_workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        policies: Optional[Callable[[int], List[AllowPolicy]]] = None,
        chunk_timeout: Optional[float] = None,
        max_chunk_retries: int = 2,
        progress: Optional[Callable[[int, int, SweepResult], None]] = None,
        value_cap: Optional[int] = None,
        checkpoint: Optional[str] = None,
        resume: bool = False,
        stop: Optional[Callable[[], Optional[str]]] = None,
        deadline: Optional[float] = None,
        backend: Optional[str] = None,
        lane_engine: Optional[str] = None,
        audit: Optional[str] = None,
) -> List[SweepResult]:
    """The Theorem 3/3′ sweep, chunked across a worker pool.

    Produces exactly the rows of
    :func:`~repro.verify.enumerate.soundness_sweep` (same order, same
    verdicts, same acceptance counts); only the schedule differs.

    Parameters
    ----------
    mechanism_factory:
        Either a ``(flowchart, policy, domain[, fuel])`` callable or
        the name of a registered family in :data:`FACTORIES` (required
        for ``executor="process"``, where tasks must pickle).
    fuel:
        Step budget threaded to every mechanism construction; runs
        exceeding it yield the distinguished fuel notice (see module
        docstring), identically to the serial sweep.
    executor:
        ``"auto"``, ``"serial"``, ``"thread"``, or ``"process"``.
    chunk_size:
        Points per task; default splits each pair's domain into about
        four chunks per worker (minimum 64 points) so the pool stays
        busy without drowning in scheduling overhead.  Must be
        positive when given.
    policies:
        Policy enumeration per arity (default: every allow-policy,
        ``2^k`` of them).
    chunk_timeout:
        Seconds a pooled chunk may take before it is abandoned and
        retried (None disables — a genuinely hung worker can then
        stall the sweep).
    max_chunk_retries:
        Pool attempts per chunk beyond the first; a chunk that fails
        them all is recovered inline in the parent process.
    progress:
        ``progress(completed_pairs, total_pairs, result)`` called as
        each (program, policy) pair's verdict is merged.
    value_cap:
        Bit-length budget threaded to every mechanism construction;
        runs breaching it yield the distinguished ``Λ!cap[C]`` notice,
        identically in every executor mode (None defers to
        ``REPRO_VALUE_CAP``; resolved once here so workers agree).
    checkpoint:
        Path of a JSONL journal receiving every completed chunk
        summary (see :mod:`repro.verify.checkpoint`).  Forces the
        chunked scheduler even in serial mode, so the chunk layout —
        and hence the journal's meaning — is deterministic.
    resume:
        Restore previously journalled chunks from ``checkpoint`` and
        sweep only the remainder; requires the file to exist and to
        have been written by an identically-configured sweep.
    stop:
        Zero-argument callable polled between chunks; a truthy return
        (its string is the reason) drains in-flight work, flushes the
        journal, and raises :class:`SweepInterruptedError`.
    deadline:
        Wall-clock budget in seconds for the whole sweep; exceeded ⇒
        the same clean interruption with reason ``"deadline"``.
    backend:
        Execution tier for chunk evaluation (default: the
        ``REPRO_BACKEND`` resolution, see
        :func:`repro.flowchart.fastpath.resolve_backend`).
        ``"batch"`` dispatches whole chunks into the vectorized batch
        evaluator for the ``program`` and ``surveillance`` factory
        families; other families, provenance-enabled runs, and
        quarantine bisections degrade to per-point evaluation.  Each
        :class:`~repro.verify.enumerate.SweepResult` reports which
        backends actually ran its chunks via ``result.backends``.
    lane_engine:
        Batch-tier lane engine (``auto``/``numpy``/``python``) for
        ``backend="batch"`` sweeps; ``None`` defers to the cached
        ``REPRO_BATCH_LANES`` default.  Threaded explicitly so a
        long-running service never reads the environment per request.
    audit:
        Path of a hash-chained audit ledger (see
        :mod:`repro.obs.audit`) receiving one record per policy class
        per chunk — the enforcement decisions the soundness verdict is
        built from, each with a provenance pointer ``repro explain``
        can replay.  Chunk segments are derived from the merged
        summaries *parent-side* and appended in ``(pair, chunk)``
        order with no wall clock, so the ledger bytes are identical in
        serial, thread, and process modes (the executor-invariance
        test diffs them).
    """
    if chunk_size is not None and chunk_size <= 0:
        raise ReproError(
            f"chunk_size must be a positive number of grid points; "
            f"got {chunk_size}")
    if max_workers is not None and max_workers <= 0:
        raise ReproError(
            f"max_workers must be a positive worker count; got {max_workers}")
    if chunk_timeout is not None and chunk_timeout <= 0:
        raise ReproError(
            f"chunk_timeout must be positive seconds; got {chunk_timeout}")
    if max_chunk_retries < 0:
        raise ReproError(
            f"max_chunk_retries must be >= 0; got {max_chunk_retries}")
    if deadline is not None and deadline <= 0:
        raise ReproError(
            f"deadline must be positive seconds; got {deadline}")
    if resume and checkpoint is None:
        raise ReproError("resume=True needs a checkpoint path")
    value_cap = resolve_value_cap(value_cap)
    # Legacy 3-arg callables are honoured at the *default* backend only
    # (the fuel contract): an explicitly requested backend must reach
    # the factory or fail loudly, but the mere existence of a process
    # default must not break them.
    backend_requested = backend is not None
    backend = resolve_backend(backend)

    grid = grid or default_grid
    policies = policies or all_allow_policies
    factory = resolve_factory(mechanism_factory)
    workers = max_workers or _cpu_count() or 1

    # Whole-chunk batch evaluation engages only for the factory
    # families whose outputs the batch tier can reproduce; provenance
    # (explain) needs the per-point machinery, so it degrades too.
    batch_family: Optional[str] = None
    if backend == "batch" and not _obs.explain_active:
        if isinstance(mechanism_factory, str):
            family = mechanism_factory
        else:
            family = next((name for name, fn in FACTORIES.items()
                           if fn is factory), None)
        if family in _BATCH_FAMILIES and not any(
                flowchart.has_channels() for flowchart in flowcharts):
            # Channel programs stay per-point: the surveillance batch
            # family runs *instrumented* flowcharts, and literal
            # instrumentation cannot model labelled channel queues.
            batch_family = family
    # The tier for chunks evaluated per-point: under backend="batch"
    # that work degrades to the compiled engine — the same target the
    # batch tier itself retires hazardous lanes to — rather than to
    # whatever the process-global environment happens to say, so two
    # callers of the same process cannot retarget each other's
    # degraded chunks.
    point_backend = "compiled" if backend == "batch" else backend
    mech_backend = point_backend if backend_requested else None

    # Materialise the (flowchart, policy) pair list once, in sweep order.
    pairs: List[Tuple[Flowchart, AllowPolicy, ProductDomain]] = []
    for flowchart in flowcharts:
        domain = grid(flowchart.arity)
        for policy in policies(flowchart.arity):
            pairs.append((flowchart, policy, domain))
    total_points = sum(len(domain) for _, _, domain in pairs)

    mode = _pick_executor(executor, mechanism_factory, workers, total_points)

    # Audit ledger: opened fresh so the file is a pure function of this
    # sweep's inputs, appended parent-side only (workers never touch
    # it).  No wall clock in the payloads — timestamps would make the
    # "bit-identical across executors" guarantee a lie.
    audit_ledger: Optional[AuditLedger] = None
    audit_budget: Optional[str] = None
    if audit is not None:
        audit_ledger = AuditLedger(audit, fresh=True)
        audit_budget = budget_fingerprint(fuel=fuel, value_cap=value_cap,
                                          backend=backend)

    def audit_chunk_payloads(pair_index: int, chunk_index: int,
                             summary: "ChunkSummary") -> List[Dict]:
        """One decision payload per policy class of a merged chunk.

        Class insertion order follows the chunk's point order, which is
        fixed by the grid — deterministic across executors because the
        summaries themselves are.  The class representative *is* the
        enforcement decision the soundness verdict inspects, so each
        record carries the provenance ``repro explain`` needs to replay
        it: program, policy, encoded class key, and chunk coordinates.
        """
        flowchart, policy, _ = pairs[pair_index]
        payloads = []
        for policy_value, output in summary.classes.items():
            violated = is_violation(output)
            payloads.append(decision_payload(
                "notice" if violated else "accept",
                notice=str(output) if violated else None,
                endpoint="sweep", budget=audit_budget,
                provenance={"program": flowchart.name,
                            "policy": policy.name,
                            "class": encode_value(policy_value),
                            "pair": pair_index,
                            "chunk": chunk_index}))
        return payloads

    sweep_started = time.perf_counter()
    # The sweep span roots the whole trace: every pair/chunk/point span
    # links (transitively) back to it, in whichever process it is
    # reconstructed.  Pushed, so parent-side leaf events attach to it.
    sweep_span = _obs.span_begin("sweep", push=True, executor=mode,
                                 pairs=len(pairs), points=total_points)
    if _obs.active:
        _obs.inc("sweep.count")
        _obs.emit("sweep_start", pairs=len(pairs), points=total_points,
                  executor=mode, workers=workers,
                  factory=str(mechanism_factory) if isinstance(
                      mechanism_factory, str)
                  else getattr(factory, "__name__", "callable"))

    results_by_pair: Dict[int, SweepResult] = {}
    completed_pairs = [0]
    # Pair spans are supervised across pool callbacks (not pushed):
    # opened lazily at the pair's first scheduled chunk, closed when its
    # verdict merges in finish_pair.
    pair_spans: Dict[int, _obs.Span] = {}

    def pair_span_for(pair_index: int) -> Optional[_obs.Span]:
        handle = pair_spans.get(pair_index)
        if handle is None and _obs.trace_active:
            flowchart, policy, _ = pairs[pair_index]
            handle = _obs.span_begin(
                "pair", parent=sweep_span.id if sweep_span else None,
                pair=pair_index, program=flowchart.name,
                policy=policy.name)
            if handle is not None:
                pair_spans[pair_index] = handle
        return handle

    def finish_pair(pair_index: int, sound: bool, accepts: int,
                    mechanism_name: str, pair_seconds: float,
                    backends: Optional[Dict[str, int]] = None) -> None:
        flowchart, policy, domain = pairs[pair_index]
        result = SweepResult(flowchart.name, policy.name, mechanism_name,
                             sound, accepts, len(domain), backends=backends)
        results_by_pair[pair_index] = result
        completed_pairs[0] += 1
        pair_span = pair_spans.pop(pair_index, None)
        if _obs.active:
            _obs.observe("sweep.pair_seconds", pair_seconds)
            fields = {"pair": pair_index, "program": flowchart.name,
                      "policy": policy.name, "sound": sound,
                      "accepts": accepts}
            if pair_span is not None:
                fields["span"] = pair_span.id
            _obs.emit("pair_done", **fields)
        _obs.span_finish(pair_span, sound=sound, accepts=accepts)
        if progress is not None:
            progress(completed_pairs[0], len(pairs), result)

    def finalize() -> List[SweepResult]:
        results = [results_by_pair[index] for index in range(len(pairs))]
        if _obs.active:
            elapsed = time.perf_counter() - sweep_started
            _obs.emit("sweep_end", pairs=len(pairs),
                      elapsed_s=round(elapsed, 6),
                      unsound=sum(1 for r in results if not r.sound))
        _obs.span_finish(sweep_span)
        return results

    # The one-chunk-per-pair fast path is only safe when nothing needs
    # the chunked schedule: a checkpoint's meaning *is* its chunk
    # layout, stop/deadline need chunk boundaries to drain at, and an
    # audit ledger's records are keyed by (pair, chunk) — a serial run
    # on the fast path would ledger a different chunk layout than the
    # pooled executors, breaking bit-identical ledgers across modes.
    if (mode == "serial" and checkpoint is None and stop is None
            and deadline is None and audit is None):
        if _obs.active:
            _obs.inc("sweep.chunks_scheduled", len(pairs))
        # Every policy of a flowchart sweeps the same domain object;
        # materialise its point list once, not once per pair.  The
        # "program" family's mechanism ignores the policy entirely
        # (the policy only partitions outputs), so it is likewise
        # built once per (flowchart, domain) and shared across pairs.
        points_by_domain: Dict[int, List[Tuple]] = {}
        mechanism_by_domain: Dict[int, object] = {}
        for pair_index, (flowchart, policy, domain) in enumerate(pairs):
            pair_started = time.perf_counter()
            if batch_family == "program":
                mechanism = mechanism_by_domain.get(id(domain))
                if mechanism is None:
                    mechanism = build_mechanism(factory, flowchart, policy,
                                                domain, fuel,
                                                value_cap=value_cap,
                                                backend=mech_backend)
                    mechanism_by_domain[id(domain)] = mechanism
            else:
                mechanism = build_mechanism(factory, flowchart, policy,
                                            domain, fuel,
                                            value_cap=value_cap,
                                            backend=mech_backend)
            points = points_by_domain.get(id(domain))
            if points is None:
                points = list(domain)
                points_by_domain[id(domain)] = points
            pair_span = pair_span_for(pair_index)
            chunk_span = _obs.span_begin(
                "chunk", parent=pair_span.id if pair_span else None,
                pair=pair_index, chunk=0, points=len(points))
            span_id = chunk_span.id if chunk_span else None
            batch_eval = None
            if batch_family is not None:
                batch_eval = (lambda fc=flowchart, po=policy, pt=points,
                              nm=mechanism.name, sp=span_id:
                              _evaluate_chunk_batch(fc, batch_family, po, pt,
                                                    fuel, value_cap, nm,
                                                    span=sp))
            summary = quarantine_chunk(
                mechanism, policy, points, pair_index, 0,
                span=span_id, evaluate=batch_eval)
            if summary.backend is None:
                summary.backend = point_backend
            _obs.span_finish(chunk_span, accepts=summary.accepts)
            # One chunk per pair: folding a single summary through
            # merge_chunks rebuilds its class dict only to rediscover
            # its own conflict flag.
            sound, accepts = not summary.conflict, summary.accepts
            if _obs.active:
                _obs.inc("sweep.chunks_done")
                _obs.record_chunk_evaluated(len(points), summary.accepts)
            finish_pair(pair_index, sound, accepts, mechanism.name,
                        time.perf_counter() - pair_started,
                        backends={summary.backend: 1})
            if audit_ledger is not None:
                merge_segments(audit_ledger,
                               [audit_chunk_payloads(pair_index, 0, summary)])
        if audit_ledger is not None:
            audit_ledger.close()
        return finalize()

    # Chunked schedule: (pair, chunk) tasks, merged back in order.
    per_pair_chunks: List[List[List[Tuple]]] = []
    for flowchart, policy, domain in pairs:
        points = list(domain)
        size = chunk_size or max(64, -(-len(points) // (workers * 4)))
        per_pair_chunks.append(_chunk(points, size))

    tasks: List[Tuple[int, int, List[Tuple]]] = [
        (pair_index, chunk_index, points)
        for pair_index, chunks in enumerate(per_pair_chunks)
        for chunk_index, points in enumerate(chunks)]
    summaries: Dict[Tuple[int, int], ChunkSummary] = {}
    remaining_chunks: List[int] = [len(chunks) for chunks in per_pair_chunks]
    pair_seconds: List[float] = [0.0] * len(pairs)
    pair_started_wall = time.perf_counter()
    sweep_started_mono = time.monotonic()
    ckpt_writer: Optional[CheckpointWriter] = None

    def check_stop() -> Optional[str]:
        """The interruption reason, if a stop/deadline has fired."""
        if stop is not None:
            reason = stop()
            if reason:
                return reason if isinstance(reason, str) else "stop"
        if (deadline is not None
                and time.monotonic() - sweep_started_mono >= deadline):
            return "deadline"
        return None

    factory_name: Optional[str] = None
    if mode == "process":
        if not isinstance(mechanism_factory, str):
            names = {fn: name for name, fn in FACTORIES.items()}
            if factory not in names:
                raise ReproError(
                    "executor='process' needs a registered factory name "
                    f"(one of {sorted(FACTORIES)}); arbitrary callables "
                    "do not survive pickling")
            factory_name = names[factory]
        else:
            factory_name = mechanism_factory

    mechanisms: Dict[int, object] = {}
    # Chunk spans are supervised in the parent (opened at first submit,
    # closed when the summary lands), so a process-pool sweep — whose
    # workers run with observability off — still yields one rooted
    # sweep → pair → chunk tree in the parent's trace.
    chunk_spans: Dict[Tuple[int, int], _obs.Span] = {}

    def chunk_span_for(pair_index: int, chunk_index: int,
                       points: List[Tuple]) -> Optional[_obs.Span]:
        key = (pair_index, chunk_index)
        handle = chunk_spans.get(key)
        if handle is None and _obs.trace_active:
            pair_span = pair_span_for(pair_index)
            handle = _obs.span_begin(
                "chunk", parent=pair_span.id if pair_span else None,
                pair=pair_index, chunk=chunk_index, points=len(points))
            if handle is not None:
                chunk_spans[key] = handle
        return handle

    def mechanism_for(pair_index: int):
        mechanism = mechanisms.get(pair_index)
        if mechanism is None:
            flowchart, policy, domain = pairs[pair_index]
            mechanism = build_mechanism(factory, flowchart, policy, domain,
                                        fuel, value_cap=value_cap,
                                        backend=mech_backend)
            mechanisms[pair_index] = mechanism
        return mechanism

    def batch_evaluator(pair_index: int, points: List[Tuple],
                        span_id: Optional[str],
                        plan: Optional[chaos.FaultPlan] = None):
        flowchart, policy, _ = pairs[pair_index]
        return _evaluate_chunk_batch(flowchart, batch_family, policy, points,
                                     fuel, value_cap,
                                     mechanism_for(pair_index).name,
                                     span=span_id, plan=plan,
                                     lane_engine=lane_engine)

    def run_chunk_inline(pair_index: int, chunk_index: int,
                         points: List[Tuple]) -> ChunkSummary:
        # Inline execution is the last line of defence (the serial rung
        # and post-retry recovery), so it runs under quarantine: a
        # deterministic crash is bisected to its point(s) rather than
        # unwinding the sweep.
        _, policy, _ = pairs[pair_index]
        handle = chunk_span_for(pair_index, chunk_index, points)
        span_id = handle.id if handle else None
        batch_eval = None
        if batch_family is not None:
            batch_eval = lambda: batch_evaluator(pair_index, points, span_id)
        summary = quarantine_chunk(mechanism_for(pair_index), policy, points,
                                   pair_index, chunk_index, span=span_id,
                                   evaluate=batch_eval)
        if summary.backend is None:
            summary.backend = point_backend
        return summary

    def pair_backend_counts(pair_index: int) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for index in range(len(per_pair_chunks[pair_index])):
            label = summaries[(pair_index, index)].backend or "unknown"
            counts[label] = counts.get(label, 0) + 1
        return counts

    def on_chunk_done(task, summary: ChunkSummary,
                      elapsed: Optional[float],
                      span_id: Optional[str] = None) -> None:
        pair_index, chunk_index, points = task
        pair_seconds[pair_index] += elapsed or 0.0
        if _obs.active:
            _obs.inc("sweep.chunks_done")
            fields = {"pair": pair_index, "chunk": chunk_index,
                      "points": len(points), "accepts": summary.accepts}
            if elapsed is not None:
                fields["elapsed_s"] = round(elapsed, 6)
            if span_id is not None:
                fields["span"] = span_id
            _obs.emit("chunk_done", **fields)
        remaining_chunks[pair_index] -= 1
        if remaining_chunks[pair_index] == 0:
            ordered = [summaries[(pair_index, index)]
                       for index in range(len(per_pair_chunks[pair_index]))]
            sound, accepts = merge_chunks(ordered)
            finish_pair(pair_index, sound, accepts,
                        mechanism_for(pair_index).name,
                        pair_seconds[pair_index] or
                        (time.perf_counter() - pair_started_wall),
                        backends=pair_backend_counts(pair_index))

    def record_summary(task, summary: ChunkSummary,
                       elapsed: Optional[float]) -> None:
        key = (task[0], task[1])
        if key in summaries:  # late duplicate from an abandoned future
            return
        if summary.backend is None:
            summary.backend = point_backend
        summaries[key] = summary
        if ckpt_writer is not None:
            ckpt_writer.write_chunk(key[0], key[1], summary)
            if _obs.active:
                _obs.inc("sweep.checkpoints_written")
                _obs.emit("checkpoint_written", pair=key[0], chunk=key[1],
                          accepts=summary.accepts)
        # Point accounting happens here, in the parent, so process-pool
        # sweeps (whose workers carry their own disabled registries)
        # still report complete sweep.points_* counters.
        if _obs.active:
            _obs.record_chunk_evaluated(len(task[2]), summary.accepts)
        chunk_span = chunk_spans.pop(key, None)
        _obs.span_finish(chunk_span, accepts=summary.accepts)
        on_chunk_done(task, summary, elapsed,
                      span_id=chunk_span.id if chunk_span else None)

    def drive_pool(pool, submit_task, pool_tasks) -> None:
        """Supervise one pool: retries, timeouts, inline recovery.

        Raises :class:`_PoolBroken` when the pool itself can no longer
        run tasks (crashed worker process, failed spawn); per-chunk
        failures never propagate.
        """
        attempts: Dict[Tuple[int, int], int] = {
            (task[0], task[1]): 0 for task in pool_tasks}
        pending: Dict[object, Tuple[Tuple, float]] = {}

        def submit(task) -> None:
            key = (task[0], task[1])
            chunk_span_for(task[0], task[1], task[2])
            try:
                future = submit_task(task, attempts[key])
            except BrokenExecutor as error:
                raise _PoolBroken(f"pool rejected work: {error!r}") from error
            pending[future] = (task, time.monotonic())

        def retry_or_recover(task, reason: str) -> None:
            key = (task[0], task[1])
            attempts[key] += 1
            attempt = attempts[key]
            if _obs.active:
                chunk_span = chunk_spans.get(key)
                fields = {"pair": task[0], "chunk": task[1],
                          "attempt": attempt, "reason": reason}
                if chunk_span is not None:
                    fields["span"] = chunk_span.id
                _obs.emit("worker_retry", **fields)
            if attempt <= max_chunk_retries:
                if _obs.active:
                    _obs.inc("sweep.chunks_retried")
                submit(task)
                return
            # Bounded retries exhausted — recover in the parent so one
            # poisoned chunk cannot sink the sweep.
            if _obs.active:
                _obs.inc("sweep.chunks_failed")
            started = time.monotonic()
            summary = run_chunk_inline(*task)
            record_summary(task, summary, time.monotonic() - started)

        for task in pool_tasks:
            submit(task)
        poll = None
        if chunk_timeout is not None:
            poll = max(0.01, min(chunk_timeout / 4.0, 0.25))
        if stop is not None or deadline is not None:
            # Stop/deadline need a bounded wait to stay responsive even
            # without a chunk_timeout.
            poll = 0.25 if poll is None else min(poll, 0.25)
        while pending:
            finished, _ = wait(list(pending), timeout=poll,
                               return_when=FIRST_COMPLETED)
            now = time.monotonic()
            for future in finished:
                task, started = pending.pop(future)
                try:
                    pair_index, chunk_index, summary = future.result()
                except BrokenExecutor as error:
                    raise _PoolBroken(f"pool broke: {error!r}") from error
                except Exception as error:
                    retry_or_recover(task, f"worker failure: {error!r}")
                else:
                    record_summary((pair_index, chunk_index, task[2]),
                                   summary, now - started)
            if chunk_timeout is not None:
                for future, (task, started) in list(pending.items()):
                    if now - started >= chunk_timeout and not future.done():
                        future.cancel()
                        pending.pop(future)
                        retry_or_recover(
                            task, f"timeout after {chunk_timeout}s")
            reason = check_stop()
            if reason:
                # Drain: drop what has not started, let in-flight chunks
                # finish (bounded by chunk_timeout when set) and journal
                # them — an interrupted checkpoint keeps every chunk
                # that completed.
                for future in list(pending):
                    if future.cancel():
                        pending.pop(future)
                if pending:
                    drained, _ = wait(list(pending), timeout=chunk_timeout)
                    now = time.monotonic()
                    for future in drained:
                        task, started = pending.pop(future)
                        try:
                            pair_index, chunk_index, summary = (
                                future.result())
                        except Exception:
                            continue  # crashed mid-drain; resume re-runs it
                        record_summary((pair_index, chunk_index, task[2]),
                                       summary, now - started)
                raise _StopRequested(reason)

    # ----- checkpoint: open the journal, restore completed chunks -----
    if checkpoint is not None:
        descriptor = {
            "pairs": [[flowchart.name, policy.name, len(domain)]
                      for flowchart, policy, domain in pairs],
            "chunks": [[len(chunk) for chunk in chunks]
                       for chunks in per_pair_chunks],
            "factory": (mechanism_factory
                        if isinstance(mechanism_factory, str)
                        else getattr(factory, "__name__", "callable")),
            "fuel": fuel,
            "value_cap": value_cap,
        }
        fingerprint = config_fingerprint(descriptor)
        if resume:
            _, restored, record_count = load_checkpoint(checkpoint,
                                                        fingerprint)
            for (pair_index, chunk_index), summary in restored.items():
                if (pair_index >= len(pairs) or chunk_index
                        >= len(per_pair_chunks[pair_index])):
                    raise ReproError(
                        f"checkpoint {checkpoint!r} references chunk "
                        f"({pair_index}, {chunk_index}) outside this "
                        "sweep's layout")
                summaries[(pair_index, chunk_index)] = summary
                remaining_chunks[pair_index] -= 1
            if _obs.active:
                _obs.inc("sweep.chunks_restored", len(restored))
                _obs.emit("sweep_resumed", chunks_restored=len(restored))
            for pair_index in range(len(pairs)):
                if (remaining_chunks[pair_index] == 0
                        and pair_index not in results_by_pair):
                    ordered = [summaries[(pair_index, index)] for index
                               in range(len(per_pair_chunks[pair_index]))]
                    sound, accepts = merge_chunks(ordered)
                    finish_pair(pair_index, sound, accepts,
                                mechanism_for(pair_index).name, 0.0,
                                backends=pair_backend_counts(pair_index))
            ckpt_writer = CheckpointWriter(checkpoint, descriptor,
                                           fresh=False,
                                           start_seq=record_count)
        else:
            ckpt_writer = CheckpointWriter(checkpoint, descriptor,
                                           fresh=True)

    def injected_faults(pair_index: int, chunk_index: int,
                        attempt: int) -> Tuple[bool, float]:
        """Submit-time fault injection: legacy hooks ∪ the chaos plan."""
        inject = bool(_FAIL_INJECTOR and _FAIL_INJECTOR(
            pair_index, chunk_index, attempt))
        delay = (_DELAY_INJECTOR(pair_index, chunk_index, attempt)
                 if _DELAY_INJECTOR else 0.0)
        plan = chaos.current_plan()
        if plan is not None:
            decision = plan.decide(pair_index, chunk_index, attempt)
            inject = inject or decision.crash
            delay = max(delay, decision.delay)
        # Retry backoff rides the same worker-side sleep the injectors
        # use, so the parent supervision loop never blocks on it.
        delay += retry_backoff(pair_index, chunk_index, attempt,
                               seed=plan.seed if plan is not None else 0)
        return inject, delay

    if _obs.active:
        _obs.inc("sweep.chunks_scheduled", len(tasks) - len(summaries))

    try:
        ladder = _MODE_LADDER[mode]
        for rung, current_mode in enumerate(ladder):
            pool_tasks = [task for task in tasks
                          if (task[0], task[1]) not in summaries]
            if not pool_tasks:
                break
            try:
                if current_mode == "serial":
                    for task in pool_tasks:
                        reason = check_stop()
                        if reason:
                            raise _StopRequested(reason)
                        started = time.monotonic()
                        summary = run_chunk_inline(*task)
                        record_summary(task, summary,
                                       time.monotonic() - started)
                elif current_mode == "thread":
                    def run_task(task, inject_failure, delay):
                        pair_index, chunk_index, points = task
                        if delay:
                            time.sleep(delay)
                        if inject_failure:
                            raise _InjectedWorkerFailure(
                                f"injected failure for chunk "
                                f"({pair_index}, {chunk_index})")
                        _, policy, _ = pairs[pair_index]
                        chunk_span = chunk_spans.get(
                            (pair_index, chunk_index))
                        span_id = chunk_span.id if chunk_span else None
                        if batch_family is not None:
                            return pair_index, chunk_index, batch_evaluator(
                                pair_index, points, span_id)
                        return pair_index, chunk_index, evaluate_chunk(
                            mechanism_for(pair_index), policy, points,
                            span=span_id)

                    def submit_thread(task, attempt, pool_ref=None):
                        inject, delay = injected_faults(task[0], task[1],
                                                        attempt)
                        return thread_pool.submit(run_task, task, inject,
                                                  delay)

                    thread_pool = ThreadPoolExecutor(max_workers=workers)
                    try:
                        drive_pool(thread_pool, submit_thread, pool_tasks)
                    finally:
                        thread_pool.shutdown(wait=False,
                                             cancel_futures=True)
                else:  # process
                    def submit_process(task, attempt):
                        pair_index, chunk_index, points = task
                        flowchart, policy, domain = pairs[pair_index]
                        inject, delay = injected_faults(pair_index,
                                                        chunk_index, attempt)
                        chunk_span = chunk_spans.get(
                            (pair_index, chunk_index))
                        payload = pickle.dumps(
                            (pair_index, chunk_index, flowchart, policy,
                             domain, factory_name, points, fuel, value_cap,
                             inject, delay, chaos.current_plan(),
                             chunk_span.id if chunk_span else None,
                             batch_family, mech_backend, lane_engine))
                        return process_pool.submit(_run_pair_task, payload)

                    try:
                        process_pool = ProcessPoolExecutor(
                            max_workers=workers)
                    except OSError as error:
                        raise _PoolBroken(
                            f"cannot spawn process pool: {error!r}"
                        ) from error
                    try:
                        drive_pool(process_pool, submit_process, pool_tasks)
                    finally:
                        process_pool.shutdown(wait=False,
                                              cancel_futures=True)
                break
            except _PoolBroken as broken:
                next_mode = ladder[rung + 1]
                if _obs.active:
                    _obs.inc("sweep.pool_degraded")
                    _obs.emit("pool_degraded", from_mode=current_mode,
                              to_mode=next_mode, reason=str(broken))
    except _StopRequested as stopped:
        if ckpt_writer is not None:
            ckpt_writer.close()
        if audit_ledger is not None:
            # An interrupted sweep appends nothing: partial ledgers in
            # completion order would differ per executor.  The resumed
            # run re-derives every segment from its merged summaries.
            audit_ledger.close()
        if _obs.active:
            _obs.inc("sweep.interrupted")
            _obs.emit("sweep_interrupted", reason=stopped.reason,
                      chunks_done=len(summaries))
        _obs.span_finish(sweep_span, interrupted=stopped.reason)
        raise SweepInterruptedError(
            stopped.reason, len(summaries), len(tasks),
            checkpoint or "") from None

    if ckpt_writer is not None:
        ckpt_writer.close()
    if audit_ledger is not None:
        # Segments in (pair, chunk) order — the checkpoint journal's
        # merge discipline — regardless of the completion order the
        # pool delivered them in.
        merge_segments(
            audit_ledger,
            (audit_chunk_payloads(pair_index, chunk_index,
                                  summaries[(pair_index, chunk_index)])
             for pair_index, chunks in enumerate(per_pair_chunks)
             for chunk_index in range(len(chunks))
             if (pair_index, chunk_index) in summaries))
        audit_ledger.close()
    return finalize()
