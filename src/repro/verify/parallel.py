"""Parallel ∀-sweeps: the policy × grid product across a worker pool.

``soundness_sweep`` enumerates ``2^k`` allow-policies × ``3^k`` grid
points per flowchart — an embarrassingly parallel product.  This module
chunks that product across a :mod:`concurrent.futures` pool and merges
the per-chunk summaries back into the same
:class:`~repro.verify.enumerate.SweepResult` rows the serial sweep
produces.

Work unit and merge
-------------------
A task is one ``(flowchart, policy, chunk-of-grid-points)`` triple.
Each worker evaluates the mechanism **once per point** and returns a
:class:`ChunkSummary`: the acceptance count plus, per policy-class, the
first output seen and whether the chunk itself witnessed a conflict.
Merging chunks (in domain order) compares class representatives across
chunk boundaries, so the merged soundness verdict is exactly the serial
factorization verdict — the per-point outputs are shared between the
soundness check and the accepts count, never recomputed.

Fuel
----
The sweep's ``fuel`` budget reaches every mechanism factory (the
registered :data:`FACTORIES` take ``(flowchart, policy, domain,
fuel)``), and a run that exhausts it is recorded as the distinguished
:func:`~repro.verify.enumerate.fuel_notice` outcome instead of
unwinding the pool — so serial and parallel sweeps agree row-for-row
at *any* budget, and a sweep is a total function of its arguments.

Fault tolerance
---------------
Pooled chunks are supervised: a chunk that raises (or exceeds
``chunk_timeout`` seconds) is retried up to ``max_chunk_retries``
times (a ``worker_retry`` trace event per attempt); a chunk that keeps
failing is recovered by evaluating it inline in the parent.  If the
pool itself dies — a crashed worker process, a pool that cannot spawn
— the sweep degrades ``process → thread → serial``, emitting a
``pool_degraded`` event rather than a traceback, and re-schedules only
the chunks that had not yet completed.

Observability
-------------
When :mod:`repro.obs` is enabled the sweep emits ``sweep_start``,
``chunk_done``, ``worker_retry``, ``pool_degraded``, ``pair_done`` and
``sweep_end`` events and maintains the ``sweep.*`` counters and the
``sweep.pair_seconds`` histogram (see ``docs/OBSERVABILITY.md``).  The
optional ``progress`` callback fires as each (program, policy) pair
completes — the CLI's ``--progress`` flag rides it.

Executor selection
------------------
``executor="auto"`` picks:

- ``"serial"`` when the machine has one core or the product is small
  (pool overhead would dominate);
- ``"process"`` when the mechanism factory is a *registered* named
  factory (see :data:`FACTORIES`) so the task is picklable;
- ``"thread"`` otherwise (closures capture unpicklable state; threads
  share the mechanism object and its memo).

Any mode can be forced explicitly; ``"process"`` with an unpicklable
factory raises a clear error instead of a pickling traceback.
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import (FIRST_COMPLETED, BrokenExecutor,
                                ProcessPoolExecutor, ThreadPoolExecutor,
                                wait)
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.domains import ProductDomain
from ..core.errors import FuelExhaustedError, ReproError
from ..core.mechanism import is_violation
from ..core.policy import AllowPolicy
from ..flowchart.interpreter import DEFAULT_FUEL
from ..flowchart.program import Flowchart
from ..obs import runtime as _obs
from .enumerate import (SweepResult, all_allow_policies, build_mechanism,
                        default_grid, fuel_notice)

EXECUTORS = ("auto", "serial", "thread", "process")

#: Point-count threshold below which "auto" stays serial.
_AUTO_SERIAL_THRESHOLD = 4096

#: Fallback order when a pool dies under the sweep.
_MODE_LADDER = {
    "process": ("process", "thread", "serial"),
    "thread": ("thread", "serial"),
    "serial": ("serial",),
}

#: Test hook: ``(pair_index, chunk_index, attempt) -> bool`` deciding
#: whether a pooled chunk attempt should crash before evaluating — the
#: injected-worker-failure switch the retry tests flip.  Decided in the
#: parent at submit time (so it reaches process workers via the task
#: payload); inline recovery and plain serial execution never inject.
_FAIL_INJECTOR: Optional[Callable[[int, int, int], bool]] = None

#: Test hook: ``(pair_index, chunk_index, attempt) -> seconds`` of
#: artificial delay before a *thread-pool* chunk runs (for exercising
#: ``chunk_timeout``).  ``None`` or 0 means no delay.
_DELAY_INJECTOR: Optional[Callable[[int, int, int], float]] = None


class _InjectedWorkerFailure(RuntimeError):
    """Raised by the test-hook injection to simulate a crashed worker."""


class _PoolBroken(Exception):
    """Internal: the current pool can no longer make progress."""


class ChunkSummary:
    """What one worker learned from its slice of the domain."""

    __slots__ = ("accepts", "classes", "conflict")

    def __init__(self, accepts: int, classes: Dict, conflict: bool) -> None:
        self.accepts = accepts
        #: policy_value -> first mechanism output seen in this chunk
        self.classes = classes
        self.conflict = conflict


def evaluate_chunk(mechanism, policy, points: Iterable[Tuple],
                   span: Optional[str] = None) -> ChunkSummary:
    """Evaluate the mechanism once per point; summarise for the merge.

    Fuel exhaustion inside the mechanism is recorded as the
    distinguished :func:`~repro.verify.enumerate.fuel_notice` outcome
    (a violation notice carrying the budget), never an exception — the
    same totalisation the serial sweep applies.

    ``span`` is the enclosing chunk's span id (when tracing): each
    point gets a child span, and the mechanism's own leaf events
    (``run_end``, ``violation``, ``explanation``) attach to it via the
    thread-local span stack.
    """
    classes: Dict = {}
    accepts = 0
    conflict = False
    evaluated = 0
    for point in points:
        evaluated += 1
        point_span = _obs.span_begin("point", parent=span, push=True,
                                     point=list(point))
        try:
            try:
                output = mechanism(*point)
            except FuelExhaustedError as error:
                output = fuel_notice(error.fuel)
                if _obs.active:
                    _obs.record_fuel_exhausted(
                        getattr(mechanism, "name", "?"), error.fuel)
            accepted = not is_violation(output)
        finally:
            _obs.span_finish(point_span)
        if accepted:
            accepts += 1
        policy_value = policy(*point)
        if policy_value not in classes:
            classes[policy_value] = output
        elif not conflict and classes[policy_value] != output:
            conflict = True
    return ChunkSummary(accepts, classes, conflict)


def merge_chunks(summaries: Sequence[ChunkSummary]) -> Tuple[bool, int]:
    """Fold chunk summaries (in domain order) into (sound, accepts)."""
    classes: Dict = {}
    accepts = 0
    sound = True
    for summary in summaries:
        accepts += summary.accepts
        if summary.conflict:
            sound = False
        for policy_value, output in summary.classes.items():
            if policy_value not in classes:
                classes[policy_value] = output
            elif sound and classes[policy_value] != output:
                sound = False
    return sound, accepts


# ---------------------------------------------------------------------------
# Named factories (picklable work units for process pools)
# ---------------------------------------------------------------------------

def _factory_program(flowchart, policy, domain, fuel=DEFAULT_FUEL):
    from ..core.mechanism import program_as_mechanism
    from ..flowchart.interpreter import as_program

    return program_as_mechanism(as_program(flowchart, domain, fuel=fuel))


def _factory_surveillance(flowchart, policy, domain, fuel=DEFAULT_FUEL):
    # The literal Section 3 construction: instrument Q and execute the
    # instrumented flowchart (compiled backend, instrument+compile
    # caches).  Extensionally equal to the interpreter-level
    # ``surveillance_mechanism`` (bench E04 asserts this) but several
    # times faster in sweeps.
    from ..surveillance.instrument import instrumented_mechanism

    return instrumented_mechanism(flowchart, policy, domain, fuel=fuel)


def _factory_timed(flowchart, policy, domain, fuel=DEFAULT_FUEL):
    from ..surveillance import timed_surveillance_mechanism

    return timed_surveillance_mechanism(flowchart, policy, domain, fuel=fuel)


def _factory_highwater(flowchart, policy, domain, fuel=DEFAULT_FUEL):
    from ..surveillance import highwater_mechanism

    return highwater_mechanism(flowchart, policy, domain, fuel=fuel)


#: Mechanism families addressable by name (CLI, process pools, benches).
#: Every registered factory takes ``(flowchart, policy, domain, fuel)``.
FACTORIES: Dict[str, Callable] = {
    "program": _factory_program,
    "surveillance": _factory_surveillance,
    "timed": _factory_timed,
    "highwater": _factory_highwater,
}


def resolve_factory(factory) -> Callable:
    """A named family or a ``(flowchart, policy, domain[, fuel])`` callable."""
    if callable(factory):
        return factory
    try:
        return FACTORIES[factory]
    except (KeyError, TypeError):
        known = ", ".join(sorted(FACTORIES))
        raise ReproError(
            f"unknown mechanism factory {factory!r}; known: {known}"
        ) from None


def _chunk(points: List[Tuple], size: int) -> List[List[Tuple]]:
    return [points[start:start + size]
            for start in range(0, len(points), size)]


def _run_pair_task(payload: bytes) -> Tuple[int, int, ChunkSummary]:
    """Process-pool entry: rebuild the mechanism, evaluate one chunk.

    ``span_id`` is the parent-side chunk span: fork-started workers
    inherit the parent's attached sinks, so their point spans (and leaf
    events) land in the same trace and must link to the chunk that
    scheduled them.  Spawn-started workers have tracing off and ignore
    it.  The worker also drops any span stack inherited mid-fork — its
    events must not attribute to the parent's open spans.
    """
    (pair_index, chunk_index, flowchart, policy, domain,
     factory_name, points, fuel, inject_failure, span_id) = (
        pickle.loads(payload))
    _obs._stack().clear()
    if inject_failure:
        raise _InjectedWorkerFailure(
            f"injected failure for chunk ({pair_index}, {chunk_index})")
    mechanism = FACTORIES[factory_name](flowchart, policy, domain, fuel)
    return pair_index, chunk_index, evaluate_chunk(mechanism, policy, points,
                                                   span=span_id)


def _pick_executor(executor: str, factory, workers: int,
                   total_points: int) -> str:
    if executor not in EXECUTORS:
        raise ReproError(
            f"unknown executor {executor!r}; expected one of {EXECUTORS}")
    if executor != "auto":
        return executor
    if workers <= 1 or total_points < _AUTO_SERIAL_THRESHOLD:
        return "serial"
    if isinstance(factory, str) or (
            callable(factory) and factory in FACTORIES.values()):
        return "process"
    return "thread"


def parallel_soundness_sweep(
        flowcharts: Sequence[Flowchart],
        mechanism_factory,
        grid: Optional[Callable[[int], ProductDomain]] = None,
        fuel: int = DEFAULT_FUEL,
        executor: str = "auto",
        max_workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        policies: Optional[Callable[[int], List[AllowPolicy]]] = None,
        chunk_timeout: Optional[float] = None,
        max_chunk_retries: int = 2,
        progress: Optional[Callable[[int, int, SweepResult], None]] = None,
) -> List[SweepResult]:
    """The Theorem 3/3′ sweep, chunked across a worker pool.

    Produces exactly the rows of
    :func:`~repro.verify.enumerate.soundness_sweep` (same order, same
    verdicts, same acceptance counts); only the schedule differs.

    Parameters
    ----------
    mechanism_factory:
        Either a ``(flowchart, policy, domain[, fuel])`` callable or
        the name of a registered family in :data:`FACTORIES` (required
        for ``executor="process"``, where tasks must pickle).
    fuel:
        Step budget threaded to every mechanism construction; runs
        exceeding it yield the distinguished fuel notice (see module
        docstring), identically to the serial sweep.
    executor:
        ``"auto"``, ``"serial"``, ``"thread"``, or ``"process"``.
    chunk_size:
        Points per task; default splits each pair's domain into about
        four chunks per worker (minimum 64 points) so the pool stays
        busy without drowning in scheduling overhead.  Must be
        positive when given.
    policies:
        Policy enumeration per arity (default: every allow-policy,
        ``2^k`` of them).
    chunk_timeout:
        Seconds a pooled chunk may take before it is abandoned and
        retried (None disables — a genuinely hung worker can then
        stall the sweep).
    max_chunk_retries:
        Pool attempts per chunk beyond the first; a chunk that fails
        them all is recovered inline in the parent process.
    progress:
        ``progress(completed_pairs, total_pairs, result)`` called as
        each (program, policy) pair's verdict is merged.
    """
    if chunk_size is not None and chunk_size <= 0:
        raise ReproError(
            f"chunk_size must be a positive number of grid points; "
            f"got {chunk_size}")
    if max_workers is not None and max_workers <= 0:
        raise ReproError(
            f"max_workers must be a positive worker count; got {max_workers}")
    if chunk_timeout is not None and chunk_timeout <= 0:
        raise ReproError(
            f"chunk_timeout must be positive seconds; got {chunk_timeout}")
    if max_chunk_retries < 0:
        raise ReproError(
            f"max_chunk_retries must be >= 0; got {max_chunk_retries}")

    grid = grid or default_grid
    policies = policies or all_allow_policies
    factory = resolve_factory(mechanism_factory)
    workers = max_workers or os.cpu_count() or 1

    # Materialise the (flowchart, policy) pair list once, in sweep order.
    pairs: List[Tuple[Flowchart, AllowPolicy, ProductDomain]] = []
    for flowchart in flowcharts:
        domain = grid(flowchart.arity)
        for policy in policies(flowchart.arity):
            pairs.append((flowchart, policy, domain))
    total_points = sum(len(domain) for _, _, domain in pairs)

    mode = _pick_executor(executor, mechanism_factory, workers, total_points)

    sweep_started = time.perf_counter()
    # The sweep span roots the whole trace: every pair/chunk/point span
    # links (transitively) back to it, in whichever process it is
    # reconstructed.  Pushed, so parent-side leaf events attach to it.
    sweep_span = _obs.span_begin("sweep", push=True, executor=mode,
                                 pairs=len(pairs), points=total_points)
    if _obs.active:
        _obs.inc("sweep.count")
        _obs.emit("sweep_start", pairs=len(pairs), points=total_points,
                  executor=mode, workers=workers,
                  factory=str(mechanism_factory) if isinstance(
                      mechanism_factory, str)
                  else getattr(factory, "__name__", "callable"))

    results_by_pair: Dict[int, SweepResult] = {}
    completed_pairs = [0]
    # Pair spans are supervised across pool callbacks (not pushed):
    # opened lazily at the pair's first scheduled chunk, closed when its
    # verdict merges in finish_pair.
    pair_spans: Dict[int, _obs.Span] = {}

    def pair_span_for(pair_index: int) -> Optional[_obs.Span]:
        handle = pair_spans.get(pair_index)
        if handle is None and _obs.trace_active:
            flowchart, policy, _ = pairs[pair_index]
            handle = _obs.span_begin(
                "pair", parent=sweep_span.id if sweep_span else None,
                pair=pair_index, program=flowchart.name,
                policy=policy.name)
            if handle is not None:
                pair_spans[pair_index] = handle
        return handle

    def finish_pair(pair_index: int, sound: bool, accepts: int,
                    mechanism_name: str, pair_seconds: float) -> None:
        flowchart, policy, domain = pairs[pair_index]
        result = SweepResult(flowchart.name, policy.name, mechanism_name,
                             sound, accepts, len(domain))
        results_by_pair[pair_index] = result
        completed_pairs[0] += 1
        pair_span = pair_spans.pop(pair_index, None)
        if _obs.active:
            _obs.observe("sweep.pair_seconds", pair_seconds)
            fields = {"pair": pair_index, "program": flowchart.name,
                      "policy": policy.name, "sound": sound,
                      "accepts": accepts}
            if pair_span is not None:
                fields["span"] = pair_span.id
            _obs.emit("pair_done", **fields)
        _obs.span_finish(pair_span, sound=sound, accepts=accepts)
        if progress is not None:
            progress(completed_pairs[0], len(pairs), result)

    def finalize() -> List[SweepResult]:
        results = [results_by_pair[index] for index in range(len(pairs))]
        if _obs.active:
            elapsed = time.perf_counter() - sweep_started
            _obs.emit("sweep_end", pairs=len(pairs),
                      elapsed_s=round(elapsed, 6),
                      unsound=sum(1 for r in results if not r.sound))
        _obs.span_finish(sweep_span)
        return results

    if mode == "serial":
        if _obs.active:
            _obs.inc("sweep.chunks_scheduled", len(pairs))
        for pair_index, (flowchart, policy, domain) in enumerate(pairs):
            pair_started = time.perf_counter()
            mechanism = build_mechanism(factory, flowchart, policy, domain,
                                        fuel)
            points = list(domain)
            pair_span = pair_span_for(pair_index)
            chunk_span = _obs.span_begin(
                "chunk", parent=pair_span.id if pair_span else None,
                pair=pair_index, chunk=0, points=len(points))
            summary = evaluate_chunk(
                mechanism, policy, points,
                span=chunk_span.id if chunk_span else None)
            _obs.span_finish(chunk_span, accepts=summary.accepts)
            sound, accepts = merge_chunks([summary])
            if _obs.active:
                _obs.inc("sweep.chunks_done")
                _obs.record_chunk_evaluated(len(points), summary.accepts)
            finish_pair(pair_index, sound, accepts, mechanism.name,
                        time.perf_counter() - pair_started)
        return finalize()

    # Chunked schedule: (pair, chunk) tasks, merged back in order.
    per_pair_chunks: List[List[List[Tuple]]] = []
    for flowchart, policy, domain in pairs:
        points = list(domain)
        size = chunk_size or max(64, -(-len(points) // (workers * 4)))
        per_pair_chunks.append(_chunk(points, size))

    tasks: List[Tuple[int, int, List[Tuple]]] = [
        (pair_index, chunk_index, points)
        for pair_index, chunks in enumerate(per_pair_chunks)
        for chunk_index, points in enumerate(chunks)]
    summaries: Dict[Tuple[int, int], ChunkSummary] = {}
    remaining_chunks: List[int] = [len(chunks) for chunks in per_pair_chunks]
    pair_seconds: List[float] = [0.0] * len(pairs)
    pair_started_wall = time.perf_counter()

    factory_name: Optional[str] = None
    if mode == "process":
        if not isinstance(mechanism_factory, str):
            names = {fn: name for name, fn in FACTORIES.items()}
            if factory not in names:
                raise ReproError(
                    "executor='process' needs a registered factory name "
                    f"(one of {sorted(FACTORIES)}); arbitrary callables "
                    "do not survive pickling")
            factory_name = names[factory]
        else:
            factory_name = mechanism_factory

    mechanisms: Dict[int, object] = {}
    # Chunk spans are supervised in the parent (opened at first submit,
    # closed when the summary lands), so a process-pool sweep — whose
    # workers run with observability off — still yields one rooted
    # sweep → pair → chunk tree in the parent's trace.
    chunk_spans: Dict[Tuple[int, int], _obs.Span] = {}

    def chunk_span_for(pair_index: int, chunk_index: int,
                       points: List[Tuple]) -> Optional[_obs.Span]:
        key = (pair_index, chunk_index)
        handle = chunk_spans.get(key)
        if handle is None and _obs.trace_active:
            pair_span = pair_span_for(pair_index)
            handle = _obs.span_begin(
                "chunk", parent=pair_span.id if pair_span else None,
                pair=pair_index, chunk=chunk_index, points=len(points))
            if handle is not None:
                chunk_spans[key] = handle
        return handle

    def mechanism_for(pair_index: int):
        mechanism = mechanisms.get(pair_index)
        if mechanism is None:
            flowchart, policy, domain = pairs[pair_index]
            mechanism = build_mechanism(factory, flowchart, policy, domain,
                                        fuel)
            mechanisms[pair_index] = mechanism
        return mechanism

    def run_chunk_inline(pair_index: int, chunk_index: int,
                         points: List[Tuple]) -> ChunkSummary:
        _, policy, _ = pairs[pair_index]
        handle = chunk_span_for(pair_index, chunk_index, points)
        return evaluate_chunk(mechanism_for(pair_index), policy, points,
                              span=handle.id if handle else None)

    def on_chunk_done(task, summary: ChunkSummary,
                      elapsed: Optional[float],
                      span_id: Optional[str] = None) -> None:
        pair_index, chunk_index, points = task
        pair_seconds[pair_index] += elapsed or 0.0
        if _obs.active:
            _obs.inc("sweep.chunks_done")
            fields = {"pair": pair_index, "chunk": chunk_index,
                      "points": len(points), "accepts": summary.accepts}
            if elapsed is not None:
                fields["elapsed_s"] = round(elapsed, 6)
            if span_id is not None:
                fields["span"] = span_id
            _obs.emit("chunk_done", **fields)
        remaining_chunks[pair_index] -= 1
        if remaining_chunks[pair_index] == 0:
            ordered = [summaries[(pair_index, index)]
                       for index in range(len(per_pair_chunks[pair_index]))]
            sound, accepts = merge_chunks(ordered)
            finish_pair(pair_index, sound, accepts,
                        mechanism_for(pair_index).name,
                        pair_seconds[pair_index] or
                        (time.perf_counter() - pair_started_wall))

    def record_summary(task, summary: ChunkSummary,
                       elapsed: Optional[float]) -> None:
        key = (task[0], task[1])
        if key in summaries:  # late duplicate from an abandoned future
            return
        summaries[key] = summary
        # Point accounting happens here, in the parent, so process-pool
        # sweeps (whose workers carry their own disabled registries)
        # still report complete sweep.points_* counters.
        if _obs.active:
            _obs.record_chunk_evaluated(len(task[2]), summary.accepts)
        chunk_span = chunk_spans.pop(key, None)
        _obs.span_finish(chunk_span, accepts=summary.accepts)
        on_chunk_done(task, summary, elapsed,
                      span_id=chunk_span.id if chunk_span else None)

    def drive_pool(pool, submit_task, pool_tasks) -> None:
        """Supervise one pool: retries, timeouts, inline recovery.

        Raises :class:`_PoolBroken` when the pool itself can no longer
        run tasks (crashed worker process, failed spawn); per-chunk
        failures never propagate.
        """
        attempts: Dict[Tuple[int, int], int] = {
            (task[0], task[1]): 0 for task in pool_tasks}
        pending: Dict[object, Tuple[Tuple, float]] = {}

        def submit(task) -> None:
            key = (task[0], task[1])
            chunk_span_for(task[0], task[1], task[2])
            try:
                future = submit_task(task, attempts[key])
            except BrokenExecutor as error:
                raise _PoolBroken(f"pool rejected work: {error!r}") from error
            pending[future] = (task, time.monotonic())

        def retry_or_recover(task, reason: str) -> None:
            key = (task[0], task[1])
            attempts[key] += 1
            attempt = attempts[key]
            if _obs.active:
                chunk_span = chunk_spans.get(key)
                fields = {"pair": task[0], "chunk": task[1],
                          "attempt": attempt, "reason": reason}
                if chunk_span is not None:
                    fields["span"] = chunk_span.id
                _obs.emit("worker_retry", **fields)
            if attempt <= max_chunk_retries:
                if _obs.active:
                    _obs.inc("sweep.chunks_retried")
                submit(task)
                return
            # Bounded retries exhausted — recover in the parent so one
            # poisoned chunk cannot sink the sweep.
            if _obs.active:
                _obs.inc("sweep.chunks_failed")
            started = time.monotonic()
            summary = run_chunk_inline(*task)
            record_summary(task, summary, time.monotonic() - started)

        for task in pool_tasks:
            submit(task)
        poll = None
        if chunk_timeout is not None:
            poll = max(0.01, min(chunk_timeout / 4.0, 0.25))
        while pending:
            finished, _ = wait(list(pending), timeout=poll,
                               return_when=FIRST_COMPLETED)
            now = time.monotonic()
            for future in finished:
                task, started = pending.pop(future)
                try:
                    pair_index, chunk_index, summary = future.result()
                except BrokenExecutor as error:
                    raise _PoolBroken(f"pool broke: {error!r}") from error
                except Exception as error:
                    retry_or_recover(task, f"worker failure: {error!r}")
                else:
                    record_summary((pair_index, chunk_index, task[2]),
                                   summary, now - started)
            if chunk_timeout is not None:
                for future, (task, started) in list(pending.items()):
                    if now - started >= chunk_timeout and not future.done():
                        future.cancel()
                        pending.pop(future)
                        retry_or_recover(
                            task, f"timeout after {chunk_timeout}s")

    if _obs.active:
        _obs.inc("sweep.chunks_scheduled", len(tasks))

    ladder = _MODE_LADDER[mode]
    for rung, current_mode in enumerate(ladder):
        pool_tasks = [task for task in tasks
                      if (task[0], task[1]) not in summaries]
        if not pool_tasks:
            break
        try:
            if current_mode == "serial":
                for task in pool_tasks:
                    started = time.monotonic()
                    summary = run_chunk_inline(*task)
                    record_summary(task, summary,
                                   time.monotonic() - started)
            elif current_mode == "thread":
                def run_task(task, inject_failure, delay):
                    pair_index, chunk_index, points = task
                    if delay:
                        time.sleep(delay)
                    if inject_failure:
                        raise _InjectedWorkerFailure(
                            f"injected failure for chunk "
                            f"({pair_index}, {chunk_index})")
                    _, policy, _ = pairs[pair_index]
                    chunk_span = chunk_spans.get((pair_index, chunk_index))
                    return pair_index, chunk_index, evaluate_chunk(
                        mechanism_for(pair_index), policy, points,
                        span=chunk_span.id if chunk_span else None)

                def submit_thread(task, attempt, pool_ref=None):
                    inject = bool(_FAIL_INJECTOR and _FAIL_INJECTOR(
                        task[0], task[1], attempt))
                    delay = (_DELAY_INJECTOR(task[0], task[1], attempt)
                             if _DELAY_INJECTOR else 0.0)
                    return thread_pool.submit(run_task, task, inject, delay)

                thread_pool = ThreadPoolExecutor(max_workers=workers)
                try:
                    drive_pool(thread_pool, submit_thread, pool_tasks)
                finally:
                    thread_pool.shutdown(wait=False, cancel_futures=True)
            else:  # process
                def submit_process(task, attempt):
                    pair_index, chunk_index, points = task
                    flowchart, policy, domain = pairs[pair_index]
                    inject = bool(_FAIL_INJECTOR and _FAIL_INJECTOR(
                        pair_index, chunk_index, attempt))
                    chunk_span = chunk_spans.get((pair_index, chunk_index))
                    payload = pickle.dumps(
                        (pair_index, chunk_index, flowchart, policy, domain,
                         factory_name, points, fuel, inject,
                         chunk_span.id if chunk_span else None))
                    return process_pool.submit(_run_pair_task, payload)

                try:
                    process_pool = ProcessPoolExecutor(max_workers=workers)
                except OSError as error:
                    raise _PoolBroken(
                        f"cannot spawn process pool: {error!r}") from error
                try:
                    drive_pool(process_pool, submit_process, pool_tasks)
                finally:
                    process_pool.shutdown(wait=False, cancel_futures=True)
            break
        except _PoolBroken as broken:
            next_mode = ladder[rung + 1]
            if _obs.active:
                _obs.inc("sweep.pool_degraded")
                _obs.emit("pool_degraded", from_mode=current_mode,
                          to_mode=next_mode, reason=str(broken))

    return finalize()
