"""Parallel ∀-sweeps: the policy × grid product across a worker pool.

``soundness_sweep`` enumerates ``2^k`` allow-policies × ``3^k`` grid
points per flowchart — an embarrassingly parallel product.  This module
chunks that product across a :mod:`concurrent.futures` pool and merges
the per-chunk summaries back into the same
:class:`~repro.verify.enumerate.SweepResult` rows the serial sweep
produces.

Work unit and merge
-------------------
A task is one ``(flowchart, policy, chunk-of-grid-points)`` triple.
Each worker evaluates the mechanism **once per point** and returns a
:class:`ChunkSummary`: the acceptance count plus, per policy-class, the
first output seen and whether the chunk itself witnessed a conflict.
Merging chunks (in domain order) compares class representatives across
chunk boundaries, so the merged soundness verdict is exactly the serial
factorization verdict — the per-point outputs are shared between the
soundness check and the accepts count, never recomputed.

Executor selection
------------------
``executor="auto"`` picks:

- ``"serial"`` when the machine has one core or the product is small
  (pool overhead would dominate);
- ``"process"`` when the mechanism factory is a *registered* named
  factory (see :data:`FACTORIES`) so the task is picklable;
- ``"thread"`` otherwise (closures capture unpicklable state; threads
  share the mechanism object and its memo).

Any mode can be forced explicitly; ``"process"`` with an unpicklable
factory raises a clear error instead of a pickling traceback.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.domains import ProductDomain
from ..core.errors import ReproError
from ..core.mechanism import is_violation
from ..core.policy import AllowPolicy
from ..flowchart.interpreter import DEFAULT_FUEL
from ..flowchart.program import Flowchart
from .enumerate import SweepResult, all_allow_policies, default_grid

EXECUTORS = ("auto", "serial", "thread", "process")

#: Point-count threshold below which "auto" stays serial.
_AUTO_SERIAL_THRESHOLD = 4096


class ChunkSummary:
    """What one worker learned from its slice of the domain."""

    __slots__ = ("accepts", "classes", "conflict")

    def __init__(self, accepts: int, classes: Dict, conflict: bool) -> None:
        self.accepts = accepts
        #: policy_value -> first mechanism output seen in this chunk
        self.classes = classes
        self.conflict = conflict


def evaluate_chunk(mechanism, policy, points: Iterable[Tuple]) -> ChunkSummary:
    """Evaluate the mechanism once per point; summarise for the merge."""
    classes: Dict = {}
    accepts = 0
    conflict = False
    for point in points:
        output = mechanism(*point)
        if not is_violation(output):
            accepts += 1
        policy_value = policy(*point)
        if policy_value not in classes:
            classes[policy_value] = output
        elif not conflict and classes[policy_value] != output:
            conflict = True
    return ChunkSummary(accepts, classes, conflict)


def merge_chunks(summaries: Sequence[ChunkSummary]) -> Tuple[bool, int]:
    """Fold chunk summaries (in domain order) into (sound, accepts)."""
    classes: Dict = {}
    accepts = 0
    sound = True
    for summary in summaries:
        accepts += summary.accepts
        if summary.conflict:
            sound = False
        for policy_value, output in summary.classes.items():
            if policy_value not in classes:
                classes[policy_value] = output
            elif sound and classes[policy_value] != output:
                sound = False
    return sound, accepts


# ---------------------------------------------------------------------------
# Named factories (picklable work units for process pools)
# ---------------------------------------------------------------------------

def _factory_program(flowchart, policy, domain):
    from ..core.mechanism import program_as_mechanism
    from ..flowchart.interpreter import as_program

    return program_as_mechanism(as_program(flowchart, domain))


def _factory_surveillance(flowchart, policy, domain):
    # The literal Section 3 construction: instrument Q and execute the
    # instrumented flowchart (compiled backend, instrument+compile
    # caches).  Extensionally equal to the interpreter-level
    # ``surveillance_mechanism`` (bench E04 asserts this) but several
    # times faster in sweeps.
    from ..surveillance.instrument import instrumented_mechanism

    return instrumented_mechanism(flowchart, policy, domain)


def _factory_timed(flowchart, policy, domain):
    from ..surveillance import timed_surveillance_mechanism

    return timed_surveillance_mechanism(flowchart, policy, domain)


def _factory_highwater(flowchart, policy, domain):
    from ..surveillance import highwater_mechanism

    return highwater_mechanism(flowchart, policy, domain)


#: Mechanism families addressable by name (CLI, process pools, benches).
FACTORIES: Dict[str, Callable] = {
    "program": _factory_program,
    "surveillance": _factory_surveillance,
    "timed": _factory_timed,
    "highwater": _factory_highwater,
}


def resolve_factory(factory) -> Callable:
    """A named family or a ``(flowchart, policy, domain)`` callable."""
    if callable(factory):
        return factory
    try:
        return FACTORIES[factory]
    except (KeyError, TypeError):
        known = ", ".join(sorted(FACTORIES))
        raise ReproError(
            f"unknown mechanism factory {factory!r}; known: {known}"
        ) from None


def _chunk(points: List[Tuple], size: int) -> List[List[Tuple]]:
    return [points[start:start + size]
            for start in range(0, len(points), size)]


def _run_pair_task(payload: bytes) -> Tuple[int, int, ChunkSummary]:
    """Process-pool entry: rebuild the mechanism, evaluate one chunk."""
    (pair_index, chunk_index, flowchart, policy, domain,
     factory_name, points) = pickle.loads(payload)
    mechanism = FACTORIES[factory_name](flowchart, policy, domain)
    return pair_index, chunk_index, evaluate_chunk(mechanism, policy, points)


def _pick_executor(executor: str, factory, workers: int,
                   total_points: int) -> str:
    if executor not in EXECUTORS:
        raise ReproError(
            f"unknown executor {executor!r}; expected one of {EXECUTORS}")
    if executor != "auto":
        return executor
    if workers <= 1 or total_points < _AUTO_SERIAL_THRESHOLD:
        return "serial"
    if isinstance(factory, str) or (
            callable(factory) and factory in FACTORIES.values()):
        return "process"
    return "thread"


def parallel_soundness_sweep(
        flowcharts: Sequence[Flowchart],
        mechanism_factory,
        grid: Optional[Callable[[int], ProductDomain]] = None,
        fuel: int = DEFAULT_FUEL,
        executor: str = "auto",
        max_workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        policies: Optional[Callable[[int], List[AllowPolicy]]] = None,
) -> List[SweepResult]:
    """The Theorem 3/3′ sweep, chunked across a worker pool.

    Produces exactly the rows of
    :func:`~repro.verify.enumerate.soundness_sweep` (same order, same
    verdicts, same acceptance counts); only the schedule differs.

    Parameters
    ----------
    mechanism_factory:
        Either a ``(flowchart, policy, domain)`` callable or the name
        of a registered family in :data:`FACTORIES` (required for
        ``executor="process"``, where tasks must pickle).
    executor:
        ``"auto"``, ``"serial"``, ``"thread"``, or ``"process"``.
    chunk_size:
        Points per task; default splits each pair's domain into about
        four chunks per worker (minimum 64 points) so the pool stays
        busy without drowning in scheduling overhead.
    policies:
        Policy enumeration per arity (default: every allow-policy,
        ``2^k`` of them).
    """
    grid = grid or default_grid
    policies = policies or all_allow_policies
    factory = resolve_factory(mechanism_factory)
    workers = max_workers or os.cpu_count() or 1

    # Materialise the (flowchart, policy) pair list once, in sweep order.
    pairs: List[Tuple[Flowchart, AllowPolicy, ProductDomain]] = []
    for flowchart in flowcharts:
        domain = grid(flowchart.arity)
        for policy in policies(flowchart.arity):
            pairs.append((flowchart, policy, domain))
    total_points = sum(len(domain) for _, _, domain in pairs)

    mode = _pick_executor(executor, mechanism_factory, workers, total_points)

    if mode == "serial":
        results = []
        for flowchart, policy, domain in pairs:
            mechanism = factory(flowchart, policy, domain)
            summary = evaluate_chunk(mechanism, policy, domain)
            sound, accepts = merge_chunks([summary])
            results.append(SweepResult(
                flowchart.name, policy.name, mechanism.name,
                sound, accepts, len(domain)))
        return results

    # Chunked schedule: (pair, chunk) tasks, merged back in order.
    per_pair_chunks: List[List[List[Tuple]]] = []
    for flowchart, policy, domain in pairs:
        points = list(domain)
        size = chunk_size or max(64, -(-len(points) // (workers * 4)))
        per_pair_chunks.append(_chunk(points, size))

    summaries: List[List[Optional[ChunkSummary]]] = [
        [None] * len(chunks) for chunks in per_pair_chunks]

    if mode == "process":
        if not isinstance(mechanism_factory, str):
            names = {fn: name for name, fn in FACTORIES.items()}
            if factory not in names:
                raise ReproError(
                    "executor='process' needs a registered factory name "
                    f"(one of {sorted(FACTORIES)}); arbitrary callables "
                    "do not survive pickling")
            factory_name = names[factory]
        else:
            factory_name = mechanism_factory
        payloads = []
        for pair_index, ((flowchart, policy, domain), chunks) in enumerate(
                zip(pairs, per_pair_chunks)):
            for chunk_index, points in enumerate(chunks):
                payloads.append(pickle.dumps(
                    (pair_index, chunk_index, flowchart, policy, domain,
                     factory_name, points)))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            for pair_index, chunk_index, summary in pool.map(
                    _run_pair_task, payloads):
                summaries[pair_index][chunk_index] = summary
    else:  # thread
        mechanisms = [factory(flowchart, policy, domain)
                      for flowchart, policy, domain in pairs]

        def run_task(task):
            pair_index, chunk_index, points = task
            _, policy, _ = pairs[pair_index]
            return pair_index, chunk_index, evaluate_chunk(
                mechanisms[pair_index], policy, points)

        tasks = [(pair_index, chunk_index, points)
                 for pair_index, chunks in enumerate(per_pair_chunks)
                 for chunk_index, points in enumerate(chunks)]
        with ThreadPoolExecutor(max_workers=workers) as pool:
            for pair_index, chunk_index, summary in pool.map(run_task, tasks):
                summaries[pair_index][chunk_index] = summary

    results = []
    for pair_index, (flowchart, policy, domain) in enumerate(pairs):
        sound, accepts = merge_chunks(summaries[pair_index])
        if mode == "thread":
            mechanism_name = mechanisms[pair_index].name
        else:
            # Process mode: rebuild in-process just for the display name
            # — constructors are lightweight (no evaluation happens).
            mechanism_name = factory(flowchart, policy, domain).name
        results.append(SweepResult(
            flowchart.name, policy.name, mechanism_name,
            sound, accepts, len(domain)))
    return results
