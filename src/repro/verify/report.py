"""Plain-text experiment tables shared by the benchmark harness.

Every bench prints its reproduced "table/figure" through
:class:`Table`, so EXPERIMENTS.md rows and bench output line up
column-for-column.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def _render_cell(value) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


class Table:
    """A fixed-column text table with aligned rendering."""

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add_row(self, *values, **named) -> None:
        """Add a row positionally or by column name (not both)."""
        if values and named:
            raise ValueError("pass positional values or named values, not both")
        if named:
            values = tuple(named[column] for column in self.columns)
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells for {len(self.columns)} columns")
        self.rows.append([_render_cell(value) for value in values])

    def add_dict(self, row: dict) -> None:
        """Add a row from a dict keyed by column names."""
        self.add_row(*(row[column] for column in self.columns))

    def to_csv(self) -> str:
        """The table as CSV (header + rows), for machine consumption."""
        import csv
        import io

        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(self.columns)
        writer.writerows(self.rows)
        return buffer.getvalue()

    def render(self) -> str:
        widths = [len(column) for column in self.columns]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        header = " | ".join(column.ljust(width)
                            for column, width in zip(self.columns, widths))
        rule = "-+-".join("-" * width for width in widths)
        lines = [self.title, header, rule]
        for row in self.rows:
            lines.append(" | ".join(cell.ljust(width)
                                    for cell, width in zip(row, widths)))
        return "\n".join(lines)

    def show(self) -> None:
        print()
        print(self.render())


def banner(text: str) -> None:
    """Print a section banner (used between bench phases)."""
    print()
    print("=" * max(20, len(text)))
    print(text)
    print("=" * max(20, len(text)))
