"""Deterministic chaos: seeded fault plans for sweep hardening tests.

The retry/degradation machinery in :mod:`repro.verify.parallel` grew up
against two ad-hoc test hooks (``_FAIL_INJECTOR``, ``_DELAY_INJECTOR``).
This module generalises them into a first-class *fault plan*: a seeded,
deterministic schedule of injected faults that the sweep consults at
submit time (worker crash, delay, lost chunk) and per grid point
(poison → ``MemoryError``), so robustness tests and the CI chaos job
can describe a whole failure scenario as one picklable value.

Determinism is the point.  Every decision is a pure function of
``(seed, pair, chunk, attempt)`` — hashed, not drawn from a shared RNG —
so the same plan produces the same faults whether chunks are submitted
from one thread or sixteen, and a process-pool worker (which receives
the plan inside its task payload) reaches the same verdicts as the
parent.  A poisoned *point* crashes every time it is evaluated, in any
executor, which is exactly the behaviour the quarantine bisection needs
to isolate it.

Fault kinds
-----------
``crash``
    The chunk attempt raises before evaluating (a simulated worker
    crash); the sweep's retry ladder handles it.
``delay``
    The chunk attempt sleeps ``delay_seconds`` first (for exercising
    ``chunk_timeout`` and checkpoint-mid-flight scenarios).
``lost``
    The chunk attempt sleeps ``lost_seconds`` — long enough that only a
    ``chunk_timeout`` recovers it (a simulated lost/hung worker).
``poison``
    Named grid points raise :class:`MemoryError` when evaluated —
    deterministic OOM-style crashes the quarantine bisection must
    totalize into ``Λ!crash[MemoryError]`` notices.
"""

from __future__ import annotations

import hashlib
from typing import Dict, FrozenSet, Optional, Sequence, Tuple

from ..core.errors import ReproError

__all__ = ["FaultDecision", "FaultPlan", "clear", "current_plan", "install"]


def _roll(seed: int, *key) -> float:
    """A deterministic uniform draw in [0, 1) keyed by (seed, *key)."""
    digest = hashlib.sha256(
        ":".join([str(seed)] + [str(part) for part in key]).encode()
    ).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


class FaultDecision:
    """What a fault plan injects into one chunk attempt."""

    __slots__ = ("crash", "delay")

    def __init__(self, crash: bool = False, delay: float = 0.0) -> None:
        self.crash = crash
        self.delay = delay

    def __repr__(self) -> str:
        return f"FaultDecision(crash={self.crash}, delay={self.delay})"


class FaultPlan:
    """A seeded, deterministic schedule of injected sweep faults.

    ``crash``/``delay``/``lost`` are per-attempt probabilities in
    [0, 1]; ``poison_points`` is a collection of grid points (tuples)
    that raise :class:`MemoryError` whenever evaluated.  Instances are
    immutable plain data — picklable by construction, so they ride task
    payloads into process-pool workers unchanged.
    """

    __slots__ = ("seed", "crash", "delay", "lost", "delay_seconds",
                 "lost_seconds", "poison_points")

    def __init__(self, seed: int = 0, crash: float = 0.0, delay: float = 0.0,
                 lost: float = 0.0, delay_seconds: float = 0.05,
                 lost_seconds: float = 5.0,
                 poison_points: Sequence[Tuple] = ()) -> None:
        for name, rate in (("crash", crash), ("delay", delay),
                           ("lost", lost)):
            if not 0.0 <= rate <= 1.0:
                raise ReproError(
                    f"chaos {name} rate must be in [0, 1]; got {rate}")
        if delay_seconds < 0 or lost_seconds < 0:
            raise ReproError("chaos delay/lost durations must be >= 0")
        self.seed = int(seed)
        self.crash = float(crash)
        self.delay = float(delay)
        self.lost = float(lost)
        self.delay_seconds = float(delay_seconds)
        self.lost_seconds = float(lost_seconds)
        self.poison_points: FrozenSet[Tuple] = frozenset(
            tuple(int(part) for part in point) for point in poison_points)

    def decide(self, pair: int, chunk: int, attempt: int) -> FaultDecision:
        """The injected fault (if any) for one chunk attempt.

        Pure in ``(seed, pair, chunk, attempt)``: resubmitting the same
        attempt from any thread or process yields the same decision.
        Priority: crash beats lost beats delay (one fault per attempt).
        """
        if self.crash and _roll(self.seed, "crash", pair, chunk,
                                attempt) < self.crash:
            return FaultDecision(crash=True)
        if self.lost and _roll(self.seed, "lost", pair, chunk,
                               attempt) < self.lost:
            return FaultDecision(delay=self.lost_seconds)
        if self.delay and _roll(self.seed, "delay", pair, chunk,
                                attempt) < self.delay:
            return FaultDecision(delay=self.delay_seconds)
        return FaultDecision()

    def poisons(self, point: Sequence[int]) -> bool:
        """Whether a grid point is scheduled to crash when evaluated."""
        return bool(self.poison_points) and tuple(point) in self.poison_points

    def __reduce__(self):
        return (_rebuild_plan, (self.seed, self.crash, self.delay, self.lost,
                                self.delay_seconds, self.lost_seconds,
                                tuple(sorted(self.poison_points))))

    def __repr__(self) -> str:
        return (f"FaultPlan(seed={self.seed}, crash={self.crash}, "
                f"delay={self.delay}, lost={self.lost}, "
                f"poison={sorted(self.poison_points)})")

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Build a plan from a CLI spec string.

        Comma-separated ``key=value`` fields: ``seed``, ``crash``,
        ``delay``, ``lost`` (rates), ``delay_s``/``lost_s`` (seconds),
        and ``poison`` — grid points joined by ``+`` with coordinates
        joined by ``:``, e.g. ``poison=1:2+0:0``.

        >>> FaultPlan.parse("seed=3,crash=0.2,poison=1:2").crash
        0.2
        """
        fields: Dict[str, str] = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ReproError(
                    f"chaos spec field {part!r} is not key=value")
            key, _, value = part.partition("=")
            fields[key.strip()] = value.strip()
        known = {"seed", "crash", "delay", "lost", "delay_s", "lost_s",
                 "poison"}
        unknown = set(fields) - known
        if unknown:
            raise ReproError(
                f"unknown chaos spec fields {sorted(unknown)}; "
                f"known: {sorted(known)}")
        try:
            poison = tuple(
                tuple(int(coord) for coord in point.split(":"))
                for point in fields.get("poison", "").split("+") if point)
            return cls(
                seed=int(fields.get("seed", "0")),
                crash=float(fields.get("crash", "0")),
                delay=float(fields.get("delay", "0")),
                lost=float(fields.get("lost", "0")),
                delay_seconds=float(fields.get("delay_s", "0.05")),
                lost_seconds=float(fields.get("lost_s", "5.0")),
                poison_points=poison,
            )
        except ValueError as error:
            raise ReproError(f"bad chaos spec {spec!r}: {error}") from None


def _rebuild_plan(seed, crash, delay, lost, delay_seconds, lost_seconds,
                  poison_points):
    return FaultPlan(seed=seed, crash=crash, delay=delay, lost=lost,
                     delay_seconds=delay_seconds, lost_seconds=lost_seconds,
                     poison_points=poison_points)


#: The process-wide installed plan (None = no chaos).
_PLAN: Optional[FaultPlan] = None


def install(plan: Optional[FaultPlan]) -> None:
    """Install (or, with None, clear) the process-wide fault plan."""
    global _PLAN
    _PLAN = plan


def clear() -> None:
    """Remove any installed fault plan."""
    install(None)


def current_plan() -> Optional[FaultPlan]:
    """The installed fault plan, or None when chaos is off."""
    return _PLAN
