"""Deterministic chaos: seeded fault plans for sweep hardening tests.

The retry/degradation machinery in :mod:`repro.verify.parallel` grew up
against two ad-hoc test hooks (``_FAIL_INJECTOR``, ``_DELAY_INJECTOR``).
This module generalises them into a first-class *fault plan*: a seeded,
deterministic schedule of injected faults that the sweep consults at
submit time (worker crash, delay, lost chunk) and per grid point
(poison → ``MemoryError``), so robustness tests and the CI chaos job
can describe a whole failure scenario as one picklable value.

Determinism is the point.  Every decision is a pure function of
``(seed, pair, chunk, attempt)`` — hashed, not drawn from a shared RNG —
so the same plan produces the same faults whether chunks are submitted
from one thread or sixteen, and a process-pool worker (which receives
the plan inside its task payload) reaches the same verdicts as the
parent.  A poisoned *point* crashes every time it is evaluated, in any
executor, which is exactly the behaviour the quarantine bisection needs
to isolate it.

Fault kinds
-----------
``crash``
    The chunk attempt raises before evaluating (a simulated worker
    crash); the sweep's retry ladder handles it.
``delay``
    The chunk attempt sleeps ``delay_seconds`` first (for exercising
    ``chunk_timeout`` and checkpoint-mid-flight scenarios).
``lost``
    The chunk attempt sleeps ``lost_seconds`` — long enough that only a
    ``chunk_timeout`` recovers it (a simulated lost/hung worker).
``poison``
    Named grid points raise :class:`MemoryError` when evaluated —
    deterministic OOM-style crashes the quarantine bisection must
    totalize into ``Λ!crash[MemoryError]`` notices.

Message faults (the distributed runtime)
----------------------------------------
:mod:`repro.dist` consults the same plan per message *attempt* via
:meth:`FaultPlan.decide_message` — pure in ``(seed, channel, seq,
attempt)``, so a retransmitted envelope redraws its fate but a replayed
run redraws identically.  Priority: corrupt beats drop beats dup beats
delay (one fault per attempt).

``corrupt``
    The envelope's payload checksum is damaged in flight; the receiver
    must totalize it as a ``Λ!msg[corrupt:CH#SEQ]`` notice, never a
    silent wrong answer.
``drop``
    The envelope vanishes; at-least-once retransmission recovers it.
``dup``
    The envelope is delivered twice; ``(node, seq)`` dedup absorbs it.
``delay`` (``mdelay``)
    Delivery is postponed ``msg_delay_seconds`` — enough to reorder it
    behind later traffic, which seq-ordered consumption absorbs.
``kill``
    :meth:`FaultPlan.decide_kill` schedules a node crash after it
    accepts its *seq*-th envelope — fired only on incarnation 0 so
    checkpoint recovery always progresses.
"""

from __future__ import annotations

import hashlib
from typing import Dict, FrozenSet, Optional, Sequence, Tuple

from ..core.errors import ReproError

__all__ = ["FaultDecision", "FaultPlan", "MessageFault", "clear",
           "current_plan", "install", "jitter"]


def _roll(seed: int, *key) -> float:
    """A deterministic uniform draw in [0, 1) keyed by (seed, *key)."""
    digest = hashlib.sha256(
        ":".join([str(seed)] + [str(part) for part in key]).encode()
    ).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


def jitter(seed: int, *key) -> float:
    """Public deterministic uniform draw in [0, 1), keyed by (seed, *key).

    Backoff schedules (sweep retries, transport retransmits) use this to
    jitter their waits without losing replayability: same seed and key,
    same jitter, in any process.
    """
    return _roll(seed, *key)


class FaultDecision:
    """What a fault plan injects into one chunk attempt."""

    __slots__ = ("crash", "delay")

    def __init__(self, crash: bool = False, delay: float = 0.0) -> None:
        self.crash = crash
        self.delay = delay

    def __repr__(self) -> str:
        return f"FaultDecision(crash={self.crash}, delay={self.delay})"


class MessageFault:
    """What a fault plan injects into one message delivery attempt."""

    __slots__ = ("corrupt", "drop", "duplicate", "delay")

    def __init__(self, corrupt: bool = False, drop: bool = False,
                 duplicate: bool = False, delay: float = 0.0) -> None:
        self.corrupt = corrupt
        self.drop = drop
        self.duplicate = duplicate
        self.delay = delay

    def __bool__(self) -> bool:
        return (self.corrupt or self.drop or self.duplicate
                or self.delay > 0.0)

    def __repr__(self) -> str:
        return (f"MessageFault(corrupt={self.corrupt}, drop={self.drop}, "
                f"duplicate={self.duplicate}, delay={self.delay})")


class FaultPlan:
    """A seeded, deterministic schedule of injected sweep faults.

    ``crash``/``delay``/``lost`` are per-attempt probabilities in
    [0, 1]; ``poison_points`` is a collection of grid points (tuples)
    that raise :class:`MemoryError` whenever evaluated.  Instances are
    immutable plain data — picklable by construction, so they ride task
    payloads into process-pool workers unchanged.
    """

    __slots__ = ("seed", "crash", "delay", "lost", "delay_seconds",
                 "lost_seconds", "poison_points", "msg_drop", "msg_dup",
                 "msg_corrupt", "msg_delay", "msg_delay_seconds", "kill")

    def __init__(self, seed: int = 0, crash: float = 0.0, delay: float = 0.0,
                 lost: float = 0.0, delay_seconds: float = 0.05,
                 lost_seconds: float = 5.0,
                 poison_points: Sequence[Tuple] = (),
                 msg_drop: float = 0.0, msg_dup: float = 0.0,
                 msg_corrupt: float = 0.0, msg_delay: float = 0.0,
                 msg_delay_seconds: float = 0.05,
                 kill: float = 0.0) -> None:
        for name, rate in (("crash", crash), ("delay", delay),
                           ("lost", lost), ("msg_drop", msg_drop),
                           ("msg_dup", msg_dup), ("msg_corrupt", msg_corrupt),
                           ("msg_delay", msg_delay), ("kill", kill)):
            if not 0.0 <= rate <= 1.0:
                raise ReproError(
                    f"chaos {name} rate must be in [0, 1]; got {rate}")
        if delay_seconds < 0 or lost_seconds < 0 or msg_delay_seconds < 0:
            raise ReproError("chaos delay/lost durations must be >= 0")
        self.seed = int(seed)
        self.crash = float(crash)
        self.delay = float(delay)
        self.lost = float(lost)
        self.delay_seconds = float(delay_seconds)
        self.lost_seconds = float(lost_seconds)
        self.msg_drop = float(msg_drop)
        self.msg_dup = float(msg_dup)
        self.msg_corrupt = float(msg_corrupt)
        self.msg_delay = float(msg_delay)
        self.msg_delay_seconds = float(msg_delay_seconds)
        self.kill = float(kill)
        self.poison_points: FrozenSet[Tuple] = frozenset(
            tuple(int(part) for part in point) for point in poison_points)

    def decide(self, pair: int, chunk: int, attempt: int) -> FaultDecision:
        """The injected fault (if any) for one chunk attempt.

        Pure in ``(seed, pair, chunk, attempt)``: resubmitting the same
        attempt from any thread or process yields the same decision.
        Priority: crash beats lost beats delay (one fault per attempt).
        """
        if self.crash and _roll(self.seed, "crash", pair, chunk,
                                attempt) < self.crash:
            return FaultDecision(crash=True)
        if self.lost and _roll(self.seed, "lost", pair, chunk,
                               attempt) < self.lost:
            return FaultDecision(delay=self.lost_seconds)
        if self.delay and _roll(self.seed, "delay", pair, chunk,
                                attempt) < self.delay:
            return FaultDecision(delay=self.delay_seconds)
        return FaultDecision()

    def poisons(self, point: Sequence[int]) -> bool:
        """Whether a grid point is scheduled to crash when evaluated."""
        return bool(self.poison_points) and tuple(point) in self.poison_points

    def decide_message(self, channel: str, seq: int,
                       attempt: int) -> MessageFault:
        """The injected fault (if any) for one message delivery attempt.

        Pure in ``(seed, channel, seq, attempt)``: the same envelope
        retransmitted from any incarnation of any node suffers the same
        fate.  Priority: corrupt beats drop beats dup beats delay (one
        fault per attempt).
        """
        if self.msg_corrupt and _roll(self.seed, "msg-corrupt", channel, seq,
                                      attempt) < self.msg_corrupt:
            return MessageFault(corrupt=True)
        if self.msg_drop and _roll(self.seed, "msg-drop", channel, seq,
                                   attempt) < self.msg_drop:
            return MessageFault(drop=True)
        if self.msg_dup and _roll(self.seed, "msg-dup", channel, seq,
                                  attempt) < self.msg_dup:
            return MessageFault(duplicate=True)
        if self.msg_delay and _roll(self.seed, "msg-delay", channel, seq,
                                    attempt) < self.msg_delay:
            return MessageFault(delay=self.msg_delay_seconds)
        return MessageFault()

    def decide_kill(self, node: int, seq: int) -> bool:
        """Whether node ``node`` crashes after accepting envelope ``seq``.

        Pure in ``(seed, node, seq)``.  The runtime consults this only on
        a node's first incarnation, so every scheduled crash is followed
        by a recovery that runs the schedule *off* — progress guaranteed.
        """
        return bool(self.kill) and _roll(self.seed, "kill", node,
                                         seq) < self.kill

    def __reduce__(self):
        return (_rebuild_plan, (self.seed, self.crash, self.delay, self.lost,
                                self.delay_seconds, self.lost_seconds,
                                tuple(sorted(self.poison_points)),
                                self.msg_drop, self.msg_dup,
                                self.msg_corrupt, self.msg_delay,
                                self.msg_delay_seconds, self.kill))

    def __repr__(self) -> str:
        return (f"FaultPlan(seed={self.seed}, crash={self.crash}, "
                f"delay={self.delay}, lost={self.lost}, "
                f"drop={self.msg_drop}, dup={self.msg_dup}, "
                f"corrupt={self.msg_corrupt}, mdelay={self.msg_delay}, "
                f"kill={self.kill}, poison={sorted(self.poison_points)})")

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Build a plan from a CLI spec string.

        Comma-separated ``key=value`` fields: ``seed``, ``crash``,
        ``delay``, ``lost`` (sweep-side rates), ``delay_s``/``lost_s``
        (seconds), message-side rates ``drop``/``dup``/``corrupt``/
        ``mdelay`` plus ``mdelay_s`` (seconds) and ``kill`` (node crash
        rate), and ``poison`` — grid points joined by ``+`` with
        coordinates joined by ``:``, e.g. ``poison=1:2+0:0``.

        >>> FaultPlan.parse("seed=3,crash=0.2,poison=1:2").crash
        0.2
        >>> FaultPlan.parse("seed=7,drop=0.3,dup=0.1").msg_drop
        0.3
        """
        fields: Dict[str, str] = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ReproError(
                    f"chaos spec field {part!r} is not key=value")
            key, _, value = part.partition("=")
            fields[key.strip()] = value.strip()
        known = {"seed", "crash", "delay", "lost", "delay_s", "lost_s",
                 "poison", "drop", "dup", "corrupt", "mdelay", "mdelay_s",
                 "kill"}
        unknown = set(fields) - known
        if unknown:
            raise ReproError(
                f"unknown chaos spec fields {sorted(unknown)}; "
                f"known: {sorted(known)}")
        try:
            poison = tuple(
                tuple(int(coord) for coord in point.split(":"))
                for point in fields.get("poison", "").split("+") if point)
            return cls(
                seed=int(fields.get("seed", "0")),
                crash=float(fields.get("crash", "0")),
                delay=float(fields.get("delay", "0")),
                lost=float(fields.get("lost", "0")),
                delay_seconds=float(fields.get("delay_s", "0.05")),
                lost_seconds=float(fields.get("lost_s", "5.0")),
                poison_points=poison,
                msg_drop=float(fields.get("drop", "0")),
                msg_dup=float(fields.get("dup", "0")),
                msg_corrupt=float(fields.get("corrupt", "0")),
                msg_delay=float(fields.get("mdelay", "0")),
                msg_delay_seconds=float(fields.get("mdelay_s", "0.05")),
                kill=float(fields.get("kill", "0")),
            )
        except ValueError as error:
            raise ReproError(f"bad chaos spec {spec!r}: {error}") from None


def _rebuild_plan(seed, crash, delay, lost, delay_seconds, lost_seconds,
                  poison_points, msg_drop=0.0, msg_dup=0.0, msg_corrupt=0.0,
                  msg_delay=0.0, msg_delay_seconds=0.05, kill=0.0):
    return FaultPlan(seed=seed, crash=crash, delay=delay, lost=lost,
                     delay_seconds=delay_seconds, lost_seconds=lost_seconds,
                     poison_points=poison_points, msg_drop=msg_drop,
                     msg_dup=msg_dup, msg_corrupt=msg_corrupt,
                     msg_delay=msg_delay,
                     msg_delay_seconds=msg_delay_seconds, kill=kill)


#: The process-wide installed plan (None = no chaos).
_PLAN: Optional[FaultPlan] = None


def install(plan: Optional[FaultPlan]) -> None:
    """Install (or, with None, clear) the process-wide fault plan."""
    global _PLAN
    _PLAN = plan


def clear() -> None:
    """Remove any installed fault plan."""
    install(None)


def current_plan() -> Optional[FaultPlan]:
    """The installed fault plan, or None when chaos is off."""
    return _PLAN
