"""Verification harness: domain sweeps (serial and parallel) and
experiment-table rendering."""

from .enumerate import (FuelGuardedMechanism, SweepResult,
                        all_allow_policies, build_mechanism, default_grid,
                        fuel_notice, sampled_soundness, soundness_sweep,
                        unsound_results)
from .parallel import (EXECUTORS, FACTORIES, parallel_soundness_sweep,
                       resolve_factory)
from .report import Table, banner

__all__ = [
    "all_allow_policies", "default_grid", "soundness_sweep",
    "SweepResult", "unsound_results", "sampled_soundness",
    "build_mechanism", "fuel_notice", "FuelGuardedMechanism",
    "parallel_soundness_sweep", "EXECUTORS", "FACTORIES",
    "resolve_factory", "Table", "banner",
]
