"""Verification harness: domain sweeps and experiment-table rendering."""

from .enumerate import (SweepResult, all_allow_policies, default_grid,
                        sampled_soundness, soundness_sweep,
                        unsound_results)
from .report import Table, banner

__all__ = [
    "all_allow_policies", "default_grid", "soundness_sweep",
    "SweepResult", "unsound_results", "sampled_soundness", "Table",
    "banner",
]
