"""Verification harness: domain sweeps (serial and parallel), fault
totalization, chaos injection, checkpoints, and experiment-table
rendering."""

from ..robustness.faults import (TotalizedMechanism, cap_notice,
                                 crash_notice, fault_notice)
from .chaos import FaultPlan
from .checkpoint import CheckpointWriter, load_checkpoint
from .enumerate import (FuelGuardedMechanism, SweepResult,
                        all_allow_policies, build_mechanism, default_grid,
                        fuel_notice, sampled_soundness, soundness_sweep,
                        unsound_results)
from .parallel import (EXECUTORS, FACTORIES, evaluate_chunk, merge_chunks,
                       parallel_soundness_sweep, quarantine_chunk,
                       resolve_factory)
from .report import Table, banner

__all__ = [
    "all_allow_policies", "default_grid", "soundness_sweep",
    "SweepResult", "unsound_results", "sampled_soundness",
    "build_mechanism", "fuel_notice", "cap_notice", "crash_notice",
    "fault_notice", "FuelGuardedMechanism", "TotalizedMechanism",
    "parallel_soundness_sweep", "EXECUTORS", "FACTORIES",
    "resolve_factory", "evaluate_chunk", "merge_chunks",
    "quarantine_chunk", "FaultPlan", "CheckpointWriter",
    "load_checkpoint", "Table", "banner",
]
