"""Domain-sweep helpers shared by tests and benches.

Soundness and completeness are ∀-statements; these helpers run the
standard sweeps — every (program, policy) pair over a grid — and
collect the verdicts, so tests/benches state *what* to sweep, not how.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import inspect

from ..core.domains import ProductDomain
from ..core.errors import ReproError
from ..core.policy import AllowPolicy, allow
from ..core.soundness import check_soundness_with_accepts
from ..flowchart.interpreter import DEFAULT_FUEL
from ..flowchart.program import Flowchart
from ..robustness.faults import TotalizedMechanism, fuel_notice

__all__ = [
    "FuelGuardedMechanism", "SweepResult", "all_allow_policies",
    "build_mechanism", "default_grid", "fuel_notice", "sampled_soundness",
    "soundness_sweep", "unsound_results",
]

#: Historical name for the totalizing wrapper.  Since the value-cap
#: guard joined the fault taxonomy it totalizes *every* declared fault
#: (``Λ!fuel[N]`` and ``Λ!cap[C]``), not just fuel; the canonical home
#: is :class:`repro.robustness.faults.TotalizedMechanism`.
FuelGuardedMechanism = TotalizedMechanism


#: Signature introspection is pure in the factory object; a sweep asks
#: the same question for every (pair, chunk), so memoize per factory.
_ACCEPTS_MEMO: dict = {}


def _accepts_parameter(factory, name: str, positional_rank: int) -> bool:
    """Whether a mechanism factory can receive a given sweep budget.

    True when the factory takes ``name`` (or ``**kwargs``/``*args``),
    or has at least ``positional_rank`` positional slots.
    """
    try:
        memo_key = (factory, name, positional_rank)
        cached = _ACCEPTS_MEMO.get(memo_key)
    except TypeError:  # unhashable callable
        memo_key = None
        cached = None
    if cached is not None:
        return cached
    try:
        signature = inspect.signature(factory)
    except (TypeError, ValueError):  # pragma: no cover - builtins etc.
        if memo_key is not None:
            _ACCEPTS_MEMO[memo_key] = False
        return False
    parameters = signature.parameters
    if name in parameters:
        accepts = True
    elif any(parameter.kind is inspect.Parameter.VAR_KEYWORD
             or parameter.kind is inspect.Parameter.VAR_POSITIONAL
             for parameter in parameters.values()):
        accepts = True
    else:
        positional = [
            parameter for parameter in parameters.values()
            if parameter.kind in (inspect.Parameter.POSITIONAL_ONLY,
                                  inspect.Parameter.POSITIONAL_OR_KEYWORD)]
        accepts = len(positional) >= positional_rank
    if memo_key is not None:
        _ACCEPTS_MEMO[memo_key] = accepts
    return accepts


def _accepts_fuel(factory) -> bool:
    """Whether a mechanism factory can receive the sweep's fuel budget."""
    return _accepts_parameter(factory, "fuel", 4)


def build_mechanism(factory, flowchart, policy, domain,
                    fuel: int = DEFAULT_FUEL,
                    value_cap: Optional[int] = None,
                    backend: Optional[str] = None):
    """Invoke a mechanism factory, threading the sweep budgets.

    Registered :data:`~repro.verify.parallel.FACTORIES` all accept
    ``(flowchart, policy, domain, fuel, value_cap, backend)``.  Legacy
    callables are still accepted — but only at the default budgets;
    silently dropping a caller's explicit fuel, value cap, or backend
    is exactly the bug this helper exists to prevent, so those cases
    raise instead.
    """
    takes_fuel = _accepts_fuel(factory)
    if not takes_fuel and fuel != DEFAULT_FUEL:
        raise ReproError(
            f"mechanism factory {getattr(factory, '__name__', factory)!r} "
            "takes (flowchart, policy, domain) only and cannot honour "
            f"fuel={fuel}; extend it to accept a fuel argument")
    kwargs = {}
    if value_cap is not None:
        if not _accepts_parameter(factory, "value_cap", 5):
            raise ReproError(
                f"mechanism factory {getattr(factory, '__name__', factory)!r} "
                f"cannot honour value_cap={value_cap}; extend it to accept "
                "a value_cap argument")
        kwargs["value_cap"] = value_cap
    if backend is not None:
        if not _accepts_parameter(factory, "backend", 6):
            raise ReproError(
                f"mechanism factory {getattr(factory, '__name__', factory)!r} "
                f"cannot honour backend={backend!r}; extend it to accept "
                "a backend argument")
        kwargs["backend"] = backend
    if kwargs:
        return factory(flowchart, policy, domain, fuel, **kwargs)
    if takes_fuel:
        return factory(flowchart, policy, domain, fuel)
    return factory(flowchart, policy, domain)


def all_allow_policies(arity: int) -> List[AllowPolicy]:
    """Every allow(...) policy for a k-ary program (2^k of them)."""
    import itertools

    policies = []
    indices = range(1, arity + 1)
    for size in range(arity + 1):
        for subset in itertools.combinations(indices, size):
            policies.append(allow(*subset, arity=arity))
    return policies


def default_grid(arity: int, low: int = 0, high: int = 2) -> ProductDomain:
    """The standard small grid used by sweeps (3^k points by default)."""
    return ProductDomain.integer_grid(low, high, arity)


class SweepResult:
    """One (program, policy, mechanism) soundness verdict."""

    def __init__(self, program_name: str, policy_name: str,
                 mechanism_name: str, sound: bool,
                 accepts: int, domain_size: int,
                 backends: Optional[Dict[str, int]] = None) -> None:
        self.program_name = program_name
        self.policy_name = policy_name
        self.mechanism_name = mechanism_name
        self.sound = sound
        self.accepts = accepts
        self.domain_size = domain_size
        #: chunk count per execution backend that actually evaluated
        #: this pair (parallel sweeps record it; None when untracked).
        self.backends = backends

    def __repr__(self) -> str:
        return (f"SweepResult({self.program_name}, {self.policy_name}: "
                f"sound={self.sound}, accepts={self.accepts}/{self.domain_size})")


def soundness_sweep(flowcharts: Sequence[Flowchart],
                    mechanism_factory: Callable,
                    grid: Optional[Callable[[int], ProductDomain]] = None,
                    fuel: int = DEFAULT_FUEL,
                    value_cap: Optional[int] = None) -> List[SweepResult]:
    """Check a mechanism family on every flowchart × every allow policy.

    ``mechanism_factory(flowchart, policy, domain[, fuel])`` builds the
    mechanism under test; ``grid(arity)`` supplies the domain (default
    :func:`default_grid`).  Returns one verdict per combination — the
    empirical content of Theorems 3/3′.

    ``fuel`` reaches the factory (see :func:`build_mechanism`), and a
    run that exhausts it is recorded as the distinguished
    :func:`fuel_notice` outcome rather than aborting the sweep, so the
    sweep itself is a total function of its arguments.

    Each domain point is evaluated exactly once: the soundness
    factorization check and the acceptance count both derive from the
    same per-point mechanism output
    (:func:`~repro.core.soundness.check_soundness_with_accepts`).
    For large products, :func:`repro.verify.parallel_soundness_sweep`
    runs the same sweep across a worker pool.
    """
    from ..obs import runtime as _obs

    grid = grid or default_grid
    results: List[SweepResult] = []
    total = sum(2 ** flowchart.arity for flowchart in flowcharts)
    with _obs.span(
            "sweep", executor="serial", pairs=total,
            points=sum(len(grid(f.arity)) * 2 ** f.arity
                       for f in flowcharts) if flowcharts else 0):
        for flowchart in flowcharts:
            domain = grid(flowchart.arity)
            for policy in all_allow_policies(flowchart.arity):
                with _obs.span("pair", program=flowchart.name,
                               policy=policy.name):
                    mechanism = build_mechanism(mechanism_factory, flowchart,
                                                policy, domain, fuel,
                                                value_cap=value_cap)
                    report, accepts = check_soundness_with_accepts(
                        TotalizedMechanism(mechanism), policy, domain)
                    results.append(SweepResult(
                        flowchart.name, policy.name, mechanism.name,
                        report.sound, accepts, len(domain)))
    return results


def unsound_results(results: Iterable[SweepResult]) -> List[SweepResult]:
    """Filter a sweep down to its failures (empty for a sound family)."""
    return [result for result in results if not result.sound]


def sampled_soundness(mechanism, policy, domain=None, samples: int = 1000,
                      seed: int = 0):
    """Soundness check by sampling — for domains too large to enumerate.

    Draws ``samples`` pseudo-random points (deterministic per seed) and
    runs the factorization check on them.  A returned witness is a real
    unsoundness proof; a "sound" verdict is only evidence (the full
    check is a ∀ statement — Theorem 4 territory).
    """
    from ..core.soundness import check_soundness

    domain = domain if domain is not None else mechanism.domain
    points = list(domain.sample(samples, seed=seed))
    return check_soundness(mechanism, policy, points)
