"""Domain-sweep helpers shared by tests and benches.

Soundness and completeness are ∀-statements; these helpers run the
standard sweeps — every (program, policy) pair over a grid — and
collect the verdicts, so tests/benches state *what* to sweep, not how.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import inspect

from ..core.domains import ProductDomain
from ..core.errors import FuelExhaustedError, ReproError
from ..core.mechanism import ViolationNotice
from ..core.policy import AllowPolicy, allow
from ..core.soundness import check_soundness_with_accepts
from ..flowchart.interpreter import DEFAULT_FUEL
from ..flowchart.program import Flowchart


def fuel_notice(fuel: int) -> ViolationNotice:
    """The distinguished outcome of a run that exhausted its fuel budget.

    The sweeps evaluate mechanisms as *total* functions: a mechanism
    run that exceeds ``fuel`` steps is recorded as this notice rather
    than unwinding the whole sweep.  The notice encodes the budget —
    per the Observability Postulate, "ran out of fuel F" is an
    observable output distinct from an ordinary violation notice Λ, so
    the factorization check treats it as its own output class.
    """
    return ViolationNotice(f"Λ!fuel[{fuel}]")


class FuelGuardedMechanism:
    """Wraps a mechanism so fuel exhaustion becomes :func:`fuel_notice`.

    Duck-types the :class:`~repro.core.mechanism.ProtectionMechanism`
    surface the soundness checkers use (``arity``, ``name``,
    ``domain``, call).  Both the serial and the parallel sweeps apply
    this guard, so their rows stay identical point-for-point even when
    a tiny fuel budget truncates runs.
    """

    __slots__ = ("_mechanism",)

    def __init__(self, mechanism) -> None:
        self._mechanism = mechanism

    @property
    def arity(self) -> int:
        return self._mechanism.arity

    @property
    def name(self) -> str:
        return self._mechanism.name

    @property
    def domain(self):
        return self._mechanism.domain

    def __call__(self, *inputs):
        try:
            return self._mechanism(*inputs)
        except FuelExhaustedError as error:
            return fuel_notice(error.fuel)


def _accepts_fuel(factory) -> bool:
    """Whether a mechanism factory can receive the sweep's fuel budget."""
    try:
        signature = inspect.signature(factory)
    except (TypeError, ValueError):  # pragma: no cover - builtins etc.
        return False
    parameters = signature.parameters
    if "fuel" in parameters:
        return True
    if any(parameter.kind is inspect.Parameter.VAR_KEYWORD
           or parameter.kind is inspect.Parameter.VAR_POSITIONAL
           for parameter in parameters.values()):
        return True
    positional = [parameter for parameter in parameters.values()
                  if parameter.kind in (inspect.Parameter.POSITIONAL_ONLY,
                                        inspect.Parameter.POSITIONAL_OR_KEYWORD)]
    return len(positional) >= 4


def build_mechanism(factory, flowchart, policy, domain,
                    fuel: int = DEFAULT_FUEL):
    """Invoke a mechanism factory, threading ``fuel`` when it can take it.

    Registered :data:`~repro.verify.parallel.FACTORIES` all accept
    ``(flowchart, policy, domain, fuel)``.  Legacy three-argument
    callables are still accepted — but only at the default budget;
    silently dropping a caller's explicit fuel is exactly the bug this
    helper exists to prevent, so that case raises instead.
    """
    if _accepts_fuel(factory):
        return factory(flowchart, policy, domain, fuel)
    if fuel != DEFAULT_FUEL:
        raise ReproError(
            f"mechanism factory {getattr(factory, '__name__', factory)!r} "
            "takes (flowchart, policy, domain) only and cannot honour "
            f"fuel={fuel}; extend it to accept a fuel argument")
    return factory(flowchart, policy, domain)


def all_allow_policies(arity: int) -> List[AllowPolicy]:
    """Every allow(...) policy for a k-ary program (2^k of them)."""
    import itertools

    policies = []
    indices = range(1, arity + 1)
    for size in range(arity + 1):
        for subset in itertools.combinations(indices, size):
            policies.append(allow(*subset, arity=arity))
    return policies


def default_grid(arity: int, low: int = 0, high: int = 2) -> ProductDomain:
    """The standard small grid used by sweeps (3^k points by default)."""
    return ProductDomain.integer_grid(low, high, arity)


class SweepResult:
    """One (program, policy, mechanism) soundness verdict."""

    def __init__(self, program_name: str, policy_name: str,
                 mechanism_name: str, sound: bool,
                 accepts: int, domain_size: int) -> None:
        self.program_name = program_name
        self.policy_name = policy_name
        self.mechanism_name = mechanism_name
        self.sound = sound
        self.accepts = accepts
        self.domain_size = domain_size

    def __repr__(self) -> str:
        return (f"SweepResult({self.program_name}, {self.policy_name}: "
                f"sound={self.sound}, accepts={self.accepts}/{self.domain_size})")


def soundness_sweep(flowcharts: Sequence[Flowchart],
                    mechanism_factory: Callable,
                    grid: Optional[Callable[[int], ProductDomain]] = None,
                    fuel: int = DEFAULT_FUEL) -> List[SweepResult]:
    """Check a mechanism family on every flowchart × every allow policy.

    ``mechanism_factory(flowchart, policy, domain[, fuel])`` builds the
    mechanism under test; ``grid(arity)`` supplies the domain (default
    :func:`default_grid`).  Returns one verdict per combination — the
    empirical content of Theorems 3/3′.

    ``fuel`` reaches the factory (see :func:`build_mechanism`), and a
    run that exhausts it is recorded as the distinguished
    :func:`fuel_notice` outcome rather than aborting the sweep, so the
    sweep itself is a total function of its arguments.

    Each domain point is evaluated exactly once: the soundness
    factorization check and the acceptance count both derive from the
    same per-point mechanism output
    (:func:`~repro.core.soundness.check_soundness_with_accepts`).
    For large products, :func:`repro.verify.parallel_soundness_sweep`
    runs the same sweep across a worker pool.
    """
    from ..obs import runtime as _obs

    grid = grid or default_grid
    results: List[SweepResult] = []
    total = sum(2 ** flowchart.arity for flowchart in flowcharts)
    with _obs.span(
            "sweep", executor="serial", pairs=total,
            points=sum(len(grid(f.arity)) * 2 ** f.arity
                       for f in flowcharts) if flowcharts else 0):
        for flowchart in flowcharts:
            domain = grid(flowchart.arity)
            for policy in all_allow_policies(flowchart.arity):
                with _obs.span("pair", program=flowchart.name,
                               policy=policy.name):
                    mechanism = build_mechanism(mechanism_factory, flowchart,
                                                policy, domain, fuel)
                    report, accepts = check_soundness_with_accepts(
                        FuelGuardedMechanism(mechanism), policy, domain)
                    results.append(SweepResult(
                        flowchart.name, policy.name, mechanism.name,
                        report.sound, accepts, len(domain)))
    return results


def unsound_results(results: Iterable[SweepResult]) -> List[SweepResult]:
    """Filter a sweep down to its failures (empty for a sound family)."""
    return [result for result in results if not result.sound]


def sampled_soundness(mechanism, policy, domain=None, samples: int = 1000,
                      seed: int = 0):
    """Soundness check by sampling — for domains too large to enumerate.

    Draws ``samples`` pseudo-random points (deterministic per seed) and
    runs the factorization check on them.  A returned witness is a real
    unsoundness proof; a "sound" verdict is only evidence (the full
    check is a ∀ statement — Theorem 4 territory).
    """
    from ..core.soundness import check_soundness

    domain = domain if domain is not None else mechanism.domain
    points = list(domain.sample(samples, seed=seed))
    return check_soundness(mechanism, policy, points)
