"""Command-line interface: analyse programs for policies from a shell.

Subcommands:

- ``run``         — execute a program on given inputs, print value + steps;
- ``analyze``     — build a protection mechanism for (program, policy) and
  report soundness, acceptance, and per-input verdicts;
- ``sweep``       — soundness sweep of a mechanism family across library
  programs and every allow-policy, optionally across a worker pool;
- ``certify``     — static certification verdict with the flow analysis;
- ``lint``        — flowlint: run the static analysis passes (influence
  verdict, timing channels, hygiene) over one program or the whole
  library, optionally with the static-vs-dynamic precision harness;
- ``transform``   — apply a Section 4/5 transform and print the result;
- ``dot``         — render a flowchart (optionally its surveillance
  instrumentation) as Graphviz DOT;
- ``library``     — list the paper's built-in figure programs;
- ``experiments`` — list the experiment index E01–E27;
- ``metrics``     — observability utilities: print the live metrics
  registry, render a ``--metrics-json`` file, validate a JSONL trace,
  or dump the trace-event schema (see ``docs/OBSERVABILITY.md``).

Programs come from a file / literal source in the concrete syntax
(see :mod:`repro.flowchart.parser`) or from the figure library::

    python -m repro analyze --library forgetting --policy "allow(2)" \
        --low 0 --high 3
    python -m repro run --source "program p(x1) { y := x1 * 2 }" -- 21
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .core import (ProductDomain, VALUE_AND_TIME, VALUE_ONLY,
                   check_soundness_with_accepts)
from .core.errors import ReproError
from .flowchart import library as figure_library
from .flowchart.fastpath import BACKEND_ALIASES, BACKENDS, run_flowchart
from .flowchart.interpreter import as_program
from .flowchart.parser import parse_policy, parse_program
from .flowchart.program import Flowchart
from .verify import Table

#: Library programs addressable from the command line.
LIBRARY = {
    "timing-loop": figure_library.timing_loop,
    "forgetting": figure_library.forgetting_program,
    "reconvergence": figure_library.reconvergence_program,
    "example7": figure_library.example7_program,
    "example8": figure_library.example8_program,
    "example9": figure_library.example9_program,
    "parity": figure_library.parity_program,
    "guarded-copy": figure_library.guarded_copy_program,
    "mixer": figure_library.mixer_program,
    "max": figure_library.max_program,
    "nested-branch": figure_library.nested_branch_program,
    "accumulate": figure_library.accumulate_program,
    "fault-channel": figure_library.fault_channel_program,
    "gcd": figure_library.gcd_program,
    "min": figure_library.min_program,
    "countdown-pair": figure_library.countdown_pair_program,
    "policy-tighten": figure_library.policy_tighten_program,
    "policy-loosen": figure_library.policy_loosen_program,
    "policy-branch": figure_library.policy_branch_program,
    "policy-loop": figure_library.policy_loop_program,
    "downgrade-launder": figure_library.downgrade_launder_program,
    "downgrade-guarded": figure_library.downgrade_guarded_program,
    "downgrade-partial": figure_library.downgrade_partial_program,
    "downgrade-then-tighten": figure_library.downgrade_then_tighten_program,
}

MECHANISMS = ("surveillance", "timed", "highwater", "maximal", "none")


def _load_flowchart(args) -> Flowchart:
    sources = [bool(args.library), bool(args.source), bool(args.file)]
    if sum(sources) != 1:
        raise ReproError(
            "provide exactly one of --library, --source, --file")
    if args.library:
        try:
            return LIBRARY[args.library]()
        except KeyError:
            known = ", ".join(sorted(LIBRARY))
            raise ReproError(
                f"unknown library program {args.library!r}; "
                f"known: {known}") from None
    if args.file:
        with open(args.file) as handle:
            source = handle.read()
    else:
        source = args.source
    return parse_program(source).compile()


def _add_program_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--library", help="a built-in figure program")
    parser.add_argument("--source", help="program text (concrete syntax)")
    parser.add_argument("--file", help="path to a program file")


def _add_backend_argument(parser: argparse.ArgumentParser) -> None:
    # Choices come from the tier registry (plus its aliases), so an
    # unknown backend is rejected by argparse — usage message listing
    # every registered tier, exit status 2 — before any work starts.
    choices = tuple(BACKENDS) + tuple(sorted(BACKEND_ALIASES))
    parser.add_argument("--backend", choices=choices, default=None,
                        help="execution tier (default: compiled, or "
                             "the REPRO_BACKEND environment variable)")


def _build_mechanism(kind: str, flowchart, policy, domain, output_model,
                     backend=None):
    from .core import maximal_mechanism, program_as_mechanism
    from .surveillance import (highwater_mechanism, surveillance_mechanism,
                               timed_surveillance_mechanism)

    program = as_program(flowchart, domain, output_model, backend=backend)
    if kind == "surveillance":
        return surveillance_mechanism(flowchart, policy, domain,
                                      output_model=output_model,
                                      program=program)
    if kind == "timed":
        return timed_surveillance_mechanism(flowchart, policy, domain,
                                            output_model=output_model,
                                            program=program)
    if kind == "highwater":
        return highwater_mechanism(flowchart, policy, domain,
                                   output_model=output_model,
                                   program=program)
    if kind == "maximal":
        return maximal_mechanism(program, policy, domain).mechanism
    return program_as_mechanism(program)


def _check_positive(name: str, value, kind: str = "integer") -> None:
    if value is not None and value <= 0:
        raise ReproError(f"{name} must be a positive {kind}; got {value}")


def command_run(args) -> int:
    _check_positive("--value-cap", args.value_cap)
    flowchart = _load_flowchart(args)
    inputs = tuple(int(value) for value in args.inputs)
    result = run_flowchart(flowchart, inputs, fuel=args.fuel,
                           backend=args.backend, value_cap=args.value_cap)
    print(f"value: {result.value}")
    print(f"steps: {result.steps}")
    return 0


def command_analyze(args) -> int:
    flowchart = _load_flowchart(args)
    domain = ProductDomain.integer_grid(args.low, args.high,
                                        flowchart.arity)
    policy = parse_policy(args.policy, arity=flowchart.arity)
    output_model = VALUE_AND_TIME if args.time else VALUE_ONLY
    mechanism = _build_mechanism(args.mechanism, flowchart, policy, domain,
                                 output_model, backend=args.backend)

    report, accepted = check_soundness_with_accepts(mechanism, policy, domain)
    print(f"program:   {flowchart.name} (arity {flowchart.arity})")
    print(f"policy:    {policy.name}")
    print(f"mechanism: {mechanism.name}")
    print(f"domain:    [{args.low}..{args.high}]^{flowchart.arity}"
          f" = {len(domain)} inputs")
    print(f"sound:     {report.sound}")
    if not report.sound:
        print(f"witness:   {report.witness}")
    print(f"accepts:   {accepted}/{len(domain)}")

    if args.verbose:
        table = Table("per-input verdicts", ["input", "output"])
        for point in domain:
            table.add_row(str(point), str(mechanism(*point)))
        table.show()
    return 0 if report.sound else 1


def command_certify(args) -> int:
    if args.library:
        # Library programs are flowcharts: use the CFG-level certifier.
        from .staticflow import certify_flowchart

        flowchart = _load_flowchart(args)
        policy = parse_policy(args.policy, arity=flowchart.arity)
        certificate = certify_flowchart(flowchart, policy)
        print(f"program: {flowchart.name} (flowchart, CFG certifier)")
        print(f"policy:  {policy.name}")
        verdict = "CERTIFIED" if certificate.certified else "REJECTED"
        print(f"verdict: {verdict} "
              f"(ȳ = {sorted(certificate.output_label)}, "
              f"J = {sorted(certificate.allowed)})")
        return 0 if certificate.certified else 1

    sources = [bool(args.source), bool(args.file)]
    if sum(sources) != 1:
        raise ReproError(
            "provide exactly one of --library, --source, --file")
    if args.file:
        with open(args.file) as handle:
            text = handle.read()
    else:
        text = args.source
    program = parse_program(text)

    from .staticflow import analyse, certify

    policy = parse_policy(args.policy,
                          arity=len(program.input_variables))
    certificate = certify(program, policy)
    analysis = analyse(program)
    print(f"program: {program.name}")
    print(f"policy:  {policy.name}")
    for variable, label in sorted(analysis.labels.items()):
        print(f"  label({variable}) = {sorted(label)}")
    verdict = "CERTIFIED" if certificate.certified else "REJECTED"
    print(f"verdict: {verdict} "
          f"(ȳ = {sorted(certificate.output_label)}, "
          f"J = {sorted(certificate.allowed)})")
    return 0 if certificate.certified else 1


def command_transform(args) -> int:
    flowchart = _load_flowchart(args)
    from .flowchart.analysis import find_ite_regions, find_while_regions
    from .flowchart.transforms import (duplicate_assignment_transform,
                                       ite_transform, while_transform)

    if args.transform == "ite":
        regions = find_ite_regions(flowchart)
        if not regions:
            raise ReproError("no if-then-else region found")
        result = ite_transform(flowchart, regions[0],
                               detect_identical_arms=args.smart)
    elif args.transform == "while":
        regions = find_while_regions(flowchart)
        if not regions:
            raise ReproError("no while region found")
        result = while_transform(flowchart, regions[0])
    else:
        regions = find_ite_regions(flowchart)
        if not regions:
            raise ReproError("no if-then-else region found")
        result = duplicate_assignment_transform(flowchart, regions[0])

    print(result.pretty())
    if args.check:
        from .flowchart.transforms import functionally_equivalent

        domain = ProductDomain.integer_grid(args.low, args.high,
                                            flowchart.arity)
        equivalent = functionally_equivalent(flowchart, result, domain)
        print(f"\nfunctionally equivalent on "
              f"[{args.low}..{args.high}]^{flowchart.arity}: {equivalent}")
        return 0 if equivalent else 1
    return 0


def command_sweep(args) -> int:
    import json
    import signal as _signal
    import time as _time

    from . import obs
    from .core.errors import SweepInterruptedError
    from .flowchart.fastpath import export_memo_stats, resolve_backend
    from .verify import FaultPlan, parallel_soundness_sweep, unsound_results
    from .verify import chaos as chaos_module

    _check_positive("--value-cap", args.value_cap)
    _check_positive("--deadline", args.deadline, kind="number of seconds")
    if args.resume and not args.checkpoint:
        raise ReproError(
            "--resume restores a sweep journal; add --checkpoint PATH "
            "pointing at the journal to resume from")

    if args.programs:
        names = [name.strip() for name in args.programs.split(",")]
    else:
        # The sweep's soundness reference is fixed-policy
        # noninterference against the initial policy, which mislabels
        # intentional declassification — dynamic-policy programs are
        # judged by the precision harness's epoch-aware reference
        # instead, so the default sweep set excludes them.  Explicit
        # --programs selection still works (the unsound verdicts are
        # then the NI baseline, by request).
        names = [name for name in sorted(LIBRARY)
                 if not LIBRARY[name]().has_dynamic_policy()]
    try:
        flowcharts = [LIBRARY[name]() for name in names]
    except KeyError as error:
        known = ", ".join(sorted(LIBRARY))
        raise ReproError(
            f"unknown library program {error.args[0]!r}; "
            f"known: {known}") from None

    progress = None
    if args.progress:
        def progress(completed, total, result):
            print(f"  [{completed}/{total}] {result.program_name} x "
                  f"{result.policy_name}: sound={result.sound} "
                  f"accepts={result.accepts}/{result.domain_size}",
                  file=sys.stderr, flush=True)

    trace_sink = None
    sinks = []
    if args.trace:
        trace_sink = obs.JsonlSink(args.trace)
        sinks.append(trace_sink)
    if args.explain and not args.trace:
        raise ReproError(
            "--explain emits provenance into the trace stream; "
            "add --trace PATH")
    observing = bool(args.metrics_json or sinks)
    if observing:
        obs.enable(metrics=True, sinks=sinks, reset=True,
                   explain=args.explain)

    # A checkpointed sweep converts SIGINT/SIGTERM into a graceful stop:
    # the runner drains in-flight chunks, journals them, and raises
    # SweepInterruptedError so a later --resume completes the sweep.
    stop_signal: List[str] = []
    stop = None
    saved_handlers = []
    if args.checkpoint:
        def request_stop(signum, frame):
            stop_signal.append(_signal.Signals(signum).name)

        def stop():
            return "signal" if stop_signal else None

        for signum in (_signal.SIGINT, _signal.SIGTERM):
            try:
                saved_handlers.append(
                    (signum, _signal.signal(signum, request_stop)))
            except ValueError:
                pass  # not the main thread; run without handlers

    if args.chaos:
        chaos_module.install(FaultPlan.parse(args.chaos))

    # The backend travels to the sweep (and its mechanism factories,
    # across process pools) as an explicit argument; mutating
    # ``os.environ`` here used to leak one invocation's choice into
    # everything else sharing the process.
    backend = resolve_backend(args.backend) if args.backend else None
    interrupted = None
    try:
        started = _time.perf_counter()
        try:
            results = parallel_soundness_sweep(
                flowcharts, args.mechanism,
                grid=lambda arity: ProductDomain.integer_grid(
                    args.low, args.high, arity),
                fuel=args.fuel,
                executor=args.executor, max_workers=args.jobs,
                chunk_size=args.chunk_size,
                chunk_timeout=args.chunk_timeout,
                max_chunk_retries=args.retries,
                progress=progress,
                value_cap=args.value_cap,
                checkpoint=args.checkpoint,
                resume=args.resume,
                stop=stop,
                deadline=args.deadline,
                backend=backend,
                audit=args.audit)
        except SweepInterruptedError as error:
            interrupted = error
            results = []
        elapsed = _time.perf_counter() - started
    finally:
        if args.chaos:
            chaos_module.clear()
        for signum, handler in saved_handlers:
            _signal.signal(signum, handler)
        if observing:
            export_memo_stats()
            snapshot = obs.snapshot()
            obs.disable()
            if trace_sink is not None:
                trace_sink.close()

    if interrupted is not None:
        print(f"error: {interrupted}", file=sys.stderr)
        # Conventional timeout/signal statuses so scripts (and the
        # SIGKILL-resume integration test) can tell the cases apart.
        return 124 if interrupted.reason == "deadline" else 130

    table = Table(f"soundness sweep ({args.mechanism} mechanisms)",
                  ["program", "policy", "sound", "accepts"])
    for result in results:
        table.add_row(result.program_name, result.policy_name,
                      str(result.sound),
                      f"{result.accepts}/{result.domain_size}")
    print(table.render())
    failures = unsound_results(results)
    print(f"{len(results)} (program, policy) pairs in {elapsed:.2f}s "
          f"[executor={args.executor}]; unsound: {len(failures)}")

    if args.results_json:
        rows = [
            {
                "program": result.program_name,
                "policy": result.policy_name,
                "sound": result.sound,
                "accepts": result.accepts,
                "domain_size": result.domain_size,
                # Chunk count per backend that *actually* evaluated the
                # pair — after any pool degradation or batch fallback —
                # so a row shows when a batch sweep quietly retreated.
                "backends": result.backends,
            }
            for result in results
        ]
        with open(args.results_json, "w", encoding="utf-8") as handle:
            json.dump(rows, handle, indent=2, sort_keys=True)
            handle.write("\n")

    if args.metrics_json:
        payload = {
            "meta": {
                "command": "sweep",
                "mechanism": args.mechanism,
                "executor": args.executor,
                "backend": backend,
                "fuel": args.fuel,
                "value_cap": args.value_cap,
                "programs": names,
                "pairs": len(results),
                "unsound": len(failures),
                "elapsed_s": round(elapsed, 6),
            },
        }
        payload.update(snapshot)
        with open(args.metrics_json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return 0 if not failures or args.mechanism == "program" else 1


def command_explain(args) -> int:
    """Violation provenance: why does the mechanism say Λ here?"""
    import json

    from . import obs

    flowchart = _load_flowchart(args)
    policy = parse_policy(args.policy, arity=flowchart.arity)
    if args.static:
        if args.inputs:
            raise ReproError(
                "--static derives the compile-time chain; it takes no "
                "concrete inputs")
        explanation = obs.explain_static(flowchart, policy)
    else:
        if not args.inputs:
            raise ReproError(
                "explain replays one point: give its integer inputs, or "
                "pass --static for the compile-time chain")
        point = tuple(int(value) for value in args.inputs)
        explanation = obs.explain(flowchart, policy, point,
                                  timed=args.timed, fuel=args.fuel)
    if args.json:
        print(json.dumps(explanation.to_dict(), indent=2, sort_keys=True))
    else:
        print(explanation.render())
    return 1 if explanation.violated else 0


def command_trace(args) -> int:
    """Offline analytics over a JSONL trace written by ``sweep --trace``."""
    import json

    from . import obs

    try:
        events = obs.load_trace(args.trace)
    except OSError as error:
        raise ReproError(f"cannot read trace {args.trace!r}: {error}")

    if args.action == "summarize":
        summary = obs.summarize(events)
        if args.json:
            print(json.dumps(summary, indent=2, sort_keys=True))
            return 0
        print(f"trace:     {args.trace}")
        print(f"events:    {summary['events']} "
              f"across {summary['processes']} process(es)")
        kinds = summary["kinds"]
        if kinds:
            table = Table("events by kind", ["kind", "count"])
            for kind in sorted(kinds):
                table.add_row(kind, str(kinds[kind]))
            print(table.render())
        spans = summary["spans"]
        print(f"spans:     {spans['total']} in {spans['roots']} tree(s), "
              f"{len(spans['problems'])} problem(s)")
        if spans["by_op"]:
            table = Table("span timing by op",
                          ["op", "count", "total_s", "max_s"])
            for op, stats in spans["by_op"].items():
                table.add_row(op, str(stats["count"]),
                              f"{stats['total_s']:.6f}",
                              f"{stats['max_s']:.6f}")
            print(table.render())
        print(f"points:    {summary['points_evaluated']} evaluated, "
              f"{summary['points_accepted']} accepted")
        print(f"incidents: {summary['violations']} violation(s), "
              f"{summary['worker_retries']} retry(ies), "
              f"{summary['pool_degradations']} degradation(s)")
        recovery = summary["recovery"]
        line = (f"recovery:  {recovery['points_quarantined']} point(s) "
                f"quarantined in {recovery['chunks_quarantined']} "
                f"chunk(s), {recovery['checkpoints_written']} "
                f"checkpoint(s) written, {recovery['chunks_restored']} "
                f"chunk(s) restored")
        if recovery["interruptions"]:
            line += (" — interrupted: "
                     + ", ".join(recovery["interruptions"]))
        print(line)
        dynamic = summary["dynamic_policy"]
        print(f"dynamic:   {dynamic['policy_changes']} policy change(s) "
              f"(max epoch {dynamic['max_epoch']}), "
              f"{dynamic['downgrades']} downgrade(s), "
              f"{dynamic['epoch_violations']} epoch violation(s)")
        audit = summary["audit"]
        line = (f"audit:     {audit['appended']} record(s) appended, "
                f"{audit['rotations']} rotation(s), "
                f"{audit['rate_spikes']} rate spike(s)")
        if audit["spiked_tenants"]:
            line += " — spiked: " + ", ".join(audit["spiked_tenants"])
        print(line)
        return 0

    if args.action == "slow":
        rows = obs.slowest_spans(events, top=args.top)
        if args.json:
            print(json.dumps(rows, indent=2, sort_keys=True))
            return 0
        table = Table(f"slowest {len(rows)} span(s)",
                      ["span", "op", "elapsed_s", "detail"])
        for row in rows:
            detail = " ".join(
                f"{key}={row[key]}" for key in
                ("program", "policy", "pair", "chunk", "executor")
                if key in row)
            table.add_row(row["span"], row["op"],
                          f"{row['elapsed_s']:.6f}", detail)
        print(table.render())
        return 0

    if args.action == "explain":
        point = None
        if args.point:
            point = [int(value) for value in args.point.split(",")]
        records = obs.find_explanations(events, point=point,
                                        program=args.program)
        if args.json:
            print(json.dumps(records, indent=2, sort_keys=True))
            return 0 if records else 1
        if not records:
            print("no explanation events match "
                  "(was the sweep run with --explain and --trace?)",
                  file=sys.stderr)
            return 1
        for record in records:
            print(obs.render_explanation_event(record))
            print()
        return 0

    # spans
    forest = obs.build_span_tree(events)
    if args.tree:
        print(obs.render_tree(forest, max_children=args.max_children))
    print(f"{len(forest.spans)} span(s), {len(forest.roots)} root(s), "
          f"{len(forest.problems)} problem(s)")
    if args.expect_single_root and not forest.single_rooted:
        print(f"expected a single rooted tree, found {len(forest.roots)} "
              "root(s)", file=sys.stderr)
        return 1
    return 0


def command_metrics(args) -> int:
    import json

    from . import obs
    from .flowchart.fastpath import export_memo_stats

    if args.schema:
        print(json.dumps(obs.EVENT_SCHEMA, indent=2, sort_keys=True))
        return 0
    if args.validate:
        with open(args.validate, encoding="utf-8") as handle:
            count, problems = obs.validate_jsonl(handle)
        for problem in problems:
            print(problem, file=sys.stderr)
        print(f"{args.validate}: {count} event(s), "
              f"{len(problems)} problem(s)")
        return 0 if not problems else 1

    if args.from_json:
        with open(args.from_json, encoding="utf-8") as handle:
            snapshot = json.load(handle)
        meta = snapshot.get("meta")
        if meta and not args.prometheus:
            for key in sorted(meta):
                print(f"{key}: {meta[key]}")
            print()
    else:
        # Live snapshot of this process's registry (mostly interesting
        # from the REPL or after an in-process sweep).
        export_memo_stats()
        snapshot = obs.snapshot()

    if args.prometheus:
        # Text exposition format: scrape-ready, round-trips the snapshot.
        sys.stdout.write(obs.snapshot_to_prometheus(snapshot))
        return 0

    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    histograms = snapshot.get("histograms", {})
    if counters:
        table = Table("counters", ["name", "value"])
        for name in sorted(counters):
            table.add_row(name, str(counters[name]))
        print(table.render())
    if gauges:
        table = Table("gauges", ["name", "value"])
        for name in sorted(gauges):
            table.add_row(name, str(gauges[name]))
        print(table.render())
    if histograms:
        table = Table("histograms", ["name", "count", "sum", "min", "max"])
        for name in sorted(histograms):
            hist = histograms[name]
            table.add_row(name, str(hist.get("count")),
                          str(hist.get("sum")), str(hist.get("min")),
                          str(hist.get("max")))
        print(table.render())
    if not (counters or gauges or histograms):
        print("no metrics recorded")
    return 0


def command_audit(args) -> int:
    """Inspect and verify the hash-chained enforcement audit ledger."""
    import json

    from .obs.audit import (NOTICE_KINDS, ledger_stats, load_ledger,
                            query_records, tail_records, verify_ledger)

    if args.action == "verify":
        result = verify_ledger(args.ledger)
        if args.json:
            print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
        else:
            for problem in result.problems:
                print(problem, file=sys.stderr)
            seal = "sealed" if result.sealed else "no head file"
            status = "ok" if result.ok else "TAMPERED"
            print(f"{args.ledger}: {status} — {result.records} record(s), "
                  f"{seal}")
        return 0 if result.ok else 1

    if args.action == "tail":
        records = tail_records(args.ledger, count=args.count)
    else:
        records = load_ledger(args.ledger)

    if args.action in ("tail", "query"):
        if args.action == "query":
            if args.kind is not None and args.kind not in NOTICE_KINDS:
                raise ReproError(
                    f"unknown notice kind {args.kind!r}; "
                    f"known: {', '.join(sorted(NOTICE_KINDS))}")
            records = query_records(records, tenant=args.tenant,
                                    kind=args.kind,
                                    endpoint=args.endpoint,
                                    since=args.since, until=args.until)
        if args.json:
            print(json.dumps(records, indent=2, sort_keys=True))
        else:
            # One canonical JSON object per line — the ledger's own
            # format, so output pipes straight back into jq/grep.
            for record in records:
                print(json.dumps(record, sort_keys=True,
                                 separators=(",", ":")))
        return 0

    # stats
    stats = ledger_stats(records, window=args.window)
    if args.json:
        print(json.dumps(stats, indent=2, sort_keys=True))
        return 0
    table = Table(f"per-tenant decisions ({stats['records']} record(s))",
                  ["tenant", "total", "accepts", "notices", "rate",
                   f"last-{args.window}", "spike"])
    for tenant in sorted(stats["tenants"]):
        row = stats["tenants"][tenant]
        window = row["window"]
        table.add_row(tenant, str(row["total"]), str(row["accepts"]),
                      str(row["notices"]),
                      f"{row['violation_rate']:.3f}",
                      f"{window['rate']:.3f}",
                      "SPIKE" if window["spike"] else "-")
    print(table.render())
    spiked = [tenant for tenant in sorted(stats["tenants"])
              if stats["tenants"][tenant]["window"]["spike"]]
    if spiked:
        print(f"violation-rate spike(s): {', '.join(spiked)}")
    return 0


def command_lint(args) -> int:
    import json

    from .analysis import PassManager, precision_harness

    if args.all:
        if args.library or args.source or args.file:
            raise ReproError(
                "--all lints the whole library; it excludes "
                "--library/--source/--file")
        flowcharts = [LIBRARY[name]() for name in sorted(LIBRARY)]
    else:
        flowcharts = [_load_flowchart(args)]

    manager = PassManager.with_default_passes()
    reports = []
    for flowchart in flowcharts:
        policy = None
        if args.policy:
            try:
                policy = parse_policy(args.policy, arity=flowchart.arity)
            except ReproError:
                if not args.all:
                    raise
                # Lint-the-library mode: a policy naming an input this
                # program lacks simply skips the influence verdict.
                policy = None
        reports.append(manager.run(flowchart, policy))

    exit_code = 1 if any(report.has_errors for report in reports) else 0

    precision = None
    if args.precision:
        precision = precision_harness(
            flowcharts,
            grid=lambda arity: ProductDomain.integer_grid(
                args.low, args.high, arity))
        if precision.unsound_pairs():
            exit_code = 1

    if args.json:
        payload = {
            "programs": len(reports),
            "errors": sum(len(report.errors) for report in reports),
            "exit_code": exit_code,
            "reports": [report.to_dict() for report in reports],
        }
        if precision is not None:
            payload["precision"] = precision.to_dict()
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for report in reports:
            print(report.render())
            print()
        if precision is not None:
            print(precision.render())
            print()
        total = sum(len(report.diagnostics) for report in reports)
        errors = sum(len(report.errors) for report in reports)
        print(f"{len(reports)} program(s) linted: {total} diagnostic(s), "
              f"{errors} error(s)")
    return exit_code


def command_serve(args) -> int:
    """Run the multi-tenant enforcement service (see docs/SERVING.md).

    This is the one place the serving stack reads the environment: the
    server's startup flushes the four env caches and captures their
    values as explicit defaults, so handlers never consult
    ``os.environ`` again.
    """
    import asyncio
    import signal as _signal

    # Lazy: the serve package imports the CLI's LIBRARY (late, for
    # request validation); importing it lazily here keeps `repro run`
    # and friends free of asyncio machinery.
    from .serve import ReproServer, ServerConfig, TenantRegistry

    _check_positive("--value-cap", args.value_cap)
    _check_positive("--fuel", args.fuel)
    if not 0.0 <= args.audit_sample <= 1.0:
        raise ReproError(
            f"--audit-sample must be in [0, 1]; got {args.audit_sample}")
    _check_positive("--audit-max-bytes", args.audit_max_bytes)
    if args.tenants:
        try:
            tenants = TenantRegistry.from_file(args.tenants)
        except (OSError, ValueError) as error:
            raise ReproError(
                f"cannot load tenants config {args.tenants!r}: {error}")
    else:
        tenants = None

    trace_sink = None
    if args.trace:
        from . import obs

        trace_sink = obs.JsonlSink(args.trace)
        obs.enable(metrics=True, sinks=[trace_sink], reset=True)

    config = ServerConfig(
        host=args.host, port=args.port, tenants=tenants,
        fuel=args.fuel, value_cap=args.value_cap,
        backend=args.backend or "batch", lane_engine=args.lanes,
        executor=args.executor, jobs=args.jobs,
        batch_window_ms=args.batch_window_ms,
        cache_size=args.cache_size, workers=args.workers,
        audit_path=args.audit, audit_sample=args.audit_sample,
        audit_max_bytes=args.audit_max_bytes)

    async def _run() -> None:
        server = ReproServer(config)
        await server.start()
        # SIGINT/SIGTERM stop the serving loop gracefully: in-flight
        # requests drain, the root span closes, sinks get the whole
        # tree (the CI serve trace is validated for exactly this).
        loop = asyncio.get_running_loop()
        for signum in (_signal.SIGINT, _signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, server.request_stop)
            except (NotImplementedError, RuntimeError):
                pass  # non-main thread or exotic platform
        print(f"repro serve listening on "
              f"http://{config.host}:{server.port} "
              f"[backend={server.default_backend} fuel={server.fuel} "
              f"value_cap={server.default_value_cap}]", flush=True)
        await server.wait_stopped()

    try:
        asyncio.run(_run())
        print("repro serve: shut down cleanly", file=sys.stderr)
    except KeyboardInterrupt:
        print("repro serve: interrupted", file=sys.stderr)
    finally:
        if trace_sink is not None:
            from . import obs

            obs.disable()
            trace_sink.close()
    return 0


def command_dot(args) -> int:
    from .flowchart.dot import to_dot

    flowchart = _load_flowchart(args)
    if args.instrument:
        from .surveillance import instrument

        policy = parse_policy(args.instrument, arity=flowchart.arity)
        flowchart = instrument(flowchart, policy)
    print(to_dot(flowchart))
    return 0


#: The experiment index (see DESIGN.md / EXPERIMENTS.md).
EXPERIMENTS = (
    ("E01", "Example 3", "trivial mechanisms", "bench_e01_trivial.py"),
    ("E02", "Theorem 1", "union of sound mechanisms", "bench_e02_union.py"),
    ("E03", "Theorem 2", "maximal mechanism", "bench_e03_maximal.py"),
    ("E04", "Theorem 3", "surveillance soundness + instrumentation",
     "bench_e04_surveillance.py"),
    ("E05", "Theorem 3'", "observable time: M vs M'", "bench_e05_timed.py"),
    ("E06", "p.48", "surveillance vs high-water", "bench_e06_highwater.py"),
    ("E07", "p.49", "surveillance not maximal", "bench_e07_not_maximal.py"),
    ("E08", "Example 7", "ite transform helps", "bench_e08_ite_transform.py"),
    ("E09", "Example 8", "transform hurts", "bench_e09_transform_hurts.py"),
    ("E10", "Example 9", "assignment duplication", "bench_e10_duplication.py"),
    ("E11", "Section 2", "timing channel", "bench_e11_timing.py"),
    ("E12", "Section 2", "tape + tab(i)", "bench_e12_tape.py"),
    ("E13", "Example 5", "logon program", "bench_e13_logon.py"),
    ("E14", "Section 2", "password work factor", "bench_e14_workfactor.py"),
    ("E15", "Example 1", "Fenton halt semantics", "bench_e15_fenton.py"),
    ("E16", "Examples 2/4", "file-system monitors",
     "bench_e16_filesystem.py"),
    ("E17", "Theorem 4", "non-effectiveness", "bench_e17_undecidable.py"),
    ("E18", "Section 5", "static vs dynamic", "bench_e18_static.py"),
    ("E19", "Section 2", "lattice of sound mechanisms",
     "bench_e19_lattice.py"),
    ("E20", "Section 2 dual", "data security", "bench_e20_integrity.py"),
    ("E21", "Example 6/§6", "capability systems",
     "bench_e21_capability.py"),
    ("E22", "Section 2", "resource-usage channel",
     "bench_e22_resource_channel.py"),
    ("E23", "Section 5", "efficient enforcement",
     "bench_e23_efficiency.py"),
    ("E24", "§4 Ruzzo", "halting-oracle maximal mechanism",
     "bench_e24_ruzzo.py"),
    ("E25", "Section 2", "history-dependent sessions",
     "bench_e25_history.py"),
    ("E26", "Section 6", "cross-model enforcement (Fenton compiler)",
     "bench_e26_cross_model.py"),
    ("E27", "Section 6", "page-fault observable ladder",
     "bench_e27_page_faults.py"),
)


def command_experiments(args) -> int:
    table = Table("experiment index (EXPERIMENTS.md has paper-vs-measured)",
                  ["id", "paper anchor", "claim", "bench"])
    for row in EXPERIMENTS:
        table.add_row(*row)
    print(table.render())
    return 0


def command_library(args) -> int:
    table = Table("built-in figure programs", ["name", "inputs", "boxes"])
    for name in sorted(LIBRARY):
        flowchart = LIBRARY[name]()
        table.add_row(name, ", ".join(flowchart.input_variables),
                      len(flowchart.boxes))
    print(table.render())
    return 0


def command_dist(args) -> int:
    """``repro dist run``: a multi-node enforcement run vs its serial row."""
    from . import obs
    from .dist import run_distributed, serial_reference
    from .verify.chaos import FaultPlan

    _check_positive("--fuel", args.fuel)
    _check_positive("--value-cap", args.value_cap)
    _check_positive("--nodes", args.nodes)
    _check_positive("--timeout", args.timeout, kind="number of seconds")
    flowchart = _load_flowchart(args)
    if not flowchart.has_channels():
        print("note: program has no send/recv boxes; the run is "
              "distributed anyway (control migrates between nodes)",
              file=sys.stderr)
    policy = parse_policy(args.policy, flowchart.arity)
    inputs = tuple(int(value) for value in args.inputs)
    plan = FaultPlan.parse(args.chaos) if args.chaos else None

    sinks = []
    if args.trace:
        sinks.append(obs.JsonlSink(args.trace))
    if sinks:
        obs.enable(metrics=True, sinks=sinks, reset=True)
    try:
        reference = serial_reference(flowchart, inputs, policy.allowed,
                                     fuel=args.fuel,
                                     value_cap=args.value_cap)
        result = run_distributed(flowchart, inputs, policy.allowed,
                                 nodes=args.nodes, plan=plan,
                                 fuel=args.fuel, value_cap=args.value_cap,
                                 timeout=args.timeout)
    finally:
        if sinks:
            obs.disable()
            for sink in sinks:
                sink.close()

    row = result.row()
    print(f"program:  {flowchart.name} on {inputs}")
    print(f"nodes:    {args.nodes}  (crashes={result.crashes}, "
          f"recoveries={result.recoveries})")
    print(f"messages: {result.messages_sent} sent, "
          f"{result.messages_retried} retried")
    print(f"serial:   outcome={reference['outcome']} "
          f"steps={reference['steps']}")
    print(f"dist:     outcome={row['outcome']} steps={row['steps']} "
          f"({result.elapsed_s}s)")
    if reference == row:
        print("rows match: serial == distributed")
        return 0
    if (plan is not None and plan.msg_corrupt > 0
            and row["outcome"].startswith("Λ!msg[corrupt:")):
        # A corrupting plan is *expected* to diverge — but only into the
        # totalized notice, never into a silent wrong answer.
        print("rows differ: corruption totalized as "
              f"{row['outcome']} (expected under a corrupting plan)")
        return 0
    print("rows DIFFER: the distributed run is not the serial run",
          file=sys.stderr)
    return 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Jones & Lipton (1975) policy-enforcement toolkit")
    commands = parser.add_subparsers(dest="command", required=True)

    run_parser = commands.add_parser("run", help="execute a program")
    _add_program_arguments(run_parser)
    _add_backend_argument(run_parser)
    run_parser.add_argument("--fuel", type=int, default=100_000)
    run_parser.add_argument("--value-cap", type=int, default=None,
                            help="bit-length budget per assigned value "
                                 "(default: REPRO_VALUE_CAP or uncapped)")
    run_parser.add_argument("inputs", nargs="+",
                            help="integer inputs, in order")
    run_parser.set_defaults(handler=command_run)

    analyze_parser = commands.add_parser(
        "analyze", help="soundness/acceptance of a mechanism")
    _add_program_arguments(analyze_parser)
    analyze_parser.add_argument("--policy", required=True,
                                help='e.g. "allow(2)"')
    analyze_parser.add_argument("--mechanism", choices=MECHANISMS,
                                default="surveillance")
    analyze_parser.add_argument("--low", type=int, default=0)
    analyze_parser.add_argument("--high", type=int, default=3)
    analyze_parser.add_argument("--time", action="store_true",
                                help="make running time observable")
    analyze_parser.add_argument("--verbose", action="store_true",
                                help="print per-input verdicts")
    _add_backend_argument(analyze_parser)
    analyze_parser.set_defaults(handler=command_analyze)

    sweep_parser = commands.add_parser(
        "sweep", help="soundness sweep over library programs "
                      "(optionally parallel)")
    from .verify import EXECUTORS, FACTORIES
    sweep_parser.add_argument("--programs",
                              help="comma-separated library names "
                                   "(default: all)")
    sweep_parser.add_argument("--mechanism", choices=sorted(FACTORIES),
                              default="surveillance")
    sweep_parser.add_argument("--executor", choices=EXECUTORS,
                              default="auto")
    sweep_parser.add_argument("--jobs", type=int, default=None,
                              help="worker count (default: cpu count)")
    sweep_parser.add_argument("--low", type=int, default=0)
    sweep_parser.add_argument("--high", type=int, default=2)
    sweep_parser.add_argument("--fuel", type=int, default=100_000,
                              help="step budget per mechanism run; "
                                   "exhausted runs record the "
                                   "distinguished fuel notice")
    sweep_parser.add_argument("--chunk-size", type=int, default=None,
                              help="grid points per pool task")
    sweep_parser.add_argument("--chunk-timeout", type=float, default=None,
                              help="seconds before a pooled chunk is "
                                   "abandoned and retried")
    sweep_parser.add_argument("--retries", type=int, default=2,
                              help="pool retries per failed chunk before "
                                   "inline recovery")
    sweep_parser.add_argument("--value-cap", type=int, default=None,
                              help="bit-length budget per assigned value; "
                                   "wider values record the distinguished "
                                   "cap notice (default: REPRO_VALUE_CAP "
                                   "or uncapped)")
    sweep_parser.add_argument("--checkpoint", metavar="PATH",
                              help="journal completed chunks to PATH "
                                   "(crash-safe JSONL; see --resume)")
    sweep_parser.add_argument("--resume", action="store_true",
                              help="restore completed chunks from the "
                                   "--checkpoint journal before sweeping")
    sweep_parser.add_argument("--deadline", type=float, default=None,
                              help="wall-clock budget in seconds; an "
                                   "expired sweep drains, journals, and "
                                   "exits 124")
    sweep_parser.add_argument("--chaos", metavar="SPEC",
                              help="inject deterministic faults, e.g. "
                                   '"seed=3,crash=0.2,delay=0.1,'
                                   'poison=1:2" (testing/CI)')
    sweep_parser.add_argument("--results-json", metavar="PATH",
                              help="write the sweep rows as JSON for "
                                   "machine comparison")
    sweep_parser.add_argument("--progress", action="store_true",
                              help="print per-pair progress to stderr")
    sweep_parser.add_argument("--metrics-json", metavar="PATH",
                              help="write the metrics registry snapshot "
                                   "as JSON after the sweep")
    sweep_parser.add_argument("--trace", metavar="PATH",
                              help="write the structured JSONL trace-event "
                                   "stream to PATH")
    sweep_parser.add_argument("--explain", action="store_true",
                              help="attach violation provenance "
                                   "(explanation events) to the trace; "
                                   "requires --trace")
    sweep_parser.add_argument("--audit", metavar="PATH",
                              help="append every enforcement decision to "
                                   "a hash-chained audit ledger at PATH "
                                   "(bit-identical across executors; see "
                                   "repro audit)")
    _add_backend_argument(sweep_parser)
    sweep_parser.set_defaults(handler=command_sweep)

    explain_parser = commands.add_parser(
        "explain", help="violation provenance: the input-index influence "
                        "chain behind a mechanism verdict")
    _add_program_arguments(explain_parser)
    explain_parser.add_argument("--policy", required=True,
                                help='e.g. "allow(1)"')
    explain_parser.add_argument("--timed", action="store_true",
                                help="Theorem 3' mechanism (halts before "
                                     "disallowed tests)")
    explain_parser.add_argument("--static", action="store_true",
                                help="derive the chain from the flowlint "
                                     "influence fixpoint (no point needed)")
    explain_parser.add_argument("--fuel", type=int, default=100_000)
    explain_parser.add_argument("--json", action="store_true",
                                help="machine-readable explanation")
    explain_parser.add_argument("inputs", nargs="*",
                                help="the point to replay (integer inputs)")
    explain_parser.set_defaults(handler=command_explain)

    trace_parser = commands.add_parser(
        "trace", help="offline analytics over a JSONL trace "
                      "(see sweep --trace)")
    trace_parser.add_argument("action",
                              choices=("summarize", "slow", "explain",
                                       "spans"),
                              help="summarize | slow | explain | spans")
    trace_parser.add_argument("trace", help="path to the JSONL trace file")
    trace_parser.add_argument("--top", type=int, default=10,
                              help="spans to list (slow)")
    trace_parser.add_argument("--point", metavar="I,J,...",
                              help="filter explanations to one point, "
                                   'e.g. "2,3" (explain)')
    trace_parser.add_argument("--program",
                              help="filter explanations by program name "
                                   "(explain)")
    trace_parser.add_argument("--tree", action="store_true",
                              help="print the reconstructed span tree "
                                   "(spans)")
    trace_parser.add_argument("--max-children", type=int, default=0,
                              help="truncate wide tree levels to N children "
                                   "(spans; 0 = unlimited)")
    trace_parser.add_argument("--expect-single-root", action="store_true",
                              help="exit 1 unless the spans form exactly "
                                   "one rooted tree (spans)")
    trace_parser.add_argument("--json", action="store_true",
                              help="machine-readable output")
    trace_parser.set_defaults(handler=command_trace)

    metrics_parser = commands.add_parser(
        "metrics", help="observability: registry snapshots, trace "
                        "validation, event schema")
    metrics_parser.add_argument("--schema", action="store_true",
                                help="print the trace-event schema as JSON")
    metrics_parser.add_argument("--validate", metavar="TRACE",
                                help="validate a JSONL trace file against "
                                     "the event schema")
    metrics_parser.add_argument("--from-json", metavar="PATH",
                                help="render a --metrics-json snapshot file")
    metrics_parser.add_argument("--prometheus", action="store_true",
                                help="print the snapshot in Prometheus "
                                     "text-exposition format")
    metrics_parser.set_defaults(handler=command_metrics)

    audit_parser = commands.add_parser(
        "audit", help="inspect and verify the hash-chained enforcement "
                      "audit ledger (see serve/sweep --audit)")
    audit_parser.add_argument("action",
                              choices=("tail", "query", "stats", "verify"),
                              help="tail | query | stats | verify")
    audit_parser.add_argument("ledger",
                              help="path to the audit JSONL ledger")
    audit_parser.add_argument("--count", type=int, default=10,
                              help="records to show (tail)")
    audit_parser.add_argument("--tenant",
                              help="filter by tenant name (query)")
    audit_parser.add_argument("--kind",
                              help="filter by notice kind: accept | fuel | "
                                   "cap | crash | epoch | violation (query)")
    audit_parser.add_argument("--endpoint",
                              help="filter by endpoint, e.g. /execute or "
                                   "sweep (query)")
    audit_parser.add_argument("--since", type=float, default=None,
                              help="unix-time lower bound; records without "
                                   "a timestamp are excluded (query)")
    audit_parser.add_argument("--until", type=float, default=None,
                              help="unix-time upper bound (query)")
    audit_parser.add_argument("--window", type=int, default=50,
                              help="rolling window for the spike flag "
                                   "(stats)")
    audit_parser.add_argument("--json", action="store_true",
                              help="machine-readable output")
    audit_parser.set_defaults(handler=command_audit)

    certify_parser = commands.add_parser(
        "certify", help="static certification (structured source only)")
    certify_parser.add_argument("--library",
                                help="a built-in figure program "
                                     "(CFG-level certifier)")
    certify_parser.add_argument("--source")
    certify_parser.add_argument("--file")
    certify_parser.add_argument("--policy", required=True)
    certify_parser.set_defaults(handler=command_certify)

    lint_parser = commands.add_parser(
        "lint", help="flowlint: static analysis passes over a program "
                     "or the whole library")
    _add_program_arguments(lint_parser)
    lint_parser.add_argument("--all", action="store_true",
                             help="lint every built-in library program")
    lint_parser.add_argument("--policy",
                             help="allow policy for the influence verdict, "
                                  'e.g. "allow(2)" (optional)')
    lint_parser.add_argument("--json", action="store_true",
                             help="machine-readable report on stdout")
    lint_parser.add_argument("--precision", action="store_true",
                             help="append the static-vs-dynamic precision "
                                  "harness (all allow policies x grid)")
    lint_parser.add_argument("--low", type=int, default=0,
                             help="precision grid lower bound")
    lint_parser.add_argument("--high", type=int, default=2,
                             help="precision grid upper bound")
    lint_parser.set_defaults(handler=command_lint)

    library_parser = commands.add_parser(
        "library", help="list built-in figure programs")
    library_parser.set_defaults(handler=command_library)

    transform_parser = commands.add_parser(
        "transform", help="apply a Section 4/5 transform")
    _add_program_arguments(transform_parser)
    transform_parser.add_argument("--transform", required=True,
                                  choices=("ite", "while", "duplicate"))
    transform_parser.add_argument("--smart", action="store_true",
                                  help="detect identical arms (ite only)")
    transform_parser.add_argument("--check", action="store_true",
                                  help="verify functional equivalence")
    transform_parser.add_argument("--low", type=int, default=0)
    transform_parser.add_argument("--high", type=int, default=3)
    transform_parser.set_defaults(handler=command_transform)

    dot_parser = commands.add_parser(
        "dot", help="render a flowchart as Graphviz DOT")
    _add_program_arguments(dot_parser)
    dot_parser.add_argument("--instrument", metavar="POLICY",
                            help="render the surveillance instrumentation "
                                 'for a policy, e.g. "allow(2)"')
    dot_parser.set_defaults(handler=command_dot)

    experiments_parser = commands.add_parser(
        "experiments", help="list the experiment index E01-E27")
    experiments_parser.set_defaults(handler=command_experiments)

    dist_parser = commands.add_parser(
        "dist", help="distributed enforcement across node processes")
    dist_commands = dist_parser.add_subparsers(dest="dist_command",
                                               required=True)
    dist_run = dist_commands.add_parser(
        "run", help="run a program across N nodes and compare with the "
                    "serial row")
    _add_program_arguments(dist_run)
    dist_run.add_argument("--policy", required=True,
                          help='the allow policy, e.g. "allow(1, 2)"')
    dist_run.add_argument("--nodes", type=int, default=2,
                          help="node process count (default 2)")
    dist_run.add_argument("--chaos", metavar="SPEC", default=None,
                          help="seeded fault plan, e.g. "
                               '"seed=7,drop=0.2,dup=0.1,kill=0.05" '
                               "(see repro.verify.chaos.FaultPlan.parse)")
    dist_run.add_argument("--fuel", type=int, default=100_000)
    dist_run.add_argument("--value-cap", type=int, default=None,
                          help="bit-length budget per assigned value")
    dist_run.add_argument("--timeout", type=float, default=60.0,
                          help="supervision deadline in seconds")
    dist_run.add_argument("--trace", metavar="PATH", default=None,
                          help="write a JSONL trace (cross-node span "
                               "tree; inspect with repro trace spans)")
    dist_run.add_argument("inputs", nargs="+",
                          help="integer inputs, in order")
    dist_run.set_defaults(handler=command_dist)

    serve_parser = commands.add_parser(
        "serve", help="run the multi-tenant enforcement service "
                      "(HTTP/JSON; see docs/SERVING.md)")
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=8080,
                              help="listen port (0 = ephemeral; the bound "
                                   "port is printed at startup)")
    serve_parser.add_argument("--tenants", metavar="PATH",
                              help="JSON tenant-budget config; omitting it "
                                   "admits everyone under the defaults")
    serve_parser.add_argument("--fuel", type=int, default=100_000,
                              help="server default fuel ceiling")
    serve_parser.add_argument("--value-cap", type=int, default=None,
                              help="server default value cap (default: "
                                   "REPRO_VALUE_CAP, read once at startup)")
    _add_backend_argument(serve_parser)
    serve_parser.add_argument("--lanes", choices=("auto", "numpy", "python"),
                              default=None,
                              help="batch-tier lane engine (default: "
                                   "REPRO_BATCH_LANES, read once at "
                                   "startup)")
    serve_parser.add_argument("--executor", choices=("auto", "serial",
                                                     "thread", "process"),
                              default="thread",
                              help="sweep executor (default: thread — "
                                   "pools degrade process→thread→serial "
                                   "on failure)")
    serve_parser.add_argument("--jobs", type=int, default=None,
                              help="sweep worker count")
    serve_parser.add_argument("--workers", type=int, default=8,
                              help="request worker threads")
    serve_parser.add_argument("--batch-window-ms", type=float, default=2.0,
                              help="coalescing window for /execute "
                                   "batching")
    serve_parser.add_argument("--cache-size", type=int, default=4096,
                              help="shared response-cache entries")
    serve_parser.add_argument("--trace", metavar="PATH",
                              help="write the structured JSONL trace-event "
                                   "stream to PATH")
    serve_parser.add_argument("--audit", metavar="PATH",
                              help="append every enforcement decision to a "
                                   "hash-chained audit ledger at PATH "
                                   "(per-tenant opt-out/sampling via the "
                                   "tenants config; see repro audit)")
    serve_parser.add_argument("--audit-sample", type=float, default=1.0,
                              help="server-wide ledger sampling rate in "
                                   "[0, 1] (default 1.0; tenants may thin "
                                   "further, never widen)")
    serve_parser.add_argument("--audit-max-bytes", type=int, default=None,
                              help="rotate the ledger when it would exceed "
                                   "this size (generations keep their own "
                                   "chains and head seals)")
    serve_parser.set_defaults(handler=command_serve)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        # argparse already printed a usage message (unknown subcommand,
        # bad --backend choice, --help, ...).  Surface its status as a
        # return code so programmatic callers get an int, not an
        # exception unwinding as a traceback.
        if exc.code is None:
            return 0
        if isinstance(exc.code, int):
            return exc.code
        print(exc.code, file=sys.stderr)
        return 2
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream pager/head closed the pipe mid-table; not an error.
        # Detach stdout so interpreter shutdown does not re-raise on flush.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
