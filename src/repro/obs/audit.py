"""Tamper-evident enforcement audit ledger.

The paper's mechanisms decide accept-or-notice for every computation
they surveil; this module makes those decisions *durable and
auditable*.  An :class:`AuditLedger` is an append-only JSONL file in
which every record is hash-chained to its predecessor:

- a record is the decision payload (decision, notice, tenant,
  endpoint, span, budget fingerprint, provenance pointer, optional
  wall-clock ``ts``) plus two envelope fields — ``rec``, the 0-based
  chain index, and ``prev``, the sha256 of the *previous line's exact
  bytes* (the genesis record chains to 64 zeros);
- every line is canonical JSON (sorted keys, compact separators), so
  the line bytes *are* the canonical encoding and the chain hash is
  "sha256 over canonical JSON" by construction;
- a sidecar head file (``<path>.head``) is atomically replaced with
  ``{"records": N, "head": H}`` — the seal that lets
  :func:`verify_ledger` detect tail truncation and mutation of the
  final record, which an intra-file chain alone cannot see.  By
  default the seal is replaced on every append; a hot path may pass
  ``seal_every=N`` to amortise the replace over N records, or
  ``seal_every=0`` to seal only on batch/flush/close (the server
  stages decisions and drains them through :meth:`append_batch` from
  a periodic task, keeping both the write and the seal off the
  request path) — rotation, batch appends, flush, and close always
  re-seal, so any cleanly quiesced ledger seals exactly.  Every seal
  fsyncs the data file before the sidecar's atomic replace (and the
  sidecar before the replace), so a sealed prefix is durable against
  power loss; ``durable=False`` opts a hot path back down to
  flush-only crash consistency.

Tamper detection is total: flipping any single byte of any line either
breaks that line's JSON, changes its parsed content (so the next
record's ``prev`` no longer matches), or — on the last line — breaks
the sidecar seal.  Dropping or swapping lines breaks the ``rec``
sequence and the chain.  ``repro audit verify`` reports the 1-based
record number of the first break.

Determinism: records carry no wall clock unless the caller passes
``ts``, and sampling is *content-hash based*, so a process-pool sweep
whose chunk segments are merged parent-side in chunk order produces a
ledger bit-identical to a serial sweep's (the acceptance test diffs
the files).  The serve path does pass ``ts`` — audit queries support
time windows there.

Rotation is size-based: when the active file would exceed
``max_bytes`` the file and its sidecar are shifted to ``<path>.1``
(older generations renumber up to ``keep``) and a fresh chain starts
at genesis, so every generation verifies standalone.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections import deque
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..core.errors import ReproError
from . import runtime as _obs

__all__ = [
    "GENESIS", "AuditLedger", "AuditVerifyResult", "SpikeTracker",
    "budget_fingerprint", "classify_notice", "decision_payload",
    "iter_ledger", "ledger_stats", "load_ledger", "merge_segments",
    "query_records", "record_hash", "sampled_in", "tail_records",
    "verify_ledger",
]

#: The ``prev`` value of the first record in every chain.
GENESIS = "0" * 64

#: Decision kinds :func:`classify_notice` maps notices onto.
NOTICE_KINDS = ("accept", "violation", "epoch", "fuel", "cap", "crash")


def _canonical(record: Dict) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def record_hash(line: str) -> str:
    """sha256 of one ledger line's exact bytes (newline excluded)."""
    return hashlib.sha256(line.encode("utf-8")).hexdigest()


def budget_fingerprint(fuel: Optional[int] = None,
                       value_cap: Optional[int] = None,
                       backend: Optional[str] = None,
                       lane_engine: Optional[str] = None) -> str:
    """A short stable hash of an enforcement budget tuple.

    Same canonical-JSON discipline as the checkpoint config
    fingerprint; 16 hex chars is plenty to distinguish budgets while
    keeping records small.  ``None`` fields are omitted, so "uncapped"
    and "cap absent" fingerprint identically — they are the same
    budget.
    """
    descriptor = {key: value for key, value in (
        ("fuel", fuel), ("value_cap", value_cap), ("backend", backend),
        ("lane_engine", lane_engine)) if value is not None}
    canonical = _canonical(descriptor)
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def classify_notice(notice: Optional[str]) -> str:
    """Map a notice string onto its kind (``accept`` for ``None``).

    The taxonomy follows the notice grammar: ``Λ!fuel[N]`` (fuel
    exhaustion), ``Λ!cap[C]`` (value-magnitude cap), ``Λ!crash[T]``
    (quarantined crash), ``Λ@e{n}`` (epoch-tagged dynamic-policy
    violation), and plain ``Λ`` (including timed ``(Λ, t)`` renderings)
    for everything else.
    """
    if notice is None:
        return "accept"
    if "Λ!fuel" in notice:
        return "fuel"
    if "Λ!cap" in notice:
        return "cap"
    if "Λ!crash" in notice:
        return "crash"
    if "Λ@e" in notice:
        return "epoch"
    return "violation"


def decision_payload(decision: str, notice: Optional[str] = None,
                     tenant: Optional[str] = None,
                     endpoint: Optional[str] = None,
                     span: Optional[str] = None,
                     budget: Optional[str] = None,
                     provenance: Optional[Dict] = None,
                     ts: Optional[float] = None) -> Dict:
    """Build one decision payload (the record minus envelope fields).

    ``provenance`` is the pointer ``repro explain`` replays: at least
    ``program`` and ``policy``, plus ``point`` for dynamic rejections.
    ``None`` fields are omitted so deterministic producers (sweeps)
    and timestamped ones (serve) share one schema.
    """
    if decision not in ("accept", "notice"):
        raise ReproError(f"audit decision must be 'accept' or 'notice', "
                         f"got {decision!r}")
    payload: Dict = {"decision": decision,
                     "kind": classify_notice(notice)}
    for key, value in (("notice", notice), ("tenant", tenant),
                       ("endpoint", endpoint), ("span", span),
                       ("budget", budget), ("provenance", provenance)):
        if value is not None:
            payload[key] = value
    if ts is not None:
        payload["ts"] = round(float(ts), 6)
    return payload


def sampled_in(payload: Dict, sample: float) -> bool:
    """Deterministic content-hash sampling: same payload, same verdict."""
    if sample >= 1.0:
        return True
    if sample <= 0.0:
        return False
    digest = hashlib.sha256(_canonical(payload).encode()).hexdigest()
    return int(digest[:8], 16) / float(0xFFFFFFFF) < sample


class AuditVerifyResult:
    """The outcome of :func:`verify_ledger`: ``ok``, counts, problems."""

    __slots__ = ("ok", "records", "problems", "sealed")

    def __init__(self, ok: bool, records: int, problems: List[str],
                 sealed: bool) -> None:
        self.ok = ok
        self.records = records
        self.problems = problems
        self.sealed = sealed

    def to_dict(self) -> Dict:
        return {"ok": self.ok, "records": self.records,
                "sealed": self.sealed, "problems": self.problems}


class AuditLedger:
    """Append-only hash-chained decision ledger; thread-safe.

    Opening an existing path resumes its chain (from the sidecar when
    intact, else by rescanning the file); ``fresh=True`` truncates.
    ``sample`` drops a deterministic fraction of :meth:`append` calls;
    ``max_bytes`` rotates generations (``keep`` retained);
    ``seal_every`` defers the sidecar seal to every Nth append, and
    ``seal_every=0`` never seals inline — the owner seals via
    :meth:`flush` (the server does, from a periodic task off the
    request path, because the seal's atomic replace occasionally
    blocks for milliseconds on filesystem journaling).  Either way a
    crash can leave the seal behind the file — verify reports it, and
    a torn ledger *should* fail.

    ``durable`` (default on) fsyncs the data file and the sidecar at
    every seal boundary — per-append seals, batch seals, rotation,
    flush, close — so a sealed prefix survives power loss, not just
    process death.  Hot paths that already amortise sealing can pass
    ``durable=False`` to keep seals flush-only.
    """

    def __init__(self, path: str, sample: float = 1.0,
                 max_bytes: Optional[int] = None, keep: int = 3,
                 fresh: bool = False, seal_every: int = 1,
                 durable: bool = True) -> None:
        self.path = path
        self.sample = float(sample)
        self.max_bytes = max_bytes
        self.keep = max(1, int(keep))
        self.seal_every = max(0, int(seal_every))
        self.durable = bool(durable)
        self._lock = threading.Lock()
        self._records = 0
        self._head = GENESIS
        self._size = 0
        self._unsealed = 0
        torn = False
        if not fresh and os.path.exists(path):
            torn = self._truncate_torn_tail(path)
            self._records, self._head = (self._rescan(path) if torn
                                         else self._resume(path))
            self._size = os.path.getsize(path)
        self._file = open(path, "a" if not fresh else "w", encoding="utf-8")
        if fresh or torn:
            self._write_head()

    @staticmethod
    def head_path(path: str) -> str:
        return path + ".head"

    @staticmethod
    def _truncate_torn_tail(path: str) -> bool:
        """Drop an unterminated final line (a torn mid-write crash tail).

        A record exists only once its newline does — every seal runs
        after the full line was written — so truncating back to the
        last newline restores the longest well-formed prefix and lets
        the chain resume cleanly instead of gluing the next record
        onto half-written bytes.
        """
        with open(path, "rb+") as handle:
            data = handle.read()
            if not data or data.endswith(b"\n"):
                return False
            handle.truncate(data.rfind(b"\n") + 1)
        return True

    @staticmethod
    def _resume(path: str) -> Tuple[int, str]:
        head_path = AuditLedger.head_path(path)
        if os.path.exists(head_path):
            try:
                with open(head_path, encoding="utf-8") as handle:
                    head = json.load(handle)
                return int(head["records"]), str(head["head"])
            except (ValueError, KeyError, OSError):
                pass  # fall through to a rescan
        return AuditLedger._rescan(path)

    @staticmethod
    def _rescan(path: str) -> Tuple[int, str]:
        records, head = 0, GENESIS
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                line = line.rstrip("\n")
                if not line:
                    continue
                head = record_hash(line)
                records += 1
        return records, head

    @property
    def records(self) -> int:
        return self._records

    @property
    def head(self) -> str:
        return self._head

    # -- writing ------------------------------------------------------------

    def append(self, decision: str, notice: Optional[str] = None,
               tenant: Optional[str] = None, endpoint: Optional[str] = None,
               span: Optional[str] = None, budget: Optional[str] = None,
               provenance: Optional[Dict] = None,
               ts: Optional[float] = None,
               sample: Optional[float] = None) -> Optional[Dict]:
        """Record one enforcement decision; returns the sealed record.

        Returns ``None`` when content-hash sampling drops the payload
        (the deterministic coin every producer of this payload would
        flip the same way).  ``sample`` overrides the ledger's rate for
        this call — the server passes per-tenant rates through it.
        """
        payload = decision_payload(decision, notice=notice, tenant=tenant,
                                   endpoint=endpoint, span=span,
                                   budget=budget, provenance=provenance,
                                   ts=ts)
        rate = self.sample if sample is None else float(sample)
        if not sampled_in(payload, rate):
            return None
        return self.append_record(payload)

    def append_record(self, payload: Dict) -> Dict:
        """Chain and write one pre-built payload (no sampling)."""
        with self._lock:
            record = dict(payload)
            record["rec"] = self._records
            record["prev"] = self._head
            line = _canonical(record)
            if (self.max_bytes is not None and self._records > 0
                    and self._size + len(line) + 1 > self.max_bytes):
                self._rotate_locked()
                record["rec"] = 0
                record["prev"] = GENESIS
                line = _canonical(record)
            self._file.write(line + "\n")
            self._file.flush()
            self._head = record_hash(line)
            self._records += 1
            self._size += len(line.encode("utf-8")) + 1
            self._unsealed += 1
            if self.seal_every and self._unsealed >= self.seal_every:
                self._write_head()
        if _obs.active:
            _obs.registry.counter("audit.appended").inc()
            if _obs.trace_active:
                _obs.emit("audit_appended", rec=record["rec"],
                          decision=record["decision"],
                          endpoint=record.get("endpoint", ""))
        return record

    def append_batch(self, payloads: Iterable[Dict]) -> int:
        """Chain and write many payloads, sealing once at the end.

        One head-file replacement per batch instead of per record —
        the sweep's parent-side merge appends hundreds of segment
        records and the per-append seal dance would dominate its wall
        time.  A crash mid-batch leaves a stale seal, which verify
        reports as a problem; a torn sweep ledger *should* fail.
        """
        appended = 0
        records = []
        with self._lock:
            for payload in payloads:
                record = dict(payload)
                record["rec"] = self._records
                record["prev"] = self._head
                line = _canonical(record)
                if (self.max_bytes is not None and self._records > 0
                        and self._size + len(line) + 1 > self.max_bytes):
                    self._rotate_locked()
                    record["rec"] = 0
                    record["prev"] = GENESIS
                    line = _canonical(record)
                self._file.write(line + "\n")
                self._head = record_hash(line)
                self._records += 1
                self._size += len(line.encode("utf-8")) + 1
                records.append(record)
                appended += 1
            self._file.flush()
            if appended:
                self._write_head()
        if _obs.active and records:
            _obs.registry.counter("audit.appended").inc(appended)
            if _obs.trace_active:
                for record in records:
                    _obs.emit("audit_appended", rec=record["rec"],
                              decision=record["decision"],
                              endpoint=record.get("endpoint", ""))
        return appended

    def _write_head(self) -> None:
        # Seal boundary: the seal asserts "these N records exist with
        # this head hash", so the data must reach the disk *before* the
        # sidecar claims it does — else a power cut can leave a seal
        # pointing past the file's durable tail, which verify reports
        # as truncation of a ledger that never held those records.
        # ``durable=False`` (hot-path opt-out) keeps the old
        # flush-only behaviour: crash-consistent against process
        # death, not against power loss.
        if self.durable and not self._file.closed:
            self._file.flush()
            os.fsync(self._file.fileno())
        head_path = self.head_path(self.path)
        tmp = head_path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(_canonical({"records": self._records,
                                     "head": self._head}) + "\n")
            if self.durable:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(tmp, head_path)
        self._unsealed = 0

    def _rotate_locked(self) -> None:
        """Shift generations up and restart the chain at genesis."""
        if self._unsealed:
            self._write_head()  # the retired generation must seal exactly
        self._file.close()
        rotated_records = self._records
        oldest = f"{self.path}.{self.keep}"
        for target in (oldest, self.head_path(oldest)):
            if os.path.exists(target):
                os.remove(target)
        for generation in range(self.keep - 1, 0, -1):
            source = f"{self.path}.{generation}"
            target = f"{self.path}.{generation + 1}"
            for suffix in ("", ".head"):
                if os.path.exists(source + suffix):
                    os.replace(source + suffix, target + suffix)
        os.replace(self.path, f"{self.path}.1")
        if os.path.exists(self.head_path(self.path)):
            os.replace(self.head_path(self.path),
                       self.head_path(f"{self.path}.1"))
        self._file = open(self.path, "w", encoding="utf-8")
        self._records = 0
        self._head = GENESIS
        self._size = 0
        self._write_head()
        if _obs.active:
            _obs.registry.counter("audit.rotated").inc()
            if _obs.trace_active:
                _obs.emit("audit_rotated", path=self.path,
                          records=rotated_records)

    def flush(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.flush()
                if self._unsealed:
                    self._write_head()

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.flush()
                if self._unsealed:
                    self._write_head()
                self._file.close()

    def __enter__(self) -> "AuditLedger":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def merge_segments(ledger: AuditLedger,
                   segments: Iterable[Iterable[Dict]]) -> int:
    """Append chunk-segment payload lists to ``ledger`` in given order.

    The parallel sweep's parent calls this with segments ordered by
    ``(pair, chunk)`` after all chunks merged — the same discipline
    the checkpoint journal uses — so the resulting chain is identical
    no matter which executor (or completion order) produced the
    segments.  Sampling was already decided producer-side (it is
    content-hash based, hence executor-independent).
    """
    return ledger.append_batch(payload for segment in segments
                               for payload in segment)


# ---------------------------------------------------------------------------
# Reading, verification, analytics
# ---------------------------------------------------------------------------

def iter_ledger(path: str) -> Iterator[Dict]:
    """Yield decoded records, tolerating a torn final line (crash tail)."""
    with open(path, encoding="utf-8") as handle:
        lines = handle.readlines()
    for index, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            yield json.loads(line)
        except ValueError:
            if index == len(lines) - 1:
                return  # torn tail from a mid-write kill — expected
            raise ReproError(
                f"audit ledger {path!r} is corrupt at line {index + 1}")


def load_ledger(path: str) -> List[Dict]:
    if not os.path.exists(path):
        raise ReproError(f"audit ledger {path!r} does not exist")
    return list(iter_ledger(path))


def verify_ledger(path: str) -> AuditVerifyResult:
    """Walk the chain; report the first break's 1-based record number.

    Checks, in order, per record: the line parses as JSON, carries
    ``rec``/``prev``, ``rec`` equals its position (catches drops and
    swaps immediately), and ``prev`` equals the previous line's hash
    (catches any byte mutation of the previous line — the hash is over
    raw bytes, so even parse-neutral edits break it).  When the
    sidecar head file is present the final count and head hash are
    checked against it, which is what catches tail truncation and
    mutation of the last record.
    """
    if not os.path.exists(path):
        return AuditVerifyResult(False, 0,
                                 [f"ledger {path!r} does not exist"], False)
    problems: List[str] = []
    prev_hash = GENESIS
    records = 0
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.rstrip("\n")
            if not line:
                continue
            number = records + 1
            try:
                record = json.loads(line)
            except ValueError:
                problems.append(f"record {number}: not valid JSON "
                                "(mutation or torn write)")
                break
            if not isinstance(record, dict) or "rec" not in record \
                    or "prev" not in record:
                problems.append(
                    f"record {number}: missing chain envelope (rec/prev)")
                break
            if record["rec"] != records:
                problems.append(
                    f"record {number}: rec field is {record['rec']}, "
                    f"expected {records} (record dropped or reordered)")
                break
            if record["prev"] != prev_hash:
                problems.append(
                    f"record {number}: prev_hash mismatch (chain break — "
                    "this or the previous record was altered)")
                break
            prev_hash = record_hash(line)
            records += 1
    head_path = AuditLedger.head_path(path)
    sealed = os.path.exists(head_path)
    if sealed and not problems:
        try:
            with open(head_path, encoding="utf-8") as handle:
                head = json.load(handle)
            expected_records = int(head["records"])
            expected_head = str(head["head"])
        except (ValueError, KeyError, OSError):
            problems.append(f"head file {head_path!r} is unreadable")
        else:
            if records != expected_records:
                problems.append(
                    f"record {records + 1}: ledger truncated — head file "
                    f"seals {expected_records} records, found {records}")
            elif prev_hash != expected_head:
                problems.append(
                    f"record {records}: head hash mismatch (final record "
                    "altered)")
    return AuditVerifyResult(not problems, records, problems, sealed)


def tail_records(path: str, count: int = 10) -> List[Dict]:
    """The last ``count`` records (tolerant reader, like ``tail -n``)."""
    if not os.path.exists(path):
        raise ReproError(f"audit ledger {path!r} does not exist")
    window: deque = deque(maxlen=max(1, count))
    for record in iter_ledger(path):
        window.append(record)
    return list(window)


def query_records(records: Iterable[Dict], tenant: Optional[str] = None,
                  kind: Optional[str] = None,
                  endpoint: Optional[str] = None,
                  since: Optional[float] = None,
                  until: Optional[float] = None) -> List[Dict]:
    """Filter records by tenant, notice kind, endpoint, and time window.

    Time filters apply only to records that carry ``ts`` (serve-path
    records); deterministic sweep records have no wall clock and are
    excluded from any time-windowed query.
    """
    matched = []
    for record in records:
        if tenant is not None and record.get("tenant") != tenant:
            continue
        if kind is not None and record.get("kind") != kind:
            continue
        if endpoint is not None and record.get("endpoint") != endpoint:
            continue
        if since is not None or until is not None:
            ts = record.get("ts")
            if ts is None:
                continue
            if since is not None and ts < since:
                continue
            if until is not None and ts > until:
                continue
        matched.append(record)
    return matched


def ledger_stats(records: Iterable[Dict], window: int = 50,
                 spike_factor: float = 2.0, spike_floor: float = 0.2,
                 spike_min_count: int = 10) -> Dict:
    """Per-tenant decision analytics with a windowed spike flag.

    For each tenant: totals, per-kind notice counts, lifetime
    violation rate, and the rate over the tenant's last ``window``
    records.  ``spike`` is set when the window holds at least
    ``spike_min_count`` records and its rate is both at least
    ``spike_floor`` and ``spike_factor`` times the lifetime rate — a
    recent burst of notices, not a noisy tenant being noisy.
    """
    per_tenant: Dict[str, Dict] = {}
    total = 0
    for record in records:
        total += 1
        tenant = record.get("tenant") or "-"
        stats = per_tenant.get(tenant)
        if stats is None:
            stats = {"total": 0, "accepts": 0, "notices": 0,
                     "kinds": {}, "_window": deque(maxlen=max(1, window))}
            per_tenant[tenant] = stats
        stats["total"] += 1
        kind = record.get("kind", "accept")
        is_notice = record.get("decision") == "notice"
        if is_notice:
            stats["notices"] += 1
            stats["kinds"][kind] = stats["kinds"].get(kind, 0) + 1
        else:
            stats["accepts"] += 1
        stats["_window"].append(1 if is_notice else 0)
    tenants: Dict[str, Dict] = {}
    for tenant, stats in sorted(per_tenant.items()):
        lifetime_rate = stats["notices"] / stats["total"]
        recent = stats.pop("_window")
        window_rate = (sum(recent) / len(recent)) if recent else 0.0
        spike = (len(recent) >= spike_min_count
                 and window_rate >= spike_floor
                 and window_rate >= spike_factor * max(lifetime_rate, 1e-9)
                 and window_rate > lifetime_rate)
        stats["violation_rate"] = round(lifetime_rate, 6)
        stats["kinds"] = dict(sorted(stats["kinds"].items()))
        stats["window"] = {"size": len(recent),
                           "rate": round(window_rate, 6), "spike": spike}
        tenants[tenant] = stats
    return {"records": total, "tenants": tenants}


class SpikeTracker:
    """Online per-tenant violation-rate spike detection for the server.

    Feeds on the same decisions the ledger records; when a tenant's
    rolling-window notice rate crosses the spike condition a
    ``violation_rate_spike`` event fires (at most once per window
    refill, so a sustained burst does not flood the trace).
    """

    def __init__(self, window: int = 50, spike_factor: float = 2.0,
                 spike_floor: float = 0.2, spike_min_count: int = 10) -> None:
        self.window = max(1, window)
        self.spike_factor = spike_factor
        self.spike_floor = spike_floor
        self.spike_min_count = spike_min_count
        self._lock = threading.Lock()
        self._tenants: Dict[str, Dict] = {}

    def update(self, tenant: str, is_notice: bool) -> Optional[float]:
        """Record one decision; returns the window rate on a new spike."""
        with self._lock:
            state = self._tenants.get(tenant)
            if state is None:
                state = {"recent": deque(maxlen=self.window), "total": 0,
                         "notices": 0, "cooldown": 0}
                self._tenants[tenant] = state
            state["total"] += 1
            state["notices"] += 1 if is_notice else 0
            state["recent"].append(1 if is_notice else 0)
            if state["cooldown"] > 0:
                state["cooldown"] -= 1
                return None
            recent = state["recent"]
            if len(recent) < self.spike_min_count:
                return None
            window_rate = sum(recent) / len(recent)
            lifetime_rate = state["notices"] / state["total"]
            if (window_rate >= self.spike_floor
                    and window_rate >= self.spike_factor
                    * max(lifetime_rate, 1e-9)
                    and window_rate > lifetime_rate):
                state["cooldown"] = self.window
                return window_rate
            return None
