"""Process-wide metrics primitives: counters, gauges, histograms.

The Observability Postulate (Section 1) demands that a program's
declared output encode *everything* the user can observe of a run.
This module applies the same discipline to the enforcement harness
itself: steps executed, fuel exhaustions, violations raised, memo
hits/misses, chunks scheduled and retried are all first-class
observables of a mechanism run, collected in a
:class:`MetricsRegistry` and exported as plain dictionaries.

Everything here is stdlib-only and thread-safe.  The hot layers never
call into the registry directly — they go through the guarded no-op
hooks in :mod:`repro.obs.runtime`, so a disabled registry costs one
global flag test per run.
"""

from __future__ import annotations

import re
import threading
from typing import Dict, List, Optional, Sequence, Tuple

#: Default histogram bucket upper bounds (seconds-flavoured; step-count
#: histograms pass their own bounds).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0)

#: Bucket bounds suited to step counts / sizes rather than durations.
STEP_BUCKETS: Tuple[float, ...] = (
    1, 2, 5, 10, 25, 50, 100, 250, 1000, 10_000, 100_000)


# ---------------------------------------------------------------------------
# Labeled metric names
# ---------------------------------------------------------------------------
#
# A labeled metric is an ordinary registry entry whose *name* carries
# its label set inline, Prometheus-style: ``serve.latency_s{endpoint=
# "/execute"}``.  Keeping labels in the name keeps snapshots flat,
# JSON-ready, and round-trippable through ``repro metrics
# --from-json``; the exposition layer parses them back out and renders
# proper label syntax (escapes included).

def _escape_label_value(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _unescape_label_value(value: str) -> str:
    return re.sub(r'\\(["\\n])',
                  lambda match: {'"': '"', "\\": "\\", "n": "\n"}
                  [match.group(1)], value)


def labeled_name(name: str, labels: Optional[Dict[str, object]]) -> str:
    """Fold a label dict into a metric name (sorted keys, escaped).

    Sorting makes the fold canonical: ``{"a": 1, "b": 2}`` and
    ``{"b": 2, "a": 1}`` address the same registry entry.
    """
    if not labels:
        return name
    body = ",".join(f'{key}="{_escape_label_value(str(value))}"'
                    for key, value in sorted(labels.items()))
    return f"{name}{{{body}}}"


_LABEL_PAIR = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def split_labels(name: str) -> Tuple[str, Dict[str, str]]:
    """Invert :func:`labeled_name`: ``(base name, label dict)``."""
    if "{" not in name or not name.endswith("}"):
        return name, {}
    base, _, rest = name.partition("{")
    labels = {key: _unescape_label_value(value)
              for key, value in _LABEL_PAIR.findall(rest[:-1])}
    return base, labels


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def __repr__(self) -> str:
        return f"Counter({self.name}={self._value})"


class Gauge:
    """A point-in-time value (set, not accumulated)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    @property
    def value(self) -> float:
        return self._value

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self._value})"


class Histogram:
    """Bucketed distribution with count / sum / min / max summary.

    ``bounds`` are inclusive upper bucket edges; one implicit ``+Inf``
    bucket catches the tail.  Snapshots report *raw per-bucket* counts
    keyed by their bound (as a string, for JSON stability); the
    cumulative ``le`` series Prometheus expects is derived at
    exposition time by :func:`snapshot_to_prometheus`, which sorts the
    bounds numerically first — so a snapshot that round-tripped
    through JSON with reordered keys still renders correctly.
    """

    __slots__ = ("name", "bounds", "_bucket_counts", "count", "total",
                 "min", "max", "_lock")

    def __init__(self, name: str,
                 bounds: Optional[Sequence[float]] = None) -> None:
        self.name = name
        self.bounds = tuple(bounds if bounds is not None else DEFAULT_BUCKETS)
        self._bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            for index, bound in enumerate(self.bounds):
                if value <= bound:
                    self._bucket_counts[index] += 1
                    return
            self._bucket_counts[-1] += 1

    def snapshot(self) -> Dict:
        with self._lock:
            buckets = {str(bound): count for bound, count
                       in zip(self.bounds, self._bucket_counts)}
            buckets["+Inf"] = self._bucket_counts[-1]
            return {
                "count": self.count,
                "sum": round(self.total, 9),
                "min": self.min,
                "max": self.max,
                "buckets": buckets,
            }

    def __repr__(self) -> str:
        return f"Histogram({self.name}, n={self.count})"


class MetricsRegistry:
    """A named collection of counters, gauges, and histograms.

    Metric creation is get-or-create and thread-safe; updates go
    through the metric objects themselves.  :meth:`snapshot` returns a
    JSON-ready nested dict; :meth:`reset` drops every metric (the CLI
    and benches call it so each invocation reports its own run).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str,
                labels: Optional[Dict[str, object]] = None) -> Counter:
        name = labeled_name(name, labels)
        try:
            return self._counters[name]
        except KeyError:
            pass
        with self._lock:
            return self._counters.setdefault(name, Counter(name))

    def gauge(self, name: str,
              labels: Optional[Dict[str, object]] = None) -> Gauge:
        name = labeled_name(name, labels)
        try:
            return self._gauges[name]
        except KeyError:
            pass
        with self._lock:
            return self._gauges.setdefault(name, Gauge(name))

    def histogram(self, name: str,
                  bounds: Optional[Sequence[float]] = None,
                  labels: Optional[Dict[str, object]] = None) -> Histogram:
        name = labeled_name(name, labels)
        try:
            return self._histograms[name]
        except KeyError:
            pass
        with self._lock:
            return self._histograms.setdefault(name, Histogram(name, bounds))

    def snapshot(self) -> Dict:
        """A JSON-ready view of every metric currently registered."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {name: counter.value
                         for name, counter in sorted(counters.items())},
            "gauges": {name: gauge.value
                       for name, gauge in sorted(gauges.items())},
            "histograms": {name: histogram.snapshot()
                           for name, histogram in sorted(histograms.items())},
        }

    def to_prometheus(self, prefix: str = "repro") -> str:
        """The registry in Prometheus text-exposition format.

        Shorthand for ``snapshot_to_prometheus(self.snapshot())`` — the
        CLI's ``repro metrics --prometheus`` prints exactly this.
        """
        return snapshot_to_prometheus(self.snapshot(), prefix=prefix)

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------

def _prometheus_name(name: str, prefix: str) -> str:
    """Map a dotted metric name onto the Prometheus charset."""
    sanitized = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if prefix:
        sanitized = f"{prefix}_{sanitized}"
    if sanitized and sanitized[0].isdigit():  # pragma: no cover - defensive
        sanitized = "_" + sanitized
    return sanitized


def _prometheus_number(value) -> str:
    if value is None:
        return "NaN"
    if isinstance(value, float) and value == int(value):
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def _label_block(labels: Dict[str, str], extra=()) -> str:
    """Render a label dict (plus trailing pairs like ``le``) or ''."""
    pairs = [f'{key}="{_escape_label_value(str(value))}"'
             for key, value in sorted(labels.items())]
    pairs.extend(f'{key}="{_escape_label_value(str(value))}"'
                 for key, value in extra)
    return "{" + ",".join(pairs) + "}" if pairs else ""


def sorted_bucket_bounds(buckets: Dict[str, int]) -> List[str]:
    """Finite bucket bounds in numeric order (``+Inf`` excluded).

    Snapshot buckets are keyed by stringified bound, and nothing
    guarantees their dict order after a JSON round-trip — cumulating
    in iteration order would corrupt the ``le`` series, so every
    consumer sorts numerically first.
    """
    return sorted((bound for bound in buckets if bound != "+Inf"), key=float)


def snapshot_to_prometheus(snapshot: Dict, prefix: str = "repro") -> str:
    """Render a :meth:`MetricsRegistry.snapshot` dict as Prometheus text.

    Counters and gauges become single samples; each histogram becomes
    the conventional ``_bucket{le="..."}`` cumulative series plus
    ``_sum`` and ``_count``, with bucket bounds sorted *numerically*
    (a snapshot that round-tripped through JSON may present them in
    any order).  Labeled metric names — ``name{key="value"}``, see
    :func:`labeled_name` — render as proper Prometheus label syntax
    with one ``# TYPE`` line per family; ``le`` is merged into a
    labeled histogram's label set.  Dots in metric names become
    underscores (``sweep.points_evaluated`` ->
    ``repro_sweep_points_evaluated``).  The output round-trips:
    parsing the text recovers every counter, gauge, and histogram
    summary in the snapshot (the test suite does).
    """
    lines: List[str] = []

    def type_line(family: str, kind: str, seen: set) -> None:
        if family not in seen:
            seen.add(family)
            lines.append(f"# TYPE {family} {kind}")

    families: set = set()
    for section, kind in (("counters", "counter"), ("gauges", "gauge")):
        for name, value in sorted(snapshot.get(section, {}).items()):
            base, labels = split_labels(name)
            exposed = _prometheus_name(base, prefix)
            type_line(exposed, kind, families)
            lines.append(
                f"{exposed}{_label_block(labels)} "
                f"{_prometheus_number(value)}")
    for name, hist in sorted(snapshot.get("histograms", {}).items()):
        base, labels = split_labels(name)
        exposed = _prometheus_name(base, prefix)
        type_line(exposed, "histogram", families)
        buckets = hist.get("buckets", {})
        cumulative = 0
        for bound in sorted_bucket_bounds(buckets):
            cumulative += buckets[bound]
            lines.append(
                f"{exposed}_bucket"
                f"{_label_block(labels, extra=[('le', bound)])} "
                f"{cumulative}")
        cumulative += buckets.get("+Inf", 0)
        lines.append(
            f"{exposed}_bucket"
            f"{_label_block(labels, extra=[('le', '+Inf')])} {cumulative}")
        lines.append(f"{exposed}_sum{_label_block(labels)} "
                     f"{_prometheus_number(hist.get('sum', 0))}")
        lines.append(f"{exposed}_count{_label_block(labels)} "
                     f"{hist.get('count', 0)}")
    return "\n".join(lines) + ("\n" if lines else "")
