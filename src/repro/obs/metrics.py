"""Process-wide metrics primitives: counters, gauges, histograms.

The Observability Postulate (Section 1) demands that a program's
declared output encode *everything* the user can observe of a run.
This module applies the same discipline to the enforcement harness
itself: steps executed, fuel exhaustions, violations raised, memo
hits/misses, chunks scheduled and retried are all first-class
observables of a mechanism run, collected in a
:class:`MetricsRegistry` and exported as plain dictionaries.

Everything here is stdlib-only and thread-safe.  The hot layers never
call into the registry directly — they go through the guarded no-op
hooks in :mod:`repro.obs.runtime`, so a disabled registry costs one
global flag test per run.
"""

from __future__ import annotations

import re
import threading
from typing import Dict, List, Optional, Sequence, Tuple

#: Default histogram bucket upper bounds (seconds-flavoured; step-count
#: histograms pass their own bounds).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0)

#: Bucket bounds suited to step counts / sizes rather than durations.
STEP_BUCKETS: Tuple[float, ...] = (
    1, 2, 5, 10, 25, 50, 100, 250, 1000, 10_000, 100_000)


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def __repr__(self) -> str:
        return f"Counter({self.name}={self._value})"


class Gauge:
    """A point-in-time value (set, not accumulated)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    @property
    def value(self) -> float:
        return self._value

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self._value})"


class Histogram:
    """Bucketed distribution with count / sum / min / max summary.

    ``bounds`` are inclusive upper bucket edges; one implicit ``+Inf``
    bucket catches the tail.  Snapshots report cumulative-style bucket
    counts keyed by their bound (as a string, for JSON stability).
    """

    __slots__ = ("name", "bounds", "_bucket_counts", "count", "total",
                 "min", "max", "_lock")

    def __init__(self, name: str,
                 bounds: Optional[Sequence[float]] = None) -> None:
        self.name = name
        self.bounds = tuple(bounds if bounds is not None else DEFAULT_BUCKETS)
        self._bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            for index, bound in enumerate(self.bounds):
                if value <= bound:
                    self._bucket_counts[index] += 1
                    return
            self._bucket_counts[-1] += 1

    def snapshot(self) -> Dict:
        with self._lock:
            buckets = {str(bound): count for bound, count
                       in zip(self.bounds, self._bucket_counts)}
            buckets["+Inf"] = self._bucket_counts[-1]
            return {
                "count": self.count,
                "sum": round(self.total, 9),
                "min": self.min,
                "max": self.max,
                "buckets": buckets,
            }

    def __repr__(self) -> str:
        return f"Histogram({self.name}, n={self.count})"


class MetricsRegistry:
    """A named collection of counters, gauges, and histograms.

    Metric creation is get-or-create and thread-safe; updates go
    through the metric objects themselves.  :meth:`snapshot` returns a
    JSON-ready nested dict; :meth:`reset` drops every metric (the CLI
    and benches call it so each invocation reports its own run).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        try:
            return self._counters[name]
        except KeyError:
            pass
        with self._lock:
            return self._counters.setdefault(name, Counter(name))

    def gauge(self, name: str) -> Gauge:
        try:
            return self._gauges[name]
        except KeyError:
            pass
        with self._lock:
            return self._gauges.setdefault(name, Gauge(name))

    def histogram(self, name: str,
                  bounds: Optional[Sequence[float]] = None) -> Histogram:
        try:
            return self._histograms[name]
        except KeyError:
            pass
        with self._lock:
            return self._histograms.setdefault(name, Histogram(name, bounds))

    def snapshot(self) -> Dict:
        """A JSON-ready view of every metric currently registered."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {name: counter.value
                         for name, counter in sorted(counters.items())},
            "gauges": {name: gauge.value
                       for name, gauge in sorted(gauges.items())},
            "histograms": {name: histogram.snapshot()
                           for name, histogram in sorted(histograms.items())},
        }

    def to_prometheus(self, prefix: str = "repro") -> str:
        """The registry in Prometheus text-exposition format.

        Shorthand for ``snapshot_to_prometheus(self.snapshot())`` — the
        CLI's ``repro metrics --prometheus`` prints exactly this.
        """
        return snapshot_to_prometheus(self.snapshot(), prefix=prefix)

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------

def _prometheus_name(name: str, prefix: str) -> str:
    """Map a dotted metric name onto the Prometheus charset."""
    sanitized = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if prefix:
        sanitized = f"{prefix}_{sanitized}"
    if sanitized and sanitized[0].isdigit():  # pragma: no cover - defensive
        sanitized = "_" + sanitized
    return sanitized


def _prometheus_number(value) -> str:
    if value is None:
        return "NaN"
    if isinstance(value, float) and value == int(value):
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def snapshot_to_prometheus(snapshot: Dict, prefix: str = "repro") -> str:
    """Render a :meth:`MetricsRegistry.snapshot` dict as Prometheus text.

    Counters and gauges become single samples; each histogram becomes
    the conventional ``_bucket{le="..."}`` cumulative series plus
    ``_sum`` and ``_count``.  Dots in metric names become underscores
    (``sweep.points_evaluated`` -> ``repro_sweep_points_evaluated``).
    The output round-trips: parsing the text recovers every counter,
    gauge, and histogram summary in the snapshot (the test suite does).
    """
    lines: List[str] = []
    for name, value in sorted(snapshot.get("counters", {}).items()):
        exposed = _prometheus_name(name, prefix)
        lines.append(f"# TYPE {exposed} counter")
        lines.append(f"{exposed} {_prometheus_number(value)}")
    for name, value in sorted(snapshot.get("gauges", {}).items()):
        exposed = _prometheus_name(name, prefix)
        lines.append(f"# TYPE {exposed} gauge")
        lines.append(f"{exposed} {_prometheus_number(value)}")
    for name, hist in sorted(snapshot.get("histograms", {}).items()):
        exposed = _prometheus_name(name, prefix)
        lines.append(f"# TYPE {exposed} histogram")
        buckets = hist.get("buckets", {})
        cumulative = 0
        for bound, count in buckets.items():
            if bound == "+Inf":
                continue
            cumulative += count
            lines.append(f'{exposed}_bucket{{le="{bound}"}} {cumulative}')
        cumulative += buckets.get("+Inf", 0)
        lines.append(f'{exposed}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{exposed}_sum {_prometheus_number(hist.get('sum', 0))}")
        lines.append(f"{exposed}_count {hist.get('count', 0)}")
    return "\n".join(lines) + ("\n" if lines else "")
