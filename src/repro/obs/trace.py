"""Offline trace analytics: span trees, summaries, and explanations.

A JSONL trace written by :class:`repro.obs.events.JsonlSink` is a flat
stream of events, possibly interleaved from several processes (each
span id carries its writer's pid, so ids never collide).  This module
reassembles that stream into the shapes the ``repro trace`` CLI
reports on:

- :func:`build_span_tree` pairs every ``span_start`` with its
  ``span_end`` and threads parent links into a forest (a healthy sweep
  trace yields exactly one root: the sweep span);
- :func:`summarize` aggregates event counts, per-op span timing, and
  violation/retry/degradation totals;
- :func:`slowest_spans` ranks closed spans by elapsed time;
- :func:`find_explanations` pulls the provenance records a mechanism
  attached to its rejections (see :mod:`repro.obs.provenance`).

Everything operates on plain dicts so analytics never needs the
runtime that produced the trace.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


def load_events(lines: Iterable[str]) -> List[Dict]:
    """Decode a JSONL stream, skipping blank and truncated lines.

    A sweep killed mid-write may leave a final partial line; analytics
    tolerates it (the validator in :mod:`repro.obs.events` is the
    strict reader).
    """
    events: List[Dict] = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except ValueError:
            continue
        if isinstance(event, dict):
            events.append(event)
    return events


def load_trace(path: str) -> List[Dict]:
    """Read and decode a trace file."""
    with open(path, encoding="utf-8") as handle:
        return load_events(handle)


class SpanNode:
    """One reconstructed span: its events, timing, and children."""

    __slots__ = ("id", "op", "parent", "fields", "elapsed_s", "closed",
                 "children")

    def __init__(self, span_id: str, op: str, parent: Optional[str],
                 fields: Dict) -> None:
        self.id = span_id
        self.op = op
        self.parent = parent
        self.fields = fields
        self.elapsed_s: Optional[float] = None
        self.closed = False
        self.children: List["SpanNode"] = []

    def walk(self):
        """Yield ``(depth, node)`` over this subtree, preorder."""
        stack: List[Tuple[int, SpanNode]] = [(0, self)]
        while stack:
            depth, node = stack.pop()
            yield depth, node
            for child in reversed(node.children):
                stack.append((depth + 1, child))

    def __repr__(self) -> str:
        return (f"SpanNode({self.op}, id={self.id}, "
                f"children={len(self.children)})")


class SpanForest:
    """The reassembled span forest plus structural problems found."""

    __slots__ = ("roots", "spans", "problems")

    def __init__(self, roots: List[SpanNode], spans: Dict[str, SpanNode],
                 problems: List[str]) -> None:
        self.roots = roots
        self.spans = spans
        self.problems = problems

    @property
    def single_rooted(self) -> bool:
        return len(self.roots) == 1

    def __repr__(self) -> str:
        return (f"SpanForest({len(self.spans)} spans, "
                f"{len(self.roots)} root(s), "
                f"{len(self.problems)} problem(s))")


def build_span_tree(events: Sequence[Dict]) -> SpanForest:
    """Pair span events and thread parent links into a forest.

    Works across process-pool traces: ids are pid-prefixed, and a
    parent id recorded in the supervising process resolves no matter
    which process emitted the child.  Problems reported: a ``span_end``
    with no matching start, a span never closed, and a parent id that
    never appears (the child is promoted to a root so no span is
    silently dropped).
    """
    spans: Dict[str, SpanNode] = {}
    order: List[str] = []
    problems: List[str] = []
    for event in events:
        kind = event.get("kind")
        if kind == "span_start":
            span_id = event.get("span")
            fields = {key: value for key, value in event.items()
                      if key not in ("kind", "seq", "t", "span", "op",
                                     "parent")}
            node = SpanNode(span_id, event.get("op", "?"),
                            event.get("parent"), fields)
            if span_id in spans:
                problems.append(f"duplicate span_start for {span_id}")
            else:
                spans[span_id] = node
                order.append(span_id)
        elif kind == "span_end":
            span_id = event.get("span")
            node = spans.get(span_id)
            if node is None:
                problems.append(f"span_end without span_start: {span_id}")
                continue
            if node.closed:
                problems.append(f"duplicate span_end for {span_id}")
                continue
            node.closed = True
            node.elapsed_s = event.get("elapsed_s")
            for key, value in event.items():
                if key not in ("kind", "seq", "t", "span", "op",
                               "elapsed_s"):
                    node.fields.setdefault(key, value)

    roots: List[SpanNode] = []
    for span_id in order:
        node = spans[span_id]
        if node.parent is None:
            roots.append(node)
        elif node.parent in spans:
            spans[node.parent].children.append(node)
        else:
            problems.append(
                f"span {span_id} ({node.op}) has unknown parent "
                f"{node.parent}; promoted to root")
            roots.append(node)
    for span_id in order:
        if not spans[span_id].closed:
            problems.append(
                f"span {span_id} ({spans[span_id].op}) never closed")
    return SpanForest(roots, spans, problems)


def render_tree(forest: SpanForest, max_children: int = 0) -> str:
    """An indented text rendering of the forest (the CLI's ``--tree``).

    ``max_children`` truncates wide levels (0 = no limit) so a
    10k-point sweep stays readable; truncation is always announced.
    """
    lines: List[str] = []
    for root in forest.roots:
        lines.extend(_render_node(root, 0, max_children))
    for problem in forest.problems:
        lines.append(f"! {problem}")
    return "\n".join(lines)


def _render_node(node: SpanNode, depth: int,
                 max_children: int) -> List[str]:
    indent = "  " * depth
    elapsed = (f" {node.elapsed_s:.6f}s" if node.elapsed_s is not None
               else " (unclosed)")
    extras = ""
    for key in ("pair", "program", "policy", "chunk", "executor", "mode"):
        if key in node.fields:
            extras += f" {key}={node.fields[key]}"
    lines = [f"{indent}{node.op} [{node.id}]{elapsed}{extras}"]
    children = node.children
    shown = children if not max_children else children[:max_children]
    for child in shown:
        lines.extend(_render_node(child, depth + 1, max_children))
    if max_children and len(children) > max_children:
        lines.append(f"{indent}  ... {len(children) - max_children} more "
                     f"child span(s) of {node.op} elided")
    return lines


def summarize(events: Sequence[Dict]) -> Dict:
    """Aggregate a trace: event counts, span timing per op, totals."""
    kinds: Dict[str, int] = {}
    pids = set()
    span_elapsed: Dict[str, List[float]] = {}
    violations = 0
    retries = 0
    degradations = 0
    points = 0
    accepts = 0
    quarantined_points = 0
    quarantined_chunks = 0
    checkpoints_written = 0
    chunks_restored = 0
    policy_changes = 0
    downgrades = 0
    epoch_violations = 0
    max_epoch = 0
    audit_appended = 0
    audit_rotated = 0
    rate_spikes = 0
    spiked_tenants: List[str] = []
    interruptions: List[str] = []
    for event in events:
        kind = event.get("kind", "?")
        kinds[kind] = kinds.get(kind, 0) + 1
        span_id = event.get("span")
        if isinstance(span_id, str) and "-" in span_id:
            pids.add(span_id.split("-", 1)[0])
        if kind == "span_end":
            elapsed = event.get("elapsed_s")
            if isinstance(elapsed, (int, float)):
                span_elapsed.setdefault(event.get("op", "?"),
                                        []).append(float(elapsed))
        elif kind == "violation":
            violations += 1
        elif kind == "worker_retry":
            retries += 1
        elif kind == "pool_degraded":
            degradations += 1
        elif kind == "chunk_done":
            points += event.get("points", 0)
            accepts += event.get("accepts", 0)
        elif kind == "point_quarantined":
            quarantined_points += 1
        elif kind == "chunk_quarantined":
            quarantined_chunks += 1
        elif kind == "checkpoint_written":
            checkpoints_written += 1
        elif kind == "sweep_resumed":
            chunks_restored += event.get("chunks_restored", 0)
        elif kind == "sweep_interrupted":
            interruptions.append(str(event.get("reason", "?")))
        elif kind == "policy_changed":
            policy_changes += 1
            epoch = event.get("epoch")
            if isinstance(epoch, int):
                max_epoch = max(max_epoch, epoch)
        elif kind == "downgrade_applied":
            downgrades += 1
        elif kind == "epoch_violation":
            epoch_violations += 1
        elif kind == "audit_appended":
            audit_appended += 1
        elif kind == "audit_rotated":
            audit_rotated += 1
        elif kind == "violation_rate_spike":
            rate_spikes += 1
            tenant = event.get("tenant")
            if isinstance(tenant, str) and tenant not in spiked_tenants:
                spiked_tenants.append(tenant)
    ops = {}
    for op, values in sorted(span_elapsed.items()):
        ops[op] = {
            "count": len(values),
            "total_s": round(sum(values), 6),
            "max_s": round(max(values), 6),
            "mean_s": round(sum(values) / len(values), 9),
        }
    forest = build_span_tree(events)
    return {
        "events": len(events),
        "kinds": dict(sorted(kinds.items())),
        "processes": len(pids) or (1 if events else 0),
        "spans": {
            "total": len(forest.spans),
            "roots": len(forest.roots),
            "problems": forest.problems,
            "by_op": ops,
        },
        "violations": violations,
        "worker_retries": retries,
        "pool_degradations": degradations,
        "points_evaluated": points,
        "points_accepted": accepts,
        "recovery": {
            "points_quarantined": quarantined_points,
            "chunks_quarantined": quarantined_chunks,
            "checkpoints_written": checkpoints_written,
            "chunks_restored": chunks_restored,
            "interruptions": interruptions,
        },
        "dynamic_policy": {
            "policy_changes": policy_changes,
            "downgrades": downgrades,
            "epoch_violations": epoch_violations,
            "max_epoch": max_epoch,
        },
        "audit": {
            "appended": audit_appended,
            "rotations": audit_rotated,
            "rate_spikes": rate_spikes,
            "spiked_tenants": spiked_tenants,
        },
    }


def slowest_spans(events: Sequence[Dict],
                  top: int = 10) -> List[Dict]:
    """The ``top`` closed spans by elapsed time, slowest first."""
    forest = build_span_tree(events)
    closed = [node for node in forest.spans.values()
              if node.closed and node.elapsed_s is not None]
    closed.sort(key=lambda node: node.elapsed_s, reverse=True)
    rows = []
    for node in closed[:max(0, top)]:
        row = {"span": node.id, "op": node.op,
               "elapsed_s": node.elapsed_s}
        for key in ("pair", "program", "policy", "chunk", "executor"):
            if key in node.fields:
                row[key] = node.fields[key]
        rows.append(row)
    return rows


def find_explanations(events: Sequence[Dict],
                      point: Optional[Sequence[int]] = None,
                      program: Optional[str] = None) -> List[Dict]:
    """Provenance records in the trace, optionally filtered.

    ``point`` matches the explained point exactly; ``program`` matches
    the program name.  Returns the raw ``explanation`` event payloads
    (chain included), oldest first.
    """
    wanted = list(point) if point is not None else None
    records = []
    for event in events:
        if event.get("kind") != "explanation":
            continue
        if wanted is not None and event.get("point") != wanted:
            continue
        if program is not None and event.get("program") != program:
            continue
        records.append(event)
    return records


def render_explanation_event(event: Dict) -> str:
    """Re-render an ``explanation`` event the way ``repro explain`` does."""
    from .provenance import ChainStep, Explanation

    chain = [ChainStep(step.get("step"), step.get("node"),
                       step.get("kind", "?"), step.get("detail", ""),
                       step.get("target"), step.get("label", ()),
                       step.get("sources", ()))
             for step in event.get("chain", ())]
    fuel = event.get("fuel")
    explanation = Explanation(
        event.get("program", "?"), event.get("policy", "?"),
        event.get("point"), event.get("verdict", "violation"),
        event.get("site"), event.get("clause", ""),
        event.get("disallowed", ()), chain, fuel=fuel,
        mode=event.get("mode", "dynamic"))
    return explanation.render()
