"""Runtime observability for the enforcement harness.

The paper's Observability Postulate says a program's declared output
must encode everything the user can see of a run.  This package holds
the harness to the same standard: every mechanism execution, sweep
chunk, memo lookup, and pool retry is observable through

- a process-wide **metrics registry** (:mod:`repro.obs.metrics`):
  counters, gauges, and histograms, exported as JSON-ready dicts;
- a **structured trace-event stream** (:mod:`repro.obs.events`): typed
  JSONL events with a self-contained schema and validator, deliverable
  to a file sink or an in-memory ring buffer;
- the **runtime** (:mod:`repro.obs.runtime`): a single no-op-when-off
  flag the instrumented hot layers guard their hooks with, plus
  hierarchical **spans** (sweep → pair → chunk → point; lint → pass)
  whose pid-prefixed ids reassemble across process-pool workers;
- **violation provenance** (:mod:`repro.obs.provenance`): when a
  mechanism rejects a point, *why* — the input-index influence chain
  from the inputs to the violating PC, as an :class:`Explanation`;
- **trace analytics** (:mod:`repro.obs.trace`): offline span-tree
  reconstruction, summaries, and slow-span ranking over JSONL traces
  (the ``repro trace`` subcommand).

Typical use::

    from repro import obs

    ring = obs.RingBufferSink()
    with obs.observed(sinks=[ring], reset=True):
        parallel_soundness_sweep(...)
    print(obs.registry.snapshot()["counters"])
    print(ring.events("violation")[:3])

The CLI exposes the same machinery as ``repro sweep --progress
--metrics-json PATH --trace PATH`` and ``repro metrics``; see
``docs/OBSERVABILITY.md`` for the metric names and event schema.
"""

from .audit import (AuditLedger, AuditVerifyResult, SpikeTracker,
                    budget_fingerprint, classify_notice, decision_payload,
                    ledger_stats, load_ledger, merge_segments,
                    query_records, tail_records, verify_ledger)
from .events import (EVENT_KINDS, EVENT_SCHEMA, JsonlSink, RingBufferSink,
                     validate_event, validate_jsonl)
from .metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                      DEFAULT_BUCKETS, STEP_BUCKETS, labeled_name,
                      snapshot_to_prometheus, split_labels)
from .provenance import ChainStep, Explanation, explain, explain_static
from .runtime import (Span, current_span, disable, emit, enable, observed,
                      registry, snapshot, span, span_begin, span_finish)
from .trace import (SpanForest, SpanNode, build_span_tree,
                    find_explanations, load_events, load_trace,
                    render_explanation_event, render_tree, slowest_spans,
                    summarize)

__all__ = [
    "EVENT_KINDS", "EVENT_SCHEMA", "JsonlSink", "RingBufferSink",
    "validate_event", "validate_jsonl",
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "DEFAULT_BUCKETS", "STEP_BUCKETS", "labeled_name",
    "snapshot_to_prometheus", "split_labels",
    "AuditLedger", "AuditVerifyResult", "SpikeTracker",
    "budget_fingerprint", "classify_notice", "decision_payload",
    "ledger_stats", "load_ledger", "merge_segments", "query_records",
    "tail_records", "verify_ledger",
    "ChainStep", "Explanation", "explain", "explain_static",
    "enable", "disable", "observed", "emit", "registry", "snapshot",
    "Span", "span", "span_begin", "span_finish", "current_span",
    "SpanForest", "SpanNode", "build_span_tree", "load_events",
    "load_trace", "summarize", "slowest_spans", "find_explanations",
    "render_tree", "render_explanation_event",
]
