"""Structured trace events: typed records of what a mechanism run did.

An event is a flat JSON object with three envelope fields —

- ``kind``: one of :data:`EVENT_KINDS`,
- ``seq``:  a monotonically increasing per-process sequence number,
- ``t``:    seconds since tracing was enabled (monotonic clock),

plus kind-specific payload fields (:data:`EVENT_SCHEMA` lists the
required ones).  Sinks receive each event as a dict:
:class:`JsonlSink` appends one JSON line per event to a file,
:class:`RingBufferSink` keeps the last N events in memory for tests
and post-mortems.

The schema is deliberately self-contained (no jsonschema dependency):
:func:`validate_event` / :func:`validate_jsonl` are small pure-Python
checkers the CI job runs against CLI-emitted traces.
"""

from __future__ import annotations

import atexit
import io
import json
from collections import deque
from typing import Dict, Iterable, List, Optional, Tuple, Union

#: Every event kind the runtime may emit.
EVENT_KINDS: Tuple[str, ...] = (
    "sweep_start",   # a soundness sweep began
    "run_start",     # one flowchart execution began (sampled layers only)
    "run_end",       # one flowchart execution finished
    "box_step",      # one interpreted box executed (sampled)
    "violation",     # a mechanism raised a violation notice
    "fuel_exhausted",  # a run exceeded its fuel budget
    "chunk_done",    # a sweep chunk's summary arrived
    "worker_retry",  # a failed/timed-out chunk was rescheduled
    "pool_degraded",  # the pool fell back (process -> thread -> serial)
    "pair_done",     # all chunks of one (program, policy) pair merged
    "sweep_end",     # the sweep finished
    "lint_pass",     # one flowlint pass completed
    "span_start",    # a hierarchical work span opened (sweep/pair/chunk/...)
    "span_end",      # a span closed (same id as its span_start)
    "explanation",   # violation provenance: the input-index influence chain
    "value_cap_exceeded",  # a run assigned a value wider than the cap
    "point_quarantined",   # bisection isolated one crashing grid point
    "chunk_quarantined",   # a chunk entered the quarantine bisection
    "checkpoint_meta",     # checkpoint header: sweep config fingerprint
    "checkpoint_written",  # one chunk summary journalled to the checkpoint
    "sweep_resumed",       # a sweep restored chunk summaries and continued
    "sweep_interrupted",   # a sweep drained and stopped (signal/deadline)
    "batch_compiled",      # a flowchart compiled for the batch tier
    "batch_fallback",      # batch lanes retired to the per-lane fallback
    "policy_changed",      # a policy_change box installed a new epoch
    "downgrade_applied",   # a downgrade box discharged surveillance indices
    "epoch_violation",     # a violation under a dynamic policy (Λ@e tag)
    "audit_appended",      # one decision sealed into the audit ledger
    "audit_rotated",       # the audit ledger rotated a full generation
    "violation_rate_spike",  # a tenant's windowed notice rate spiked
    "message_sent",    # a distributed envelope left its sending node
    "message_retried",  # an unacked envelope was retransmitted
    "node_crashed",    # a distributed node died (chaos kill or fault)
    "node_recovered",  # a crashed node replayed its journal and rejoined
)

#: Envelope + per-kind required payload fields.  ``properties`` gives
#: the expected JSON type of known fields (extra fields are allowed —
#: the schema is open, like the mechanisms it observes).
EVENT_SCHEMA: Dict = {
    "title": "repro trace event",
    "type": "object",
    "required": ["kind", "seq", "t"],
    "properties": {
        "kind": {"type": "string", "enum": list(EVENT_KINDS)},
        "seq": {"type": "integer"},
        "t": {"type": "number"},
    },
    "kinds": {
        "sweep_start": {"required": ["pairs", "points", "executor"]},
        "run_start": {"required": ["program", "backend"]},
        "run_end": {"required": ["program", "backend", "steps"]},
        "box_step": {"required": ["program", "node", "steps"]},
        "violation": {"required": ["program"]},
        "fuel_exhausted": {"required": ["program", "fuel"]},
        "chunk_done": {"required": ["pair", "chunk", "points", "accepts"]},
        "worker_retry": {"required": ["pair", "chunk", "attempt", "reason"]},
        "pool_degraded": {"required": ["from_mode", "to_mode", "reason"]},
        "pair_done": {"required": ["pair", "program", "policy", "sound",
                                   "accepts"]},
        "sweep_end": {"required": ["pairs", "elapsed_s"]},
        "lint_pass": {"required": ["program", "pass", "seconds"]},
        # Spans: ``span`` is the id, ``parent`` (optional) links the
        # tree; a span_end repeats its span_start's id and op.
        "span_start": {"required": ["span", "op"]},
        "span_end": {"required": ["span", "op", "elapsed_s"]},
        # Provenance: the chain is a list of step dicts, each naming the
        # box, the variable written (if any), and the label after it —
        # see repro.obs.provenance.Explanation.
        "explanation": {"required": ["program", "policy", "point", "site",
                                     "chain"]},
        "value_cap_exceeded": {"required": ["program", "cap"]},
        # Recovery: quarantine isolates crashing points, checkpoints
        # journal completed chunks, resume restores them.
        "point_quarantined": {"required": ["pair", "chunk", "point",
                                           "reason"]},
        "chunk_quarantined": {"required": ["pair", "chunk", "points",
                                           "reason"]},
        "checkpoint_meta": {"required": ["config"]},
        "checkpoint_written": {"required": ["pair", "chunk", "accepts"]},
        "sweep_resumed": {"required": ["chunks_restored"]},
        "sweep_interrupted": {"required": ["reason", "chunks_done"]},
        # Batch tier: one compile per (flowchart, lane engine); lanes
        # that retire to the per-lane compiled fallback, by reason.
        "batch_compiled": {"required": ["program", "engine", "blocks"]},
        "batch_fallback": {"required": ["program", "lanes", "reason"]},
        # Dynamic policies: each policy_change bumps the epoch counter;
        # downgrades name the variable and the indices they dropped;
        # violations under a dynamic policy carry their epoch tag.
        "policy_changed": {"required": ["program", "epoch", "allowed"]},
        "downgrade_applied": {"required": ["program", "variable",
                                           "dropped"]},
        "epoch_violation": {"required": ["program", "epoch"]},
        # Audit ledger: every sealed decision, generation rotations,
        # and per-tenant windowed violation-rate spikes (see
        # repro.obs.audit and docs/OBSERVABILITY.md "Audit ledger").
        "audit_appended": {"required": ["rec", "decision", "endpoint"]},
        "audit_rotated": {"required": ["path", "records"]},
        "violation_rate_spike": {"required": ["tenant", "rate", "window"]},
        # Distributed enforcement: envelope traffic between nodes and
        # the crash/recovery lifecycle (see repro.dist and
        # docs/ROBUSTNESS.md "Distributed enforcement").
        "message_sent": {"required": ["channel", "seq", "src", "dst"]},
        "message_retried": {"required": ["channel", "seq", "attempt"]},
        "node_crashed": {"required": ["node"]},
        "node_recovered": {"required": ["node", "incarnation"]},
    },
}

_TYPE_CHECKS = {
    "string": lambda value: isinstance(value, str),
    "integer": lambda value: isinstance(value, int)
    and not isinstance(value, bool),
    "number": lambda value: isinstance(value, (int, float))
    and not isinstance(value, bool),
}


def validate_event(event: object) -> List[str]:
    """Check one decoded event against :data:`EVENT_SCHEMA`.

    Returns a list of problems (empty when the event is valid).
    """
    problems: List[str] = []
    if not isinstance(event, dict):
        return [f"event is not an object: {type(event).__name__}"]
    for field in EVENT_SCHEMA["required"]:
        if field not in event:
            problems.append(f"missing envelope field {field!r}")
    for field, spec in EVENT_SCHEMA["properties"].items():
        if field in event and not _TYPE_CHECKS[spec["type"]](event[field]):
            problems.append(
                f"field {field!r} has type {type(event[field]).__name__}, "
                f"expected {spec['type']}")
    kind = event.get("kind")
    if isinstance(kind, str):
        kind_spec = EVENT_SCHEMA["kinds"].get(kind)
        if kind_spec is None:
            problems.append(f"unknown event kind {kind!r}")
        else:
            for field in kind_spec["required"]:
                if field not in event:
                    problems.append(
                        f"{kind} event missing required field {field!r}")
    return problems


def validate_jsonl(lines: Iterable[str]) -> Tuple[int, List[str]]:
    """Validate a JSONL trace stream; returns ``(events, problems)``.

    Problems localise three ways: the 1-based *line* number in the
    stream, the 1-based *event* index among non-blank lines (the two
    differ when blank lines pad the stream), and — for schema
    mismatches — the offending key, quoted in the message.  Blank lines
    are ignored (a trailing newline is normal for JSONL).
    """
    count = 0
    problems: List[str] = []
    for number, line in enumerate(lines, 1):
        line = line.strip()
        if not line:
            continue
        count += 1
        where = f"line {number}: event {count}"
        try:
            event = json.loads(line)
        except ValueError as error:
            problems.append(f"{where}: not JSON ({error})")
            continue
        for problem in validate_event(event):
            problems.append(f"{where}: {problem}")
    return count, problems


class JsonlSink:
    """Appends one compact JSON line per event to a path or file object.

    Crash-safe by construction: every event is flushed as it is
    written, and a path-owning sink registers an ``atexit`` close — so
    the trace of a sweep that is killed mid-flight contains every event
    emitted up to the kill (at worst the final line is truncated by the
    signal landing mid-write).  Also usable as a context manager::

        with JsonlSink("trace.jsonl") as sink:
            obs.enable(sinks=[sink])
            ...
    """

    def __init__(self, target: Union[str, io.TextIOBase]) -> None:
        if isinstance(target, str):
            self._file = open(target, "w", encoding="utf-8")
            self._owns = True
        else:
            self._file = target
            self._owns = False
        self.path = target if isinstance(target, str) else None
        self._closed = False
        if self._owns:
            atexit.register(self.close)

    def write(self, event: Dict) -> None:
        if self._closed:
            return
        self._file.write(json.dumps(event, sort_keys=True,
                                    separators=(",", ":")) + "\n")
        # Flush per event: an aborted sweep must not lose its tail to a
        # buffered page (the kill-mid-sweep test exercises exactly this).
        self._file.flush()

    def flush(self) -> None:
        if not self._closed:
            self._file.flush()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._file.flush()
        if self._owns:
            self._file.close()
            atexit.unregister(self.close)

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class RingBufferSink:
    """Keeps the most recent ``capacity`` events in memory."""

    def __init__(self, capacity: int = 4096) -> None:
        self._buffer: deque = deque(maxlen=capacity)

    def write(self, event: Dict) -> None:
        self._buffer.append(event)

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass

    def events(self, kind: Optional[str] = None) -> List[Dict]:
        events = list(self._buffer)
        if kind is not None:
            events = [event for event in events if event.get("kind") == kind]
        return events

    def __len__(self) -> int:
        return len(self._buffer)
