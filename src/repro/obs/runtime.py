"""The observability runtime: one flag, one registry, attached sinks.

Instrumented modules import this module once and guard every hook with
the module-global :data:`active` flag::

    from ..obs import runtime as _obs
    ...
    if _obs.active:
        _obs.record_run("compiled", flowchart.name, steps, memo_hit=False)

When observability is off (the default) that guard is the *entire*
cost: a module-attribute load and a truth test per run — measured at
well under the 3% budget on the micro sweep kernel (see the
``telemetry`` section of ``scripts/bench_report.py``).

:func:`enable` turns on metric collection and (optionally) attaches
trace sinks; :func:`disable` restores the no-op state.  The
:func:`observed` context manager brackets the two for harness code.
Box-level ``box_step`` events are *sampled*: ``box_sample=N`` emits
one event every N interpreted boxes (0 disables box events entirely).
"""

from __future__ import annotations

import contextlib
import itertools
import threading
import time
from typing import Dict, Iterable, List, Optional

from .events import EVENT_KINDS
from .metrics import STEP_BUCKETS, MetricsRegistry

#: The process-wide registry every hook records into.
registry = MetricsRegistry()

#: Fast no-op guard — True iff metrics and/or tracing are enabled.
active: bool = False

#: True iff at least one trace sink is attached.
trace_active: bool = False

#: Emit a ``box_step`` event every N interpreted boxes (0 = never).
box_sample: int = 0

_sinks: List = []
_lock = threading.Lock()
_seq = itertools.count()
_t0 = time.monotonic()


def enable(metrics: bool = True, sinks: Iterable = (),
           box_sample_every: int = 0, reset: bool = False) -> None:
    """Turn the runtime on.

    ``metrics`` enables registry collection; ``sinks`` attaches trace
    sinks (objects with ``write(dict)``/``flush()``); ``reset`` clears
    the registry first so the coming run reports only itself.
    """
    global active, trace_active, box_sample, _t0
    with _lock:
        if reset:
            registry.reset()
        for sink in sinks:
            _sinks.append(sink)
        trace_active = bool(_sinks)
        box_sample = max(0, int(box_sample_every))
        _t0 = time.monotonic()
        active = bool(metrics) or trace_active


def disable() -> None:
    """Return to the no-op state, flushing (not closing) any sinks."""
    global active, trace_active, box_sample
    with _lock:
        for sink in _sinks:
            try:
                sink.flush()
            except Exception:  # pragma: no cover - sink teardown best effort
                pass
        _sinks.clear()
        trace_active = False
        box_sample = 0
        active = False


@contextlib.contextmanager
def observed(metrics: bool = True, sinks: Iterable = (),
             box_sample_every: int = 0, reset: bool = False):
    """Context manager: ``enable(...)`` on entry, ``disable()`` on exit."""
    enable(metrics=metrics, sinks=sinks, box_sample_every=box_sample_every,
           reset=reset)
    try:
        yield registry
    finally:
        disable()


def snapshot() -> Dict:
    """The registry snapshot (shorthand for ``registry.snapshot()``)."""
    return registry.snapshot()


def emit(kind: str, **fields) -> None:
    """Send one typed event to every attached sink (no-op untraced)."""
    if not trace_active:
        return
    if kind not in EVENT_KINDS:  # pragma: no cover - caller bug guard
        raise ValueError(f"unknown event kind {kind!r}")
    event = {"kind": kind, "seq": next(_seq),
             "t": round(time.monotonic() - _t0, 6)}
    event.update(fields)
    with _lock:
        for sink in _sinks:
            sink.write(event)


def inc(name: str, amount: int = 1) -> None:
    registry.counter(name).inc(amount)


def observe(name: str, value: float, bounds=None) -> None:
    registry.histogram(name, bounds).observe(value)


def set_gauge(name: str, value: float) -> None:
    registry.gauge(name).set(value)


# ---------------------------------------------------------------------------
# Hooks for the instrumented hot layers (call only behind ``if active``)
# ---------------------------------------------------------------------------

def record_run(backend: str, program: str, steps: int,
               memo_hit: Optional[bool] = None) -> None:
    """One flowchart execution completed on ``backend``."""
    registry.counter(f"run.count.{backend}").inc()
    registry.counter("run.steps_total").inc(steps)
    registry.histogram("run.steps", STEP_BUCKETS).observe(steps)
    if memo_hit is not None:
        name = "memo.exec.hits" if memo_hit else "memo.exec.misses"
        registry.counter(name).inc()
    if trace_active:
        emit("run_end", program=program, backend=backend, steps=steps)


def record_fuel_exhausted(program: str, fuel: int) -> None:
    registry.counter("run.fuel_exhausted").inc()
    if trace_active:
        emit("fuel_exhausted", program=program, fuel=fuel)


def record_violation(program: str, source: str, **fields) -> None:
    registry.counter("violations.raised").inc()
    registry.counter(f"violations.{source}").inc()
    if trace_active:
        emit("violation", program=program, source=source, **fields)


def record_surveil_run(program: str, steps: int, violated: bool,
                       timed: bool, halted_early: bool) -> None:
    registry.counter("surveillance.runs").inc()
    registry.counter("surveillance.steps_total").inc(steps)
    if violated:
        record_violation(program, "surveillance", steps=steps,
                         timed=timed, early=halted_early)


def record_instrument_memo(hit: bool) -> None:
    name = "memo.instrument.hits" if hit else "memo.instrument.misses"
    registry.counter(name).inc()


def record_chunk_evaluated(points: int, accepts: int) -> None:
    registry.counter("sweep.points_evaluated").inc(points)
    registry.counter("sweep.points_accepted").inc(accepts)
