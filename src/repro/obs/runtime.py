"""The observability runtime: one flag, one registry, attached sinks.

Instrumented modules import this module once and guard every hook with
the module-global :data:`active` flag::

    from ..obs import runtime as _obs
    ...
    if _obs.active:
        _obs.record_run("compiled", flowchart.name, steps, memo_hit=False)

When observability is off (the default) that guard is the *entire*
cost: a module-attribute load and a truth test per run — measured at
well under the 3% budget on the micro sweep kernel (see the
``telemetry`` section of ``scripts/bench_report.py``).

:func:`enable` turns on metric collection and (optionally) attaches
trace sinks; :func:`disable` restores the no-op state.  The
:func:`observed` context manager brackets the two for harness code.
Box-level ``box_step`` events are *sampled*: ``box_sample=N`` emits
one event every N interpreted boxes (0 disables box events entirely).
"""

from __future__ import annotations

import contextlib
import itertools
import os
import threading
import time
from typing import Dict, Iterable, List, Optional

from .events import EVENT_KINDS
from .metrics import STEP_BUCKETS, MetricsRegistry

#: The process-wide registry every hook records into.
registry = MetricsRegistry()

#: Fast no-op guard — True iff metrics and/or tracing are enabled.
active: bool = False

#: True iff at least one trace sink is attached.
trace_active: bool = False

#: True iff mechanisms should attach provenance to violations: when a
#: surveilled/instrumented run or a lint pass rejects, an
#: ``explanation`` event carrying the input-index influence chain is
#: emitted (see :mod:`repro.obs.provenance`).  Needs ``trace_active``.
explain_active: bool = False

#: Emit a ``box_step`` event every N interpreted boxes (0 = never).
box_sample: int = 0

_sinks: List = []
_lock = threading.Lock()
_seq = itertools.count()
_t0 = time.monotonic()


def enable(metrics: bool = True, sinks: Iterable = (),
           box_sample_every: int = 0, reset: bool = False,
           explain: bool = False) -> None:
    """Turn the runtime on.

    ``metrics`` enables registry collection; ``sinks`` attaches trace
    sinks (objects with ``write(dict)``/``flush()``); ``reset`` clears
    the registry first so the coming run reports only itself;
    ``explain`` makes violations carry provenance (``explanation``
    events — only meaningful with at least one sink attached).
    """
    global active, trace_active, box_sample, explain_active, _t0
    with _lock:
        if reset:
            registry.reset()
        for sink in sinks:
            _sinks.append(sink)
        trace_active = bool(_sinks)
        box_sample = max(0, int(box_sample_every))
        explain_active = bool(explain) and trace_active
        _t0 = time.monotonic()
        active = bool(metrics) or trace_active


def disable() -> None:
    """Return to the no-op state, flushing (not closing) any sinks."""
    global active, trace_active, box_sample, explain_active
    with _lock:
        for sink in _sinks:
            try:
                sink.flush()
            except Exception:  # pragma: no cover - sink teardown best effort
                pass
        _sinks.clear()
        trace_active = False
        explain_active = False
        box_sample = 0
        active = False


@contextlib.contextmanager
def observed(metrics: bool = True, sinks: Iterable = (),
             box_sample_every: int = 0, reset: bool = False,
             explain: bool = False):
    """Context manager: ``enable(...)`` on entry, ``disable()`` on exit."""
    enable(metrics=metrics, sinks=sinks, box_sample_every=box_sample_every,
           reset=reset, explain=explain)
    try:
        yield registry
    finally:
        disable()


def snapshot() -> Dict:
    """The registry snapshot (shorthand for ``registry.snapshot()``)."""
    return registry.snapshot()


def emit(kind: str, **fields) -> None:
    """Send one typed event to every attached sink (no-op untraced).

    Leaf events emitted while a span is open on this thread are
    automatically attributed to it via a ``span`` field, so trace
    analytics can tie a ``violation``/``run_end`` back to the point
    span it happened inside.
    """
    if not trace_active:
        return
    if kind not in EVENT_KINDS:  # pragma: no cover - caller bug guard
        raise ValueError(f"unknown event kind {kind!r}")
    event = {"kind": kind, "seq": next(_seq),
             "t": round(time.monotonic() - _t0, 6)}
    event.update(fields)
    if "span" not in event and kind not in ("span_start", "span_end"):
        enclosing = current_span()
        if enclosing is not None:
            event["span"] = enclosing
    with _lock:
        for sink in _sinks:
            sink.write(event)


# ---------------------------------------------------------------------------
# Hierarchical spans (sweep -> pair -> chunk -> point; lint -> pass)
# ---------------------------------------------------------------------------

#: Span ids carry the pid so trees reassemble across process-pool
#: workers: every id a reader sees is globally unique, and a parent
#: link emitted in the supervising parent stays valid no matter which
#: process wrote the surrounding events.
_span_counter = itertools.count(1)
_span_stack = threading.local()


class Span:
    """A live span handle: its id, operation, and start time."""

    __slots__ = ("id", "op", "started", "_pushed")

    def __init__(self, span_id: str, op: str, started: float,
                 pushed: bool) -> None:
        self.id = span_id
        self.op = op
        self.started = started
        self._pushed = pushed

    def __repr__(self) -> str:
        return f"Span({self.op}, id={self.id})"


def _stack() -> List[str]:
    stack = getattr(_span_stack, "ids", None)
    if stack is None:
        stack = []
        _span_stack.ids = stack
    return stack


def current_span() -> Optional[str]:
    """The innermost open span id on this thread (None outside spans)."""
    stack = _stack()
    return stack[-1] if stack else None


def span_begin(op: str, parent: Optional[str] = None, push: bool = False,
               **fields) -> Optional[Span]:
    """Open a span; emits ``span_start`` and returns a handle.

    ``parent`` links the tree explicitly (falling back to this thread's
    innermost open span); ``push`` additionally makes the new span the
    thread's current one until :func:`span_finish` — use it for spans
    that strictly nest on one thread (points, passes), not for spans
    supervised across callbacks (chunks in a pool).

    Returns None when tracing is off — every span function accepts
    that None, so callers never need their own guard.
    """
    if not trace_active:
        return None
    span_id = f"{os.getpid()}-{next(_span_counter)}"
    if parent is None:
        parent = current_span()
    handle = Span(span_id, op, time.monotonic(), push)
    start_fields = {"span": span_id, "op": op}
    if parent is not None:
        start_fields["parent"] = parent
    start_fields.update(fields)
    emit("span_start", **start_fields)
    if push:
        _stack().append(span_id)
    return handle


def span_finish(handle: Optional[Span], **fields) -> None:
    """Close a span opened by :func:`span_begin` (None is a no-op)."""
    if handle is None:
        return
    if handle._pushed:
        stack = _stack()
        if stack and stack[-1] == handle.id:
            stack.pop()
    if not trace_active:
        return
    emit("span_end", span=handle.id, op=handle.op,
         elapsed_s=round(time.monotonic() - handle.started, 6), **fields)


@contextlib.contextmanager
def span(op: str, parent: Optional[str] = None, **fields):
    """Context manager: a pushed span around a block; yields the handle."""
    handle = span_begin(op, parent=parent, push=True, **fields)
    try:
        yield handle
    finally:
        span_finish(handle)


def inc(name: str, amount: int = 1) -> None:
    registry.counter(name).inc(amount)


def observe(name: str, value: float, bounds=None) -> None:
    registry.histogram(name, bounds).observe(value)


def set_gauge(name: str, value: float) -> None:
    registry.gauge(name).set(value)


# ---------------------------------------------------------------------------
# Hooks for the instrumented hot layers (call only behind ``if active``)
# ---------------------------------------------------------------------------

def record_run(backend: str, program: str, steps: int,
               memo_hit: Optional[bool] = None) -> None:
    """One flowchart execution completed on ``backend``."""
    registry.counter(f"run.count.{backend}").inc()
    registry.counter("run.steps_total").inc(steps)
    registry.histogram("run.steps", STEP_BUCKETS).observe(steps)
    if memo_hit is not None:
        name = "memo.exec.hits" if memo_hit else "memo.exec.misses"
        registry.counter(name).inc()
    if trace_active:
        emit("run_end", program=program, backend=backend, steps=steps)


def record_fuel_exhausted(program: str, fuel: int) -> None:
    registry.counter("run.fuel_exhausted").inc()
    if trace_active:
        emit("fuel_exhausted", program=program, fuel=fuel)


def record_value_cap_exceeded(program: str, cap: int) -> None:
    registry.counter("run.value_cap_exceeded").inc()
    if trace_active:
        emit("value_cap_exceeded", program=program, cap=cap)


def record_violation(program: str, source: str, **fields) -> None:
    registry.counter("violations.raised").inc()
    registry.counter(f"violations.{source}").inc()
    if trace_active:
        emit("violation", program=program, source=source, **fields)


def record_surveil_run(program: str, steps: int, violated: bool,
                       timed: bool, halted_early: bool) -> None:
    registry.counter("surveillance.runs").inc()
    registry.counter("surveillance.steps_total").inc(steps)
    if violated:
        record_violation(program, "surveillance", steps=steps,
                         timed=timed, early=halted_early)


def record_instrument_memo(hit: bool) -> None:
    name = "memo.instrument.hits" if hit else "memo.instrument.misses"
    registry.counter(name).inc()


def record_chunk_evaluated(points: int, accepts: int) -> None:
    registry.counter("sweep.points_evaluated").inc(points)
    registry.counter("sweep.points_accepted").inc(accepts)
