"""Violation provenance: *why* a mechanism said Λ, as a data structure.

The surveillance mechanism (Section 3) rejects a point when the label
of the output — the set of input indices that may have influenced it —
escapes the policy's J.  Until now the harness recorded that verdict as
a counter tick; this module reconstructs the *influence path* that
justified it: which assignments propagated which input indices, which
decisions folded them into the program counter, and which halt (or
timed guard) finally tested them against J.

Two producers build the same :class:`Explanation` record:

- :func:`explain` replays one concrete point under the surveillance
  interpreter with an observer attached, then takes a backward
  dependence slice over the recorded label states.  Because the
  interpreter-level mechanism, the instrumented flowchart, and the
  compiled backend are extensionally equal (bench E04), this one
  derivation explains a rejection from *any* execution backend.
- :func:`explain_static` reads the flowlint influence fixpoint
  (:mod:`repro.analysis.influence`) and lists the assignments and
  decisions whose static labels carry the excess indices — the
  compile-time counterpart, defined even without a concrete point.

When the runtime's ``explain`` flag is on
(``obs.enable(..., explain=True)``), the surveillance mechanisms and
the lint manager emit each record as an ``explanation`` trace event, so
the chain is recoverable offline via ``repro trace explain``.  The CLI
front door is ``repro explain``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

# The flowchart/surveillance layers import repro.obs at module load
# (for the runtime hooks), so this module must import them lazily —
# inside the functions — to keep the package acyclic.  Annotations stay
# as strings for the same reason.
NodeId = str
Label = frozenset

#: Mirrors repro.flowchart.interpreter.DEFAULT_FUEL (lazy import keeps
#: the package acyclic; the interpreter's value wins if they diverge).
DEFAULT_FUEL = 100_000


class ChainStep:
    """One link of the influence chain, anchored to a flowchart box.

    ``kind`` is one of ``"input"`` (an input variable introduced its
    index), ``"assign"`` (a surveillance-rule-2 label join), ``"decision"``
    (a rule-3 fold into C̄), or ``"check"`` (the rule-4 halt test / the
    timed rule-3′ guard that issued the verdict).
    """

    __slots__ = ("step", "node", "kind", "detail", "target", "label",
                 "sources")

    def __init__(self, step: Optional[int], node: Optional[NodeId],
                 kind: str, detail: str, target: Optional[str],
                 label: Sequence[int],
                 sources: Sequence[str] = ()) -> None:
        self.step = step
        self.node = node
        self.kind = kind
        self.detail = detail
        self.target = target
        self.label = sorted(label)
        self.sources = sorted(sources)

    def to_dict(self) -> Dict:
        return {
            "step": self.step,
            "node": self.node,
            "kind": self.kind,
            "detail": self.detail,
            "target": self.target,
            "label": list(self.label),
            "sources": list(self.sources),
        }

    def render(self) -> str:
        where = f"step {self.step:>3}  " if self.step is not None else "static  "
        label = "{" + ",".join(str(i) for i in self.label) + "}"
        return f"{where}[{self.kind:<8}] {self.detail}  -> {label}"

    def __repr__(self) -> str:
        return f"ChainStep({self.kind}, node={self.node!r}, {self.detail!r})"


class Explanation:
    """The full provenance record of one mechanism verdict."""

    __slots__ = ("program", "policy", "point", "verdict", "site", "clause",
                 "disallowed", "chain", "fuel", "timed", "mode")

    def __init__(self, program: str, policy: str,
                 point: Optional[Sequence[int]], verdict: str,
                 site: Optional[NodeId], clause: str,
                 disallowed: Sequence[int], chain: List[ChainStep],
                 fuel: Optional[Dict] = None, timed: bool = False,
                 mode: str = "dynamic") -> None:
        self.program = program
        self.policy = policy
        self.point = list(point) if point is not None else None
        #: "accepted" | "violation" | "fuel_exhausted"
        self.verdict = verdict
        self.site = site
        self.clause = clause
        self.disallowed = sorted(disallowed)
        self.chain = list(chain)
        self.fuel = dict(fuel) if fuel else None
        self.timed = timed
        #: "dynamic" (a replayed point) or "static" (the lint fixpoint)
        self.mode = mode

    @property
    def violated(self) -> bool:
        return self.verdict == "violation"

    def to_dict(self) -> Dict:
        return {
            "program": self.program,
            "policy": self.policy,
            "point": self.point,
            "verdict": self.verdict,
            "site": self.site,
            "clause": self.clause,
            "disallowed": list(self.disallowed),
            "chain": [step.to_dict() for step in self.chain],
            "fuel": self.fuel,
            "timed": self.timed,
            "mode": self.mode,
        }

    def event_fields(self) -> Dict:
        """The payload of the ``explanation`` trace event."""
        fields = {
            "program": self.program,
            "policy": self.policy,
            "point": self.point,
            "site": self.site,
            "chain": [step.to_dict() for step in self.chain],
            "verdict": self.verdict,
            "clause": self.clause,
            "disallowed": list(self.disallowed),
            "mode": self.mode,
        }
        if self.fuel:
            fields["fuel"] = self.fuel
        return fields

    def render(self) -> str:
        point = (f" at point {tuple(self.point)}"
                 if self.point is not None else "")
        head = (f"explanation [{self.mode}]: {self.program} x {self.policy}"
                f"{point} -- {self.verdict.upper()}")
        if self.site is not None:
            head += f" at {self.site}"
        lines = [head, f"  clause: {self.clause}"]
        if self.disallowed:
            lines.append("  disallowed indices: "
                         + ", ".join(str(i) for i in self.disallowed))
        if self.fuel:
            lines.append(f"  fuel: used {self.fuel.get('used')} of "
                         f"{self.fuel.get('budget')}")
        if self.chain:
            lines.append("  influence chain:")
            for step in self.chain:
                lines.append(f"    {step.render()}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"Explanation({self.program} x {self.policy}, "
                f"{self.verdict}, {len(self.chain)} step(s))")


def _label_text(label) -> str:
    return "{" + ",".join(str(i) for i in sorted(label)) + "}"


# ---------------------------------------------------------------------------
# Dynamic provenance: replay one point, slice backwards
# ---------------------------------------------------------------------------

def explain(flowchart: "Flowchart", policy: "AllowPolicy",
            point: Sequence[int], timed: bool = False,
            forgetting: bool = True,
            fuel: int = DEFAULT_FUEL) -> Explanation:
    """Replay ``point`` under surveillance and derive its provenance.

    Records every visited box's entry label state via the ``surveil``
    observer hook, then walks the record backwards from the verdict
    site, keeping exactly the assignments/decisions through which the
    offending indices flowed (a dependence slice over labels — a step
    whose label lacks an offending index cannot lie on its propagation
    path, since labels are monotone joins of their sources).
    """
    from ..core.errors import FuelExhaustedError
    from ..flowchart.boxes import AssignBox, DecisionBox
    from ..surveillance.dynamic import surveil
    from ..surveillance.labels import join

    allowed = policy.allowed
    records: List[Tuple[NodeId, Dict[str, Label], Label]] = []

    def observer(node: NodeId, labels: Dict[str, Label],
                 pc_label: Label) -> None:
        records.append((node, dict(labels), pc_label))

    try:
        # record=False: this is a replay of a point the mechanism already
        # recorded — counting it again would double every metric.
        run = surveil(flowchart, point, allowed, timed=timed,
                      forgetting=forgetting, fuel=fuel, observer=observer,
                      record=False)
    except FuelExhaustedError as error:
        site = records[-1][0] if records else None
        return Explanation(
            flowchart.name, policy.name, point, "fuel_exhausted", site,
            f"fuel budget {error.fuel} exhausted before any verdict",
            disallowed=(), chain=[],
            fuel={"budget": error.fuel, "used": error.fuel,
                  "exhausted": True},
            timed=timed)

    site, site_labels, site_pc = records[-1]
    site_box = flowchart.boxes[site]
    output = flowchart.output_variable

    # Flows are judged by the policy in force when they complete, not
    # the initial one — after a policy_change the clause must show the
    # J that actually ran the check (and its epoch), or an epoch
    # violation reads as "⊆ J" yet VIOLATION.
    in_force = run.final_allowed
    j_text = f"J = {_label_text(in_force)}"
    if in_force != allowed:
        j_text += f" (in force @e{run.epoch})"

    # The offending label and the clause that tested it.
    if isinstance(site_box, DecisionBox) and run.halted_early:
        offending = join(*(site_labels[name]
                           for name in site_box.predicate.variables()))
        interesting: Set[str] = set(site_box.predicate.variables())
        pc_interesting = False
        clause = (f"timed guard: test label {_label_text(offending)} "
                  f"{'⊆' if offending <= in_force else '⊄'} "
                  f"{j_text}")
    else:
        offending = join(site_labels[output], site_pc)
        interesting = {output}
        pc_interesting = True
        clause = (f"halt check: ȳ ∪ C̄ = {_label_text(offending)} "
                  f"{'⊆' if offending <= in_force else '⊄'} "
                  f"{j_text}")

    verdict = "violation" if run.violated else "accepted"
    disallowed = offending - in_force
    # Slice toward what went wrong; for accepted points, toward
    # everything the user legitimately learned.
    focus = disallowed if run.violated else offending

    chain: List[ChainStep] = []
    chain.append(ChainStep(
        len(records), site, "check",
        ("timed test guard" if isinstance(site_box, DecisionBox)
         else f"halt: ȳ ∪ C̄ vs {j_text}"),
        None, offending))

    # Backward pass over records[0..-2]: the box at record i produced
    # the state at record i+1.
    for index in range(len(records) - 2, -1, -1):
        node, labels, pc_label = records[index]
        box = flowchart.boxes[node]
        after_labels = records[index + 1][1]
        if isinstance(box, AssignBox) and box.target in interesting:
            new_label = after_labels.get(box.target, frozenset())
            if new_label & focus or not focus:
                sources = sorted(box.expression.variables())
                chain.append(ChainStep(
                    index + 1, node, "assign",
                    f"{box.target} := {box.expression!r} "
                    f"(x̄ from {', '.join(sources) or 'constants'}"
                    f"{', C̄' if pc_label else ''})",
                    box.target, new_label, sources))
            if forgetting:
                interesting.discard(box.target)
            interesting.update(box.expression.variables())
            pc_interesting = True
        elif isinstance(box, DecisionBox) and pc_interesting:
            test_label = join(*(labels[name]
                                for name in box.predicate.variables()))
            if test_label & focus or not focus:
                sources = sorted(box.predicate.variables())
                chain.append(ChainStep(
                    index + 1, node, "decision",
                    f"test {box.predicate!r} folds "
                    f"{_label_text(test_label)} into C̄",
                    None, test_label, sources))
                interesting.update(box.predicate.variables())

    # Input introductions: which x_i seeded the chain.  Appended in
    # reverse so the final (reversed) chain lists them ascending.
    inputs_in = list(enumerate(flowchart.input_variables, 1))
    for position, name in reversed(inputs_in):
        if name in interesting and (position in focus or not focus):
            chain.append(ChainStep(
                0, None, "input",
                f"input {name} (index {position}) enters with "
                f"{_label_text({position})}",
                name, (position,)))

    chain.reverse()
    return Explanation(
        flowchart.name, policy.name, point, verdict, site, clause,
        disallowed, chain,
        fuel={"budget": fuel, "used": run.steps, "exhausted": False},
        timed=timed)


# ---------------------------------------------------------------------------
# Static provenance: read the flowlint influence fixpoint
# ---------------------------------------------------------------------------

def explain_static(flowchart: "Flowchart",
                   policy: "AllowPolicy") -> Explanation:
    """Provenance from the static influence fixpoint — no point needed.

    Lists, in reachability order, every assignment whose static label
    carries an excess index and every decision whose test label does,
    ending at the halt boxes whose observable label escapes J.  This is
    the chain a flowlint FLOW001 rejection is justified by.
    """
    from ..analysis.influence import influence_analysis
    from ..flowchart.boxes import AssignBox, DecisionBox, HaltBox

    analysis = influence_analysis(flowchart)
    verdict = analysis.verdict(policy)
    allowed = policy.allowed
    excess = verdict.excess
    focus = excess if excess else verdict.output_label

    chain: List[ChainStep] = []
    for position, name in enumerate(flowchart.input_variables, 1):
        if position in focus or not focus:
            chain.append(ChainStep(
                None, None, "input",
                f"input {name} (index {position}) enters with "
                f"{_label_text({position})}",
                name, (position,)))

    order = flowchart.reachable_from(flowchart.start_id)
    for node in order:
        box = flowchart.boxes[node]
        if isinstance(box, AssignBox):
            # Out-label of the target after this box (entry label of its
            # successor's state is the fixpoint's merged view; use the
            # transfer directly for a per-box attribution).
            entry = analysis.var_influence.get(node, {})
            incoming = frozenset()
            for source in box.expression.variables():
                incoming |= entry.get(source, frozenset())
            incoming |= analysis.pc_influence.get(node, frozenset())
            out_label = entry.get(box.target, frozenset()) | incoming
            if out_label & focus:
                sources = sorted(box.expression.variables())
                chain.append(ChainStep(
                    None, node, "assign",
                    f"{box.target} := {box.expression!r} may carry "
                    f"{_label_text(out_label)}",
                    box.target, out_label, sources))
        elif isinstance(box, DecisionBox):
            test_label = analysis.test_label(node)
            if test_label & focus:
                chain.append(ChainStep(
                    None, node, "decision",
                    f"test {box.predicate!r} folds "
                    f"{_label_text(test_label)} into C̄",
                    None, test_label,
                    sorted(box.predicate.variables())))

    halt_labels = analysis.halt_labels()
    site: Optional[NodeId] = None
    for halt_id, label in halt_labels.items():
        escaped = label - allowed
        if (escaped and verdict.certified is False) or (
                not excess and isinstance(flowchart.boxes[halt_id],
                                          HaltBox)):
            chain.append(ChainStep(
                None, halt_id, "check",
                f"halt: observable label {_label_text(label)} "
                f"{'⊆' if label <= allowed else '⊄'} "
                f"J = {_label_text(allowed)}",
                None, label))
            if escaped and site is None:
                site = halt_id
    if site is None and halt_labels:
        site = next(iter(sorted(halt_labels)))

    clause = (f"static verdict: ȳ = {_label_text(verdict.output_label)} "
              f"{'⊆' if verdict.certified else '⊄'} "
              f"J = {_label_text(allowed)}")
    return Explanation(
        flowchart.name, policy.name, None,
        "accepted" if verdict.certified else "violation",
        site, clause, excess, chain, mode="static")
