"""Capability systems in the paper's framework (Section 6, Example 6)."""

from .model import (READ, RIGHTS, STAT, WRITE, Capability, CList, ConstOp,
                    Operation, ReadOp, Script, StatOp, SumOp)
from .mechanism import (capability_monitor, information_audit,
                        intended_policy, object_domain, script_program)

__all__ = [
    "READ", "WRITE", "STAT", "RIGHTS",
    "Capability", "CList", "Operation", "ReadOp", "StatOp", "SumOp",
    "ConstOp", "Script",
    "object_domain", "script_program", "capability_monitor",
    "intended_policy", "information_audit",
]
