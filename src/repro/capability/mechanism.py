"""The capability reference monitor as a formal protection mechanism.

Bridges the capability system into Section 2: the object contents are
the program's inputs, a :class:`~repro.capability.model.Script` is the
program, and the monitor — refuse any operation whose required rights
the C-list lacks — is a :class:`~repro.core.mechanism.ProtectionMechanism`.

Two policies matter:

- the **intended information policy** of a C-list
  (:func:`intended_policy`): allow exactly the objects the process
  holds *any* right on that reveals contents (``read``) — what a user
  granting capabilities believes they granted;
- the access-control mechanism's **actual** enforcement, which
  :func:`repro.core.soundness.check_soundness` compares against it.

Example 6 falls out: deny ``read`` on the secret but leave ``stat``,
and the monitor passes a script whose value depends on the secret — the
mechanism is a perfectly correct *access* monitor and an unsound
*information* mechanism.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from ..core.domains import Domain, ProductDomain
from ..core.errors import DomainError
from ..core.mechanism import ProtectionMechanism, ViolationNotice
from ..core.policy import AllowPolicy, allow
from ..core.program import Program
from .model import READ, CList, Script


def object_domain(object_names: Sequence[str], low: int = 0,
                  high: int = 2) -> ProductDomain:
    """One integer domain per object, in the given (1-based) order."""
    if not object_names:
        raise DomainError("need at least one object")
    return ProductDomain.uniform(Domain.integers(low, high, name="Obj"),
                                 len(object_names))


def script_program(script: Script, object_names: Sequence[str],
                   domain: Optional[ProductDomain] = None) -> Program:
    """The script as a Section 2 program over object contents."""
    names = tuple(object_names)
    domain = domain if domain is not None else object_domain(names)
    unknown = script.reads() - set(names)
    if unknown:
        raise DomainError(f"script reads unknown objects {sorted(unknown)}")

    def run(*contents):
        store = dict(zip(names, contents))
        return script.evaluate(store)

    return Program(run, domain, name=f"Q[{script.name}]")


def capability_monitor(script: Script, clist: CList,
                       object_names: Sequence[str],
                       domain: Optional[ProductDomain] = None,
                       program: Optional[Program] = None) -> ProtectionMechanism:
    """The access-control mechanism: run the script iff every operation's
    required rights are held; otherwise a violation notice naming the
    first missing right.

    The monitor's decision depends only on the (static) C-list and the
    script — never on object contents — so it cannot leak through its
    *notices*; whether it leaks through *permitted results* is exactly
    the soundness question.
    """
    names = tuple(object_names)
    protected = program if program is not None else script_program(
        script, names, domain)

    missing: Optional[Tuple[str, str]] = None
    for operation in script.operations:
        for object_name, right in operation.required():
            if not clist.permits(object_name, right):
                missing = (object_name, right)
                break
        if missing:
            break

    def monitor(*contents):
        if missing is not None:
            return ViolationNotice(
                f"capability violation: need {missing[1]} on "
                f"{missing[0]}")
        return protected(*contents)

    return ProtectionMechanism(monitor, protected,
                               name=f"M-cap[{script.name}]")


def intended_policy(clist: CList,
                    object_names: Sequence[str]) -> AllowPolicy:
    """The information policy a C-list *intends*: allow exactly the
    objects the process may ``read``.

    (Granting ``stat`` is commonly believed not to grant contents;
    Example 6 is the demonstration that this belief needs checking.)
    """
    names = tuple(object_names)
    indices = tuple(position for position, name in enumerate(names, 1)
                    if clist.permits(name, READ))
    return allow(*indices, arity=len(names))


def information_audit(script: Script, clist: CList,
                      object_names: Sequence[str],
                      domain: Optional[ProductDomain] = None) -> Dict[str, object]:
    """One-call audit: does the monitor enforce the intended policy?

    Returns the access verdict (does the script run at all?), the
    soundness verdict against :func:`intended_policy`, and — when
    unsound — the objects whose contents escape despite lacking
    ``read``.
    """
    from ..core.soundness import check_soundness

    names = tuple(object_names)
    domain = domain if domain is not None else object_domain(names)
    program = script_program(script, names, domain)
    monitor = capability_monitor(script, clist, names, domain,
                                 program=program)
    policy = intended_policy(clist, names)
    report = check_soundness(monitor, policy, domain)

    escaping = []
    if not report.sound:
        allowed_positions = set(policy.indices)
        for position, name in enumerate(names, 1):
            if position not in allowed_positions and name in script.reads():
                escaping.append(name)
    runs = monitor.passes(*next(iter(domain)))
    return {
        "script": script.name,
        "clist": repr(clist),
        "access_granted": runs,
        "intended_policy": policy.name,
        "sound": report.sound,
        "escaping_objects": escaping,
    }
