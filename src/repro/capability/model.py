"""A capability system in the paper's framework (Section 6, Example 6).

Section 6 closes: *"Our model ... can be used to model capability
systems as well as surveillance."*  This package does so, in the style
of HYDRA [17]: objects with integer contents, processes holding
capability lists (C-lists), and operations that execute only when the
C-list holds the required right.

The point the model makes executable is **Example 6**:

    *Enforcing an access control policy that specifies that the
    operation READFILE cannot be performed is not the same as ensuring
    that information about A is not extracted.  The operating system
    may have a sequence of operations excluding READFILE that has the
    same effect.*

Here, a process denied ``read`` on a secret object may still hold an
innocuous-looking aggregate right (``stat``) whose result depends on the
secret — and the soundness checker duly convicts the access-control
mechanism (see :mod:`repro.capability.mechanism`).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..core.errors import DomainError

#: The rights a capability may carry.
READ = "read"
WRITE = "write"
STAT = "stat"

RIGHTS = frozenset((READ, WRITE, STAT))


class Capability:
    """A transferable (object, rights) token."""

    __slots__ = ("object_name", "rights")

    def __init__(self, object_name: str, rights: Iterable[str]) -> None:
        rights = frozenset(rights)
        unknown = rights - RIGHTS
        if unknown:
            raise DomainError(f"unknown rights {sorted(unknown)}")
        self.object_name = object_name
        self.rights: FrozenSet[str] = rights

    def __repr__(self) -> str:
        return f"Capability({self.object_name}, {sorted(self.rights)})"


class CList:
    """A process's capability list.

    ``permits(obj, right)`` is the reference monitor's single question.
    ``restrict``/``grant`` return new C-lists (C-lists are immutable so
    experiments can compare configurations safely).
    """

    def __init__(self, capabilities: Iterable[Capability] = ()) -> None:
        self._rights: Dict[str, FrozenSet[str]] = {}
        for capability in capabilities:
            existing = self._rights.get(capability.object_name, frozenset())
            self._rights[capability.object_name] = existing | capability.rights

    def permits(self, object_name: str, right: str) -> bool:
        return right in self._rights.get(object_name, frozenset())

    def rights_on(self, object_name: str) -> FrozenSet[str]:
        return self._rights.get(object_name, frozenset())

    def objects(self) -> Tuple[str, ...]:
        return tuple(sorted(self._rights))

    def grant(self, capability: Capability) -> "CList":
        new = CList()
        new._rights = dict(self._rights)
        existing = new._rights.get(capability.object_name, frozenset())
        new._rights[capability.object_name] = existing | capability.rights
        return new

    def restrict(self, object_name: str,
                 remove: Iterable[str]) -> "CList":
        """Return a C-list with the listed rights removed."""
        new = CList()
        new._rights = dict(self._rights)
        remaining = new._rights.get(object_name, frozenset()) - frozenset(remove)
        if remaining:
            new._rights[object_name] = remaining
        else:
            new._rights.pop(object_name, None)
        return new

    def __repr__(self) -> str:
        rendered = ", ".join(f"{obj}:{''.join(sorted(r[0] for r in rights))}"
                             for obj, rights in sorted(self._rights.items()))
        return f"CList({{{rendered}}})"


class Operation:
    """Base class for capability-system operations.

    Each operation declares the rights it requires and computes a value
    over the object store.  The *declared requirement* vs the *actual
    information dependence* is exactly the access-vs-information gap
    of Example 6.
    """

    def required(self) -> Tuple[Tuple[str, str], ...]:
        """(object, right) pairs the monitor must check."""
        raise NotImplementedError

    def reads(self) -> Tuple[str, ...]:
        """Objects whose contents influence the result."""
        raise NotImplementedError

    def evaluate(self, store: Dict[str, int]) -> int:
        raise NotImplementedError


class ReadOp(Operation):
    """READFILE: requires ``read``, returns the object's contents."""

    __slots__ = ("object_name",)

    def __init__(self, object_name: str) -> None:
        self.object_name = object_name

    def required(self):
        return ((self.object_name, READ),)

    def reads(self):
        return (self.object_name,)

    def evaluate(self, store):
        return store[self.object_name]

    def __repr__(self):
        return f"ReadOp({self.object_name})"


class StatOp(Operation):
    """A 'harmless' metadata operation: requires only ``stat``...

    ...but its result (here: whether the object is non-empty) depends on
    the contents.  This is the Example 6 trap in one operation.
    """

    __slots__ = ("object_name",)

    def __init__(self, object_name: str) -> None:
        self.object_name = object_name

    def required(self):
        return ((self.object_name, STAT),)

    def reads(self):
        return (self.object_name,)

    def evaluate(self, store):
        return 1 if store[self.object_name] != 0 else 0

    def __repr__(self):
        return f"StatOp({self.object_name})"


class SumOp(Operation):
    """An aggregate over several objects; requires ``stat`` on each."""

    __slots__ = ("object_names",)

    def __init__(self, object_names: Sequence[str]) -> None:
        self.object_names = tuple(object_names)

    def required(self):
        return tuple((name, STAT) for name in self.object_names)

    def reads(self):
        return self.object_names

    def evaluate(self, store):
        return sum(store[name] for name in self.object_names)

    def __repr__(self):
        return f"SumOp({list(self.object_names)})"


class ConstOp(Operation):
    """A pure computation touching no objects (always permitted)."""

    __slots__ = ("value",)

    def __init__(self, value: int) -> None:
        self.value = value

    def required(self):
        return ()

    def reads(self):
        return ()

    def evaluate(self, store):
        return self.value

    def __repr__(self):
        return f"ConstOp({self.value})"


class Script:
    """A fixed sequence of operations; the script's value is the sum of
    its operations' results (a single-output view function)."""

    def __init__(self, operations: Sequence[Operation],
                 name: str = "script") -> None:
        if not operations:
            raise DomainError("a script needs at least one operation")
        self.operations = tuple(operations)
        self.name = name

    def reads(self) -> FrozenSet[str]:
        result: set = set()
        for operation in self.operations:
            result |= set(operation.reads())
        return frozenset(result)

    def evaluate(self, store: Dict[str, int]) -> int:
        return sum(operation.evaluate(store)
                   for operation in self.operations)

    def __repr__(self) -> str:
        return f"Script({self.name}: {list(self.operations)})"
