"""The simple file system of Example 2.

    *Q : D1 x ... x Dk x F1 x ... x Fk -> E.  Here Di is the set of
    possible values for the i-th "directory"; Fi is the set of values
    for the i-th "file" ... the i-th directory will contain information
    about who can access the i-th file.*

The state is k directories (each granting or denying access to its
file) and k files (integer contents).  A *file-manipulation program* is
any view function over the full state; the canonical ones — read one
file, sum readable files, search — are provided.

Input convention: a k-file system is a 2k-ary program; positions
1..k are the directories, positions k+1..2k the files.  (1-based, as
everywhere in this library.)
"""

from __future__ import annotations

from typing import Callable, Sequence, Tuple

from ..core.domains import Domain, ProductDomain
from ..core.errors import DomainError
from ..core.program import Program

#: Directory values: the i-th directory says whether the user may see file i.
GRANT = "YES"
DENY = "NO"

DIRECTORY_DOMAIN = Domain((GRANT, DENY), name="Dir")


def filesystem_domain(file_count: int, file_low: int = 0,
                      file_high: int = 3) -> ProductDomain:
    """The product domain of a k-file system state.

    Directories first (positions 1..k), then files (k+1..2k).
    """
    if file_count < 1:
        raise DomainError("a file system needs at least one file")
    file_domain = Domain.integers(file_low, file_high, name="File")
    return ProductDomain(*([DIRECTORY_DOMAIN] * file_count
                           + [file_domain] * file_count))


def split_state(state: Sequence, file_count: int) -> Tuple[Tuple, Tuple]:
    """Split a flat input tuple into (directories, files)."""
    state = tuple(state)
    if len(state) != 2 * file_count:
        raise DomainError(
            f"state of a {file_count}-file system has {2 * file_count} "
            f"components, got {len(state)}"
        )
    return state[:file_count], state[file_count:]


def directory_index(i: int) -> int:
    """1-based input position of directory i."""
    return i


def file_index(i: int, file_count: int) -> int:
    """1-based input position of file i."""
    return file_count + i


def read_file_program(i: int, file_count: int,
                      domain: ProductDomain = None) -> Program:
    """The view function "read file i": Q(d, f) = f_i.

    This is the program Example 2's reference monitor protects.
    """
    if not (1 <= i <= file_count):
        raise DomainError(f"file index {i} out of range 1..{file_count}")
    domain = domain if domain is not None else filesystem_domain(file_count)

    def read(*state):
        _, files = split_state(state, file_count)
        return files[i - 1]

    return Program(read, domain, name=f"READFILE({i})")


def sum_readable_program(file_count: int,
                         domain: ProductDomain = None) -> Program:
    """Sum of the files whose directories grant access.

    A content-dependent view function: its value legitimately depends
    on directories and granted files, and on nothing else — so it is
    sound as its own mechanism for the directory-gated policy.
    """
    domain = domain if domain is not None else filesystem_domain(file_count)

    def total(*state):
        directories, files = split_state(state, file_count)
        return sum(value for grant, value in zip(directories, files)
                   if grant == GRANT)

    return Program(total, domain, name="SUM-READABLE")


def search_program(needle: int, file_count: int,
                   domain: ProductDomain = None) -> Program:
    """Index of the first file equal to ``needle`` (0 if none) — over ALL files.

    Deliberately ignores directories: a classic confinement bug.  The
    result depends on denied files, so no gatekeeper that sometimes
    returns its value can be sound for the gated policy — Example 6's
    point that access control (blocking READFILE) is weaker than
    information control.
    """
    domain = domain if domain is not None else filesystem_domain(file_count)

    def search(*state):
        _, files = split_state(state, file_count)
        for position, value in enumerate(files, 1):
            if value == needle:
                return position
        return 0

    return Program(search, domain, name=f"SEARCH({needle})")
