"""Example 2's security policies for the file system.

The interesting one is content-dependent:

    *I(d1,...,dk, f1,...,fk) = (d1,...,dk, f1',...,fk') where fi' = fi
    if di = "YES" and 0 otherwise.  This security policy allows the user
    information about the i-th file only in the case that the i-th
    directory permits it.  Note that the user can always obtain the
    value of all the directories.  Note also that this security policy
    is not of the form allow(...).*

A history-dependent variant (the paper's database remark) is also
provided: a query budget after which everything is filtered.
"""

from __future__ import annotations

from ..core.policy import HistoryPolicy, SecurityPolicy, content_dependent
from .model import GRANT, split_state


def directory_gated_policy(file_count: int) -> SecurityPolicy:
    """The Example 2 policy: files visible only where directories grant."""

    def gate(*state):
        directories, files = split_state(state, file_count)
        filtered = tuple(value if grant == GRANT else 0
                         for grant, value in zip(directories, files))
        return directories + filtered

    return content_dependent(gate, 2 * file_count,
                             name=f"I-gated[{file_count}]")


def directories_only_policy(file_count: int) -> SecurityPolicy:
    """Allow the directories, deny every file (an allow(...)-style policy)."""

    def gate(*state):
        directories, _ = split_state(state, file_count)
        return directories

    return content_dependent(gate, 2 * file_count,
                             name=f"I-dirs[{file_count}]")


def query_budget_policy(file_count: int, budget: int) -> HistoryPolicy:
    """History-dependent: the gated policy, but only for the first
    ``budget`` queries of a session; afterwards everything is filtered.

    Each query's input is one full file-system state (2k values); the
    state carried across queries is the number of queries made so far.
    """
    gated = directory_gated_policy(file_count)

    def step(queries_so_far, inputs):
        if queries_so_far < budget:
            return gated(*inputs), queries_so_far + 1
        return ("budget-exhausted",), queries_so_far + 1

    return HistoryPolicy(0, step, 2 * file_count,
                         name=f"I-budget[{file_count},{budget}]")
