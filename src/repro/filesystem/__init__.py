"""Example 2's file system: directories + files, gated policies, monitors."""

from .model import (DENY, DIRECTORY_DOMAIN, GRANT, directory_index,
                    file_index, filesystem_domain, read_file_program,
                    search_program, split_state, sum_readable_program)
from .policy import (directories_only_policy, directory_gated_policy,
                     query_budget_policy)
from .mechanism import (content_leaking_monitor, decision_leaking_monitor,
                        plug_puller, reference_monitor)

__all__ = [
    "GRANT", "DENY", "DIRECTORY_DOMAIN", "filesystem_domain", "split_state",
    "directory_index", "file_index", "read_file_program",
    "sum_readable_program", "search_program",
    "directory_gated_policy", "directories_only_policy",
    "query_budget_policy",
    "reference_monitor", "content_leaking_monitor",
    "decision_leaking_monitor", "plug_puller",
]
