"""Reference monitors for the Example 2 file system — sound and leaky.

The sound monitor checks the directory before releasing the file; its
decision depends only on allowed information, so it factors through the
gated policy.  The two leaky monitors reproduce Example 4 (Denning's and
Rotenberg's observation that violation *notices* can leak):

- :func:`content_leaking_monitor` embeds the denied file's value in the
  notice text — flagrant, and caught immediately by the soundness
  checker;
- :func:`decision_leaking_monitor` decides whether to warn based on the
  *denied file's content* (warn only when the secret is "interesting"),
  so the mere presence of a notice is one bit of the secret.
"""

from __future__ import annotations

from ..core.errors import DomainError
from ..core.mechanism import ProtectionMechanism, ViolationNotice
from ..core.program import Program
from .model import GRANT, split_state


def _file_count_of(program: Program) -> int:
    if program.arity % 2 != 0:
        raise DomainError("file-system programs have even arity (dirs + files)")
    return program.arity // 2


def reference_monitor(program: Program, file_index: int) -> ProtectionMechanism:
    """The sound gatekeeper for ``READFILE(i)``.

        "Illegal access attempted, run aborted."  (Example 2)

    Releases the file iff its directory grants; the branch reads only
    directory values, which the gated policy always allows, so the
    mechanism is sound (the test suite checks the factorization).
    """
    file_count = _file_count_of(program)
    if not (1 <= file_index <= file_count):
        raise DomainError(f"file index {file_index} out of range")

    def monitor(*state):
        directories, _ = split_state(state, file_count)
        if directories[file_index - 1] == GRANT:
            return program(*state)
        return ViolationNotice("Illegal access attempted, run aborted.")

    return ProtectionMechanism(monitor, program,
                               name=f"M-monitor(f{file_index})")


def content_leaking_monitor(program: Program,
                            file_index: int) -> ProtectionMechanism:
    """Example 4, variant 1: the notice embeds the denied file's value.

    Unsound: two states equal under the policy (same directories, same
    granted files) but with different denied-file contents receive
    different notices.
    """
    file_count = _file_count_of(program)

    def monitor(*state):
        directories, files = split_state(state, file_count)
        if directories[file_index - 1] == GRANT:
            return program(*state)
        return ViolationNotice(
            f"Illegal access to file {file_index} "
            f"(content {files[file_index - 1]}), run aborted."
        )

    return ProtectionMechanism(monitor, program,
                               name=f"M-leaky-content(f{file_index})")


def decision_leaking_monitor(program: Program, file_index: int,
                             threshold: int = 2) -> ProtectionMechanism:
    """Example 4, variant 2: the *decision to warn* depends on the secret.

    On denial, a notice is produced only when the denied file's content
    is at least ``threshold`` (the "interesting" secrets); boring
    secrets quietly return 0.  The presence of the notice is then one
    bit about the denied file — unsound, and subtler than variant 1
    because every individual output looks innocuous.

    (The quiet ``return 0`` also violates the mechanism *contract*
    whenever the true file value differs from 0, which
    ``check_contract`` reports; both defects are real and distinct.)
    """
    file_count = _file_count_of(program)

    def monitor(*state):
        directories, files = split_state(state, file_count)
        if directories[file_index - 1] == GRANT:
            return program(*state)
        if files[file_index - 1] >= threshold:
            return ViolationNotice("Illegal access attempted, run aborted.")
        return 0

    return ProtectionMechanism(monitor, program,
                               name=f"M-leaky-decision(f{file_index})")


def plug_puller(program: Program) -> ProtectionMechanism:
    """The always-abort monitor — sound for anything, useful for nothing."""

    def monitor(*state):
        return ViolationNotice("System unavailable.")

    return ProtectionMechanism(monitor, program, name="M-plug")
