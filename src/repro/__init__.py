"""repro — Jones & Lipton, "The Enforcement of Security Policies for
Computation" (SOSP 1975 / JCSS 17, 1978), as a runnable Python library.

The package mirrors the paper's structure:

- :mod:`repro.core` — Section 2: programs, security policies, protection
  mechanisms, violation notices, soundness (factorization through the
  policy), the completeness order, Theorem 1's union, Theorem 2's
  maximal mechanism, Theorem 4's non-effectiveness, the observability
  postulate.
- :mod:`repro.flowchart` — Section 3's flowchart language: boxes,
  expressions, step-counted interpreter, structured front-end, CFG
  analysis, the Section 4/5 transforms, and every figure program.
- :mod:`repro.surveillance` — the surveillance protection mechanism
  (dynamic and as the literal flowchart instrumentation), the timed
  variant of Theorem 3′, and the high-water-mark baseline.
- :mod:`repro.staticflow` — Section 5: Denning-style certification and
  the policy-specialising transforming compiler.
- :mod:`repro.minsky` — Example 1: Minsky machines and Fenton's
  data-mark machine, including the halt-semantics critique.
- :mod:`repro.filesystem` — Example 2: directories, files, gated
  policies, sound and notice-leaking reference monitors.
- :mod:`repro.channels` — Section 2's covert channels: timing, the
  one-way tape and tab(i), the logon program and the n·k page-boundary
  password attack, negative inference.
- :mod:`repro.verify` — sweep and reporting harness for the experiment
  suite (see EXPERIMENTS.md).

Quick start::

    from repro import (allow, check_soundness, surveillance_mechanism,
                       ProductDomain)
    from repro.flowchart import library

    flowchart = library.forgetting_program()
    domain = ProductDomain.integer_grid(0, 3, 2)
    policy = allow(2, arity=2)
    mechanism = surveillance_mechanism(flowchart, policy, domain)
    assert check_soundness(mechanism, policy).sound
"""

from .core import (LAMBDA, AllowPolicy, Comparison, Domain,
                   MaximalConstruction, Observation, Order, ProductDomain,
                   Program, ProtectionMechanism, SecurityPolicy,
                   SoundnessReport, SoundnessWitness, ViolationNotice,
                   VALUE_AND_TIME, VALUE_ONLY, allow, allow_all, allow_none,
                   as_complete, check_soundness, compare, is_sound,
                   is_violation, join, leakage_profile, maximal_mechanism,
                   more_complete, null_mechanism, program,
                   program_as_mechanism, union)
from .surveillance import (highwater_mechanism, instrument,
                           instrumented_mechanism, surveil,
                           surveillance_mechanism,
                           timed_surveillance_mechanism)
from .staticflow import certify, compile_with_transforms

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core re-exports
    "Domain", "ProductDomain", "Program", "program",
    "SecurityPolicy", "AllowPolicy", "allow", "allow_all", "allow_none",
    "ProtectionMechanism", "ViolationNotice", "LAMBDA", "is_violation",
    "null_mechanism", "program_as_mechanism", "union", "join",
    "SoundnessReport", "SoundnessWitness", "check_soundness", "is_sound",
    "Comparison", "Order", "compare", "as_complete", "more_complete",
    "MaximalConstruction", "maximal_mechanism",
    "Observation", "VALUE_ONLY", "VALUE_AND_TIME", "leakage_profile",
    # surveillance re-exports
    "surveil", "surveillance_mechanism", "timed_surveillance_mechanism",
    "highwater_mechanism", "instrument", "instrumented_mechanism",
    # staticflow re-exports
    "certify", "compile_with_transforms",
]
