#!/usr/bin/env python
"""Regenerate ``PRECISION.json`` — the flowlint precision-harness report.

Runs the static-vs-dynamic precision harness
(:func:`repro.analysis.precision.precision_harness`) over the full
figure library × every allow policy × an integer grid, prints the
ladder table, and writes the machine-readable report.

Exits nonzero if any (program, policy) pair is *statically certified*
while the exhaustive semantic soundness check rejects it — the harness's
standing soundness obligation, enforced in CI.

Usage:
    PYTHONPATH=src python scripts/precision_report.py \
        [--low N] [--high N] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis import precision_harness  # noqa: E402
from repro.core import ProductDomain  # noqa: E402
from repro.flowchart.library import extended_suite  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--low", type=int, default=0,
                        help="grid lower bound (default 0)")
    parser.add_argument("--high", type=int, default=2,
                        help="grid upper bound (default 2)")
    parser.add_argument("--out", default=str(REPO_ROOT / "PRECISION.json"),
                        help="output path (default: PRECISION.json)")
    args = parser.parse_args(argv)

    started = time.perf_counter()
    report = precision_harness(
        extended_suite(),
        grid=lambda arity: ProductDomain.integer_grid(
            args.low, args.high, arity))
    elapsed = time.perf_counter() - started

    print(report.render())
    print(f"harness wall-clock: {elapsed:.3f}s "
          f"(grid [{args.low}..{args.high}])")

    payload = report.to_dict()
    payload["grid"] = {"low": args.low, "high": args.high}
    payload["harness_seconds"] = elapsed
    Path(args.out).write_text(json.dumps(payload, indent=2, sort_keys=True)
                              + "\n")
    print(f"wrote {args.out}")

    unsound = report.unsound_pairs()
    if unsound:
        print(f"SOUNDNESS VIOLATION: {len(unsound)} statically-certified "
              f"pair(s) the exhaustive check rejects:", file=sys.stderr)
        for pair in unsound:
            print(f"  {pair!r}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
