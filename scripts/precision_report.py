#!/usr/bin/env python
"""Regenerate ``PRECISION.json`` — the flowlint precision-harness report.

Runs the static-vs-dynamic precision harness
(:func:`repro.analysis.precision.precision_harness`) over the full
figure library × every allow policy × an integer grid, prints the
ladder table, and writes the machine-readable report.

Exits nonzero if any (program, policy) pair is *statically certified*
while its family's semantic soundness reference rejects it — the
harness's standing soundness obligation, enforced in CI.  With
``--baseline PRIOR.json`` it additionally fails when any per-family
accepted-pair count shrinks relative to the prior report (a precision
regression gate).

Usage:
    PYTHONPATH=src python scripts/precision_report.py \
        [--low N] [--high N] [--out PATH] [--baseline PATH]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis import precision_harness  # noqa: E402
from repro.core import ProductDomain  # noqa: E402
from repro.flowchart.library import (dynamic_policy_suite,  # noqa: E402
                                     extended_suite)


def compare_with_baseline(current: dict, baseline: dict) -> list:
    """Regression gate: problems vs a prior PRECISION.json, or []."""
    problems = []
    current_totals = current["totals"]
    baseline_totals = baseline["totals"]
    if current_totals["unsound_static_accepts"]:
        problems.append(
            f"{current_totals['unsound_static_accepts']} unsound static "
            f"accept(s) (baseline has "
            f"{baseline_totals['unsound_static_accepts']})")
    current_families = current_totals.get("families", {})
    for family, row in baseline_totals.get("families", {}).items():
        now = current_families.get(family)
        if now is None:
            problems.append(f"family {family!r} disappeared from the report")
            continue
        for key in ("pairs", "static_certified", "dynamic_accepts"):
            if now[key] < row[key]:
                problems.append(
                    f"family {family!r}: {key} shrank "
                    f"{row[key]} -> {now[key]}")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--low", type=int, default=0,
                        help="grid lower bound (default 0)")
    parser.add_argument("--high", type=int, default=2,
                        help="grid upper bound (default 2)")
    parser.add_argument("--out", default=str(REPO_ROOT / "PRECISION.json"),
                        help="output path (default: PRECISION.json)")
    parser.add_argument("--baseline", default=None,
                        help="prior PRECISION.json to gate against "
                             "(fail on unsound accepts or shrinking "
                             "per-family accepted counts)")
    args = parser.parse_args(argv)

    started = time.perf_counter()
    report = precision_harness(
        list(extended_suite()) + list(dynamic_policy_suite()),
        grid=lambda arity: ProductDomain.integer_grid(
            args.low, args.high, arity))
    elapsed = time.perf_counter() - started

    print(report.render())
    print(f"harness wall-clock: {elapsed:.3f}s "
          f"(grid [{args.low}..{args.high}])")

    payload = report.to_dict()
    payload["grid"] = {"low": args.low, "high": args.high}
    payload["harness_seconds"] = elapsed
    Path(args.out).write_text(json.dumps(payload, indent=2, sort_keys=True)
                              + "\n")
    print(f"wrote {args.out}")

    unsound = report.unsound_pairs()
    if unsound:
        print(f"SOUNDNESS VIOLATION: {len(unsound)} statically-certified "
              f"pair(s) the semantic reference rejects:", file=sys.stderr)
        for pair in unsound:
            print(f"  {pair!r}", file=sys.stderr)
        return 1

    if args.baseline:
        baseline = json.loads(Path(args.baseline).read_text())
        problems = compare_with_baseline(payload, baseline)
        if problems:
            print("PRECISION REGRESSION vs baseline:", file=sys.stderr)
            for problem in problems:
                print(f"  {problem}", file=sys.stderr)
            return 1
        print(f"baseline gate passed ({args.baseline})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
