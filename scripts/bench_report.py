#!/usr/bin/env python
"""Regenerate ``BENCH_PR10.json`` — the PR's machine-readable benchmark.

Eleven sections:

``micro_sweep_kernel``
    The sweep's inner kernel (full-domain flowchart evaluation, same
    pair as ``benchmarks/bench_micro_checker.py::test_micro_sweep_kernel``)
    timed under the interpreted and compiled backends.  The PR claims
    ≥ 3× here.

``soundness_sweep``
    Wall-clock of the Theorem 3/3′ sweep: the seed's double-pass
    interpreted version (reconstructed inline), the current single-pass
    sweep under each backend, and the parallel runner in auto mode.

``flowlint``
    Wall-clock of the static analyzer: a full default-pass lint of
    every (library program, allow policy) pair, and one run of the
    static-vs-dynamic precision harness.

``per_program``
    Interpreted-vs-compiled full-grid timing for every flowchart in the
    figure library.

``telemetry``
    The cost of the observability layer (``repro.obs``) on the micro
    kernel: the guarded no-op hooks with observability *off* (the
    default, compared against the ``BENCH_PR1.json`` pre-instrumentation
    baseline and the *previous PR's* identical measurement in
    ``BENCH_PR5.json`` — both claimed < 3%), and the measured overhead
    with metrics and tracing *on*.

``guards``
    The cost of the resource-guard machinery: the micro kernel with no
    cap set (the dual-arm compiled prologue whose disabled cost is
    claimed < 3% of the ``BENCH_PR4.json`` hooks-off kernel), with a
    generous never-tripping cap (the per-assignment check armed), and
    the quarantine-wrapped serial sweep with and without a cap.

``batch``
    The Gen-2 batch tier: the micro kernel evaluated through
    ``execute_batch`` (NumPy lanes and pure-python lanes) against the
    per-point compiled loop, and the PR5 ``guards.sweep_uncapped``
    sweep re-run under ``backend="batch"``.  The PR claims ≥ 5× sweep
    throughput over the ``BENCH_PR5.json`` ``sweep_uncapped`` best on
    the NumPy path, and that pure-python batch lanes are no slower
    than the compiled per-point tier.

``provenance``
    The cost of the PR's audit features on a serial soundness sweep:
    spans+tracing on, spans+tracing+violation explanations on, the
    per-call cost of ``explain()`` itself, and the analytics side
    (``summarize`` / ``build_span_tree``) over the captured trace.

``serving``
    The PR8 serving tier: ``repro serve`` /execute latency (p50/p99
    over a keep-alive connection, response cache disabled) and the
    sustained request rate from a concurrent client fleet.  The PR
    claims ≥ 200 req/s.

``audit``
    The PR9 audit ledger: /execute latency with the hash-chained
    ledger off vs on (same harness as ``serving``), and a thread-pool
    sweep wall time with and without ``audit=``.  The PR claims the
    audit-on serve p50 overhead stays under 3%.

``distributed``
    The PR10 multi-node runtime: a three-hop relay program run
    serially, partitioned across 2 and 3 OS processes over clean
    links, and under a seeded drop+dup+delay+kill schedule.  The PR
    claims every arm reproduces the serial row bit-for-bit
    (``rows_match_serial``).

The compiled backend's result memo is cleared before every timed rep,
so caching never masquerades as execution speed.  ``--smoke`` shrinks
repetition counts and the program set for CI.

Usage:
    PYTHONPATH=src python scripts/bench_report.py [--smoke] [--out PATH]
"""

from __future__ import annotations

import argparse
import contextlib
import os
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT))

from benchmarks._common import time_callable, write_json  # noqa: E402
from repro.core import ProductDomain, check_soundness, is_violation  # noqa: E402
from repro.flowchart import batchpath, fastpath, library  # noqa: E402
from repro.flowchart.fastpath import run_flowchart  # noqa: E402
from repro.flowchart.interpreter import execute  # noqa: E402
from repro.verify import (FACTORIES, parallel_soundness_sweep,  # noqa: E402
                          soundness_sweep)
from repro.verify.enumerate import all_allow_policies, default_grid  # noqa: E402


@contextlib.contextmanager
def forced_backend(backend: str):
    """Pin the default backend for code that doesn't take a backend arg.

    The env default is cached at first use, so the cache is reset on
    the way in *and* out — otherwise the pinned value (or the stale
    pre-pin value) would stick for the rest of the bench run.
    """
    saved = os.environ.get(fastpath.BACKEND_ENV)
    os.environ[fastpath.BACKEND_ENV] = backend
    fastpath.reset_backend_cache()
    try:
        yield
    finally:
        if saved is None:
            os.environ.pop(fastpath.BACKEND_ENV, None)
        else:
            os.environ[fastpath.BACKEND_ENV] = saved
        fastpath.reset_backend_cache()


@contextlib.contextmanager
def forced_lanes(engine: str):
    """Pin the batch tier's lane engine (numpy or python)."""
    saved = os.environ.get(batchpath.LANES_ENV)
    os.environ[batchpath.LANES_ENV] = engine
    batchpath.reset_lane_engine_cache()
    try:
        yield
    finally:
        if saved is None:
            os.environ.pop(batchpath.LANES_ENV, None)
        else:
            os.environ[batchpath.LANES_ENV] = saved
        batchpath.reset_lane_engine_cache()


def fresh_caches() -> None:
    # Clear the *result* memos (per-point and per-chunk) so caching
    # never masquerades as execution speed; compiled artifacts (code
    # objects, batch machines) persist, exactly as they would across
    # the pairs of one real sweep.
    fastpath.clear_result_memo()
    batchpath.clear_rows_memo()


# ---------------------------------------------------------------------------
# Section 1: the sweep's inner kernel, one backend against the other
# ---------------------------------------------------------------------------

def bench_micro_kernel(repeats: int) -> dict:
    grid = ProductDomain.integer_grid(1, 24, 2)
    flowchart = library.gcd_program()

    def kernel(backend):
        def run():
            total = 0
            for point in grid:
                total += run_flowchart(flowchart, point,
                                       backend=backend).steps
            return total
        return run

    expected = sum(execute(flowchart, point).steps for point in grid)
    for backend in ("interpreted", "compiled"):
        fresh_caches()
        assert kernel(backend)() == expected, backend

    interpreted = time_callable(kernel("interpreted"), repeats=repeats,
                                setup=fresh_caches)
    compiled = time_callable(kernel("compiled"), repeats=repeats,
                             setup=fresh_caches)
    return {
        "flowchart": flowchart.name,
        "points": len(grid),
        "interpreted_s": interpreted,
        "compiled_s": compiled,
        "speedup": round(interpreted["best"] / compiled["best"], 2),
    }


# ---------------------------------------------------------------------------
# Section 2: the soundness sweep, seed baseline vs the PR's variants
# ---------------------------------------------------------------------------

def seed_style_sweep(flowcharts, factory, grid=None):
    """The pre-PR sweep, verbatim shape: factorization check, then a
    second full pass over the domain for the acceptance count."""
    grid = grid or default_grid
    results = []
    for flowchart in flowcharts:
        domain = grid(flowchart.arity)
        for policy in all_allow_policies(flowchart.arity):
            mechanism = factory(flowchart, policy, domain)
            report = check_soundness(mechanism, policy, domain)
            accepts = sum(1 for point in domain
                          if not is_violation(mechanism(*point)))
            results.append((report.sound, accepts))
    return results


def wide_grid(arity: int):
    """A larger grid than the test default, so per-point execution cost
    (what the compiled backend attacks) dominates mechanism setup."""
    return ProductDomain.integer_grid(0, 9 if arity <= 2 else 4, arity)


def bench_soundness_sweep(repeats: int, smoke: bool) -> dict:
    programs = [library.forgetting_program(), library.parity_program()]
    if not smoke:
        programs += [library.max_program(), library.reconvergence_program(),
                     library.gcd_program()]
    # "program" exercises the flowchart-evaluation kernel the compiled
    # backend accelerates; "surveillance" runs the interpreter-level
    # shadow execution, so its win comes from the single-pass fix only.
    factory_names = ["program"] if smoke else ["program", "surveillance"]

    sections = {}
    for factory_name in factory_names:
        factory = FACTORIES[factory_name]

        def timed(variant, factory=factory, factory_name=factory_name):
            def run():
                if variant == "seed_double_pass_interpreted":
                    with forced_backend("interpreted"):
                        return seed_style_sweep(programs, factory,
                                                grid=wide_grid)
                if variant == "single_pass_interpreted":
                    with forced_backend("interpreted"):
                        return soundness_sweep(programs, factory,
                                               grid=wide_grid)
                if variant == "single_pass_compiled":
                    with forced_backend("compiled"):
                        return soundness_sweep(programs, factory,
                                               grid=wide_grid)
                with forced_backend("compiled"):
                    return parallel_soundness_sweep(
                        programs, factory_name, grid=wide_grid,
                        executor="auto")
            return time_callable(run, repeats=repeats, setup=fresh_caches)

        timings = {variant: timed(variant)
                   for variant in ("seed_double_pass_interpreted",
                                   "single_pass_interpreted",
                                   "single_pass_compiled",
                                   "parallel_auto_compiled")}
        seed_best = timings["seed_double_pass_interpreted"]["best"]
        sections[factory_name] = {
            "timings_s": timings,
            "speedup_vs_seed": {
                variant: round(seed_best / timing["best"], 2)
                for variant, timing in timings.items()},
        }

    return {
        "programs": [program.name for program in programs],
        "pairs": sum(2 ** program.arity for program in programs),
        "grid": "integer_grid(0, 9) per input (arity<=2)",
        "factories": sections,
        "notes": (
            "The seed's check_soundness stops at the first witness; the "
            "single-pass walk cannot (the acceptance count needs every "
            "point), so single_pass_interpreted may trail the seed on "
            "mostly-unsound pairs. The compiled backend recovers that "
            "and more. The surveillance factory executes the "
            "instrumented flowchart (Section 3's literal construction), "
            "so both its mechanism and the protected program ride the "
            "selected backend."),
    }


# ---------------------------------------------------------------------------
# Section 3: flowlint — static analysis wall-clock over the library
# ---------------------------------------------------------------------------

def bench_flowlint(repeats: int, smoke: bool,
                   interp_ref: "float | None" = None) -> dict:
    import json

    from repro.analysis import PassManager, precision_harness
    from repro.verify.enumerate import all_allow_policies as _policies

    suite = library.extended_suite()
    dynamic_suite = library.dynamic_policy_suite()
    if smoke:
        suite = suite[:4]
        dynamic_suite = dynamic_suite[:4]
    manager = PassManager.with_default_passes()

    def lint_suite(flowcharts):
        def run():
            errors = 0
            for flowchart in flowcharts:
                for policy in _policies(flowchart.arity):
                    errors += len(manager.run(flowchart, policy).errors)
            return errors
        return run

    # The classic-suite measurement is kept identical to the PR6 one
    # on purpose: same programs, same policies, default passes — so
    # the cross-file overhead claim below compares like with like.
    # The new DYN/INT passes gate on has_dynamic_policy()/downgrade_ids
    # and must stay near-free on classic flowcharts.
    lint = time_callable(lint_suite(suite), repeats=repeats)
    dynamic_lint = time_callable(lint_suite(dynamic_suite),
                                 repeats=repeats)
    harness = time_callable(lambda: precision_harness(suite),
                            repeats=max(1, repeats - 1))
    harness_full = time_callable(
        lambda: precision_harness(list(suite) + list(dynamic_suite)),
        repeats=max(1, repeats - 1))

    pairs = sum(2 ** flowchart.arity for flowchart in suite)
    dynamic_pairs = sum(2 ** flowchart.arity
                        for flowchart in dynamic_suite)
    section = {
        "programs": len(suite),
        "pairs": pairs,
        "lint_all_policies_s": lint,
        "lint_ms_per_pair": round(lint["best"] * 1000 / pairs, 3),
        "precision_harness_s": harness,
        "dynamic_programs": len(dynamic_suite),
        "dynamic_pairs": dynamic_pairs,
        "dynamic_lint_s": dynamic_lint,
        "dynamic_lint_ms_per_pair": round(
            dynamic_lint["best"] * 1000 / dynamic_pairs, 3),
        "precision_harness_full_s": harness_full,
    }

    # The overhead claim: registering the epoch + unwinding passes must
    # cost the *pre-existing* pair set less than 10% of lint wall-time
    # (drift-adjusted against the same-file micro-kernel reference, as
    # for the telemetry claims).
    baseline_path = REPO_ROOT / "BENCH_PR6.json"
    if baseline_path.exists() and not smoke:
        with open(baseline_path) as handle:
            pr6 = json.load(handle)
        baseline_best = pr6["flowlint"]["lint_all_policies_s"]["best"]
        overhead_pct = round((lint["best"] / baseline_best - 1.0) * 100, 2)
        scale = machine_drift_scale(pr6, interp_ref)
        adjusted_pct = drift_adjusted_overhead(
            lint["best"], baseline_best, scale)
        section["pr6_lint_best_s"] = baseline_best
        section["lint_overhead_vs_pr6_pct"] = overhead_pct
        if adjusted_pct is not None:
            section["machine_drift_scale_vs_pr6"] = round(scale, 4)
            section["lint_overhead_vs_pr6_adjusted_pct"] = adjusted_pct
        section["lint_overhead_under_10pct_vs_pr6"] = (
            adjusted_pct if adjusted_pct is not None else overhead_pct
        ) < 10.0
    return section


# ---------------------------------------------------------------------------
# Section 4: per-program backend comparison over the default grid
# ---------------------------------------------------------------------------

def bench_per_program(repeats: int, smoke: bool) -> dict:
    suite = library.extended_suite()
    if smoke:
        suite = suite[:4]
    report = {}
    for flowchart in suite:
        grid = default_grid(flowchart.arity)

        def sweep(backend, flowchart=flowchart, grid=grid):
            def run():
                for point in grid:
                    run_flowchart(flowchart, point, backend=backend)
            return run

        interpreted = time_callable(sweep("interpreted"), repeats=repeats,
                                    setup=fresh_caches)
        compiled = time_callable(sweep("compiled"), repeats=repeats,
                                 setup=fresh_caches)
        report[flowchart.name] = {
            "points": len(grid),
            "interpreted_best_s": interpreted["best"],
            "compiled_best_s": compiled["best"],
            "speedup": round(interpreted["best"] /
                             max(compiled["best"], 1e-9), 2),
        }
    return report


# ---------------------------------------------------------------------------
# Section 5: observability overhead on the micro kernel
# ---------------------------------------------------------------------------

def machine_drift_scale(baseline_doc: dict,
                        interp_ref: "float | None") -> "float | None":
    """Machine-speed ratio between this run and a recorded baseline.

    Cross-file overhead claims compare a best-of-N from this process
    against a number recorded weeks earlier in a different one.  The
    hardware drifts: this VM's *untouched* pure-interpreter micro
    kernel — code no PR has modified since the seed — moved 25%
    between the PR5 recording and the PR6 one, which would read as a
    25% "regression" in any absolute cross-file comparison.  Every
    BENCH file records that same kernel, so interp_now/interp_then is
    a machine reference measured by the very runs being compared.
    Returns None when either side lacks the reference.
    """
    base_ref = (baseline_doc.get("micro_sweep_kernel", {})
                .get("interpreted_s", {}).get("best"))
    if not interp_ref or not base_ref:
        return None
    return interp_ref / base_ref


def drift_adjusted_overhead(now_best: float, base_best: float,
                            scale: "float | None") -> "float | None":
    """Overhead of now_best vs base_best at this run's machine speed."""
    if scale is None:
        return None
    return round((now_best / (base_best * scale) - 1.0) * 100, 2)


def bench_telemetry(repeats: int, interp_ref: "float | None" = None) -> dict:
    import json

    from repro import obs

    grid = ProductDomain.integer_grid(1, 24, 2)
    flowchart = library.gcd_program()

    def kernel():
        total = 0
        for point in grid:
            total += run_flowchart(flowchart, point,
                                   backend="compiled").steps
        return total

    obs.disable()
    hooks_off = time_callable(kernel, repeats=repeats, setup=fresh_caches)

    obs.enable(metrics=True, reset=True)
    try:
        metrics_on = time_callable(kernel, repeats=repeats,
                                   setup=fresh_caches)
    finally:
        obs.disable()

    ring = obs.RingBufferSink(capacity=4096)
    obs.enable(metrics=True, sinks=[ring], reset=True)
    try:
        traced = time_callable(kernel, repeats=repeats, setup=fresh_caches)
    finally:
        obs.disable()

    section = {
        "flowchart": flowchart.name,
        "points": len(grid),
        "hooks_off_s": hooks_off,
        "metrics_on_s": metrics_on,
        "traced_s": traced,
        "metrics_overhead_pct": round(
            (metrics_on["best"] / hooks_off["best"] - 1.0) * 100, 2),
        "traced_overhead_pct": round(
            (traced["best"] / hooks_off["best"] - 1.0) * 100, 2),
    }

    # The headline claim: the *disabled* hooks (one module-global truth
    # test per run) must stay within 3% of the pre-instrumentation
    # kernel recorded in BENCH_PR1.json on this machine.  "This
    # machine" does the heavy lifting: the raw percentage is recorded
    # for the trail, but the claim gates on the drift-adjusted number
    # (see machine_drift_scale) so a globally slower or faster VM day
    # doesn't masquerade as a hook cost.
    baseline_path = REPO_ROOT / "BENCH_PR1.json"
    if baseline_path.exists():
        with open(baseline_path) as handle:
            pr1 = json.load(handle)
        baseline_best = pr1["micro_sweep_kernel"]["compiled_s"]["best"]
        overhead_pct = round(
            (hooks_off["best"] / baseline_best - 1.0) * 100, 2)
        scale = machine_drift_scale(pr1, interp_ref)
        adjusted_pct = drift_adjusted_overhead(
            hooks_off["best"], baseline_best, scale)
        section["pr1_compiled_best_s"] = baseline_best
        section["noop_overhead_vs_pr1_pct"] = overhead_pct
        if adjusted_pct is not None:
            section["machine_drift_scale_vs_pr1"] = round(scale, 4)
            section["noop_overhead_vs_pr1_adjusted_pct"] = adjusted_pct
        section["noop_overhead_under_3pct"] = (
            adjusted_pct if adjusted_pct is not None else overhead_pct
        ) < 3.0

    # The incremental claim: this PR's disabled-hook cost must stay
    # within 3% of the *previous* PR's identical measurement
    # (BENCH_PR5.json telemetry.hooks_off_s — same kernel, same
    # machine).  Earlier revisions compared against BENCH_PR3.json,
    # which was two PRs stale by PR5 and silently recorded ``false``
    # for drift PR5 itself had already measured and accepted; the
    # baseline now always tracks the immediately preceding PR.
    pr5_path = REPO_ROOT / "BENCH_PR5.json"
    if pr5_path.exists():
        with open(pr5_path) as handle:
            pr5 = json.load(handle)
        pr5_best = (pr5.get("telemetry", {})
                    .get("hooks_off_s", {}).get("best"))
        if pr5_best is None:
            pr5_best = pr5["micro_sweep_kernel"]["compiled_s"]["best"]
        pr5_overhead_pct = round(
            (hooks_off["best"] / pr5_best - 1.0) * 100, 2)
        scale = machine_drift_scale(pr5, interp_ref)
        pr5_adjusted_pct = drift_adjusted_overhead(
            hooks_off["best"], pr5_best, scale)
        section["pr5_hooks_off_best_s"] = pr5_best
        section["noop_overhead_vs_pr5_pct"] = pr5_overhead_pct
        if pr5_adjusted_pct is not None:
            section["machine_drift_scale_vs_pr5"] = round(scale, 4)
            section["noop_overhead_vs_pr5_adjusted_pct"] = pr5_adjusted_pct
        section["noop_overhead_under_3pct_vs_pr5"] = (
            pr5_adjusted_pct if pr5_adjusted_pct is not None
            else pr5_overhead_pct) < 3.0
    return section


# ---------------------------------------------------------------------------
# Section 6: resource-guard overhead (value caps + quarantine wrapping)
# ---------------------------------------------------------------------------

def bench_guards(repeats: int, interp_ref: "float | None" = None) -> dict:
    import json

    from repro import obs

    obs.disable()
    grid = ProductDomain.integer_grid(1, 24, 2)
    flowchart = library.gcd_program()

    def kernel(value_cap):
        def run():
            total = 0
            for point in grid:
                total += run_flowchart(flowchart, point,
                                       backend="compiled",
                                       value_cap=value_cap).steps
            return total
        return run

    # gcd on [1..24]^2 never widens past 5 bits, so a 64-bit cap arms
    # the per-assignment check without ever tripping it: the measured
    # difference is pure guard cost.
    assert kernel(None)() == kernel(64)()

    uncapped = time_callable(kernel(None), repeats=repeats,
                             setup=fresh_caches)
    capped = time_callable(kernel(64), repeats=repeats,
                           setup=fresh_caches)

    def sweep(value_cap):
        def run():
            with forced_backend("compiled"):
                return parallel_soundness_sweep(
                    [library.forgetting_program(),
                     library.parity_program()],
                    "program", grid=wide_grid, executor="serial",
                    value_cap=value_cap)
        return run

    sweep_uncapped = time_callable(sweep(None), repeats=repeats,
                                   setup=fresh_caches)
    sweep_capped = time_callable(sweep(64), repeats=repeats,
                                 setup=fresh_caches)

    section = {
        "flowchart": flowchart.name,
        "points": len(grid),
        "uncapped_s": uncapped,
        "capped_noop_s": capped,
        "armed_cap_overhead_pct": round(
            (capped["best"] / uncapped["best"] - 1.0) * 100, 2),
        "sweep_uncapped_s": sweep_uncapped,
        "sweep_capped_s": sweep_capped,
        "sweep_armed_cap_overhead_pct": round(
            (sweep_capped["best"] / sweep_uncapped["best"] - 1.0) * 100,
            2),
    }

    # The headline claim: with no cap set (the default), the dual-arm
    # prologue and quarantine wrapping must cost nothing measurable
    # over the plain hooks-off kernel.  As of PR6 the claim's baseline
    # is BENCH_PR5 — the immediately preceding PR — mirroring the
    # rebaseline the telemetry section adopted at PR5 and for the same
    # reason: a fixed early baseline compounds machine drift with
    # every PR.  The PR4 comparison (the claim's original baseline)
    # stays recorded below for the trail; note PR4's machine reference
    # is an outlier (its interpreted/compiled ratio is 7.38 against
    # 6.6–6.8 in every other BENCH file), so its drift-adjusted figure
    # carries several points of phase noise that the PR5 reference
    # does not.
    pr4_path = REPO_ROOT / "BENCH_PR4.json"
    if pr4_path.exists():
        with open(pr4_path) as handle:
            pr4 = json.load(handle)
        pr4_best = (pr4.get("telemetry", {})
                    .get("hooks_off_s", {}).get("best"))
        if pr4_best is None:
            pr4_best = pr4["micro_sweep_kernel"]["compiled_s"]["best"]
        overhead_pct = round(
            (uncapped["best"] / pr4_best - 1.0) * 100, 2)
        scale = machine_drift_scale(pr4, interp_ref)
        adjusted_pct = drift_adjusted_overhead(
            uncapped["best"], pr4_best, scale)
        section["pr4_hooks_off_best_s"] = pr4_best
        section["noop_overhead_vs_pr4_pct"] = overhead_pct
        if adjusted_pct is not None:
            section["machine_drift_scale_vs_pr4"] = round(scale, 4)
            section["noop_overhead_vs_pr4_adjusted_pct"] = adjusted_pct
    pr5_path = REPO_ROOT / "BENCH_PR5.json"
    if pr5_path.exists():
        with open(pr5_path) as handle:
            pr5 = json.load(handle)
        pr5_best = (pr5.get("telemetry", {})
                    .get("hooks_off_s", {}).get("best"))
        if pr5_best is None:
            pr5_best = pr5["micro_sweep_kernel"]["compiled_s"]["best"]
        overhead_pct = round(
            (uncapped["best"] / pr5_best - 1.0) * 100, 2)
        scale = machine_drift_scale(pr5, interp_ref)
        adjusted_pct = drift_adjusted_overhead(
            uncapped["best"], pr5_best, scale)
        section["pr5_hooks_off_best_s"] = pr5_best
        section["noop_overhead_vs_pr5_pct"] = overhead_pct
        if adjusted_pct is not None:
            section["machine_drift_scale_vs_pr5"] = round(scale, 4)
            section["noop_overhead_vs_pr5_adjusted_pct"] = adjusted_pct
        section["noop_overhead_under_3pct_vs_pr5"] = (
            adjusted_pct if adjusted_pct is not None else overhead_pct
        ) < 3.0
    return section


# ---------------------------------------------------------------------------
# Section 7: the Gen-2 batch tier vs the per-point compiled loop
# ---------------------------------------------------------------------------

def bench_batch(repeats: int) -> dict:
    import json

    from repro import obs
    from repro.flowchart.batchpath import execute_batch

    obs.disable()
    grid = ProductDomain.integer_grid(1, 24, 2)
    points = list(grid)
    flowchart = library.gcd_program()

    def compiled_kernel():
        total = 0
        for point in grid:
            total += run_flowchart(flowchart, point,
                                   backend="compiled").steps
        return total

    def batch_kernel(engine):
        def run():
            rows = execute_batch(flowchart, points, engine=engine)
            return sum(rows.steps(i) for i in range(len(points)))
        return run

    expected = compiled_kernel()
    engines = [engine for engine in ("numpy", "python")
               if engine != "numpy"
               or batchpath.resolve_lane_engine("auto") == "numpy"]
    for engine in engines:
        fresh_caches()
        assert batch_kernel(engine)() == expected, engine

    compiled = time_callable(compiled_kernel, repeats=repeats,
                             setup=fresh_caches)
    kernel_timings = {
        engine: time_callable(batch_kernel(engine), repeats=repeats,
                              setup=fresh_caches)
        for engine in engines}

    # Built once: both compile caches key on flowchart identity, and
    # fresh_caches deliberately keeps compiled artifacts warm across
    # reps — constructing programs inside the timed callable would
    # charge every rep a full recompile no real sweep pays twice.
    sweep_programs = [library.forgetting_program(),
                      library.parity_program()]

    def sweep(backend, engine=None):
        def run():
            manager = (forced_lanes(engine) if engine
                       else contextlib.nullcontext())
            with manager:
                return parallel_soundness_sweep(
                    sweep_programs,
                    "program", grid=wide_grid, executor="serial",
                    backend=backend)
        return run

    # The batch sweep's verdicts must be row-identical to the per-point
    # sweep's before any of its timings count.
    def rows_of(results):
        return [(r.program_name, r.policy_name, r.sound, r.accepts)
                for r in results]

    fresh_caches()
    compiled_rows = rows_of(sweep("compiled")())
    for engine in engines:
        fresh_caches()
        assert rows_of(sweep("batch", engine)()) == compiled_rows, engine

    sweep_compiled = time_callable(sweep("compiled"), repeats=repeats,
                                   setup=fresh_caches)
    sweep_timings = {
        engine: time_callable(sweep("batch", engine), repeats=repeats,
                              setup=fresh_caches)
        for engine in engines}

    section = {
        "flowchart": flowchart.name,
        "points": len(grid),
        "lane_engines": engines,
        "kernel_compiled_s": compiled,
        "kernel_batch_s": kernel_timings,
        "kernel_speedup": {
            engine: round(compiled["best"] / timing["best"], 2)
            for engine, timing in kernel_timings.items()},
        "sweep_compiled_s": sweep_compiled,
        "sweep_batch_s": sweep_timings,
        "sweep_speedup_vs_compiled": {
            engine: round(sweep_compiled["best"] / timing["best"], 2)
            for engine, timing in sweep_timings.items()},
        "notes": (
            "kernel_* is the 576-point gcd grid: one execute_batch call "
            "against the per-point compiled loop. sweep_* is the PR5 "
            "guards.sweep_uncapped shape (forgetting + parity x all "
            "allow policies, serial executor) under --backend batch, "
            "with programs constructed once so compiled artifacts stay "
            "warm across reps (the fresh_caches contract). "
            "Lane engines are pinned via REPRO_BATCH_LANES; the numpy "
            "entry is omitted when numpy is not importable."),
    }

    # The headline claim: the batch sweep (NumPy lanes) beats the
    # BENCH_PR5.json guards.sweep_uncapped best — the same sweep under
    # the per-point compiled tier, recorded by the previous PR on this
    # machine — by at least 5x.
    pr5_path = REPO_ROOT / "BENCH_PR5.json"
    if pr5_path.exists() and "numpy" in sweep_timings:
        with open(pr5_path) as handle:
            pr5 = json.load(handle)
        pr5_best = (pr5.get("guards", {})
                    .get("sweep_uncapped_s", {}).get("best"))
        if pr5_best is not None:
            speedup = round(pr5_best / sweep_timings["numpy"]["best"], 2)
            section["pr5_sweep_uncapped_best_s"] = pr5_best
            section["sweep_speedup_vs_pr5"] = speedup
            section["sweep_speedup_at_least_5x_vs_pr5"] = speedup >= 5.0
    if "python" in sweep_timings:
        section["python_lanes_no_slower_than_compiled"] = (
            sweep_timings["python"]["best"] <= sweep_compiled["best"])
    return section


# ---------------------------------------------------------------------------
# Section 8: provenance and trace-analytics overhead
# ---------------------------------------------------------------------------

def bench_provenance(repeats: int) -> dict:
    from repro import obs
    from repro.core.policy import AllowPolicy

    programs = [library.forgetting_program(), library.parity_program()]
    factory = FACTORIES["surveillance"]

    def sweep():
        with forced_backend("interpreted"):
            return soundness_sweep(programs, factory)

    obs.disable()
    plain = time_callable(sweep, repeats=repeats, setup=fresh_caches)

    obs.enable(metrics=True, sinks=[obs.RingBufferSink(capacity=65536)],
               reset=True)
    try:
        traced = time_callable(sweep, repeats=repeats, setup=fresh_caches)
    finally:
        obs.disable()

    obs.enable(metrics=True, sinks=[obs.RingBufferSink(capacity=65536)],
               reset=True, explain=True)
    try:
        explained = time_callable(sweep, repeats=repeats, setup=fresh_caches)
    finally:
        obs.disable()

    # One clean traced+explained sweep for the analytics numbers (the
    # timing rings above hold events from every rep).
    capture = obs.RingBufferSink(capacity=65536)
    obs.enable(metrics=True, sinks=[capture], reset=True, explain=True)
    try:
        sweep()
    finally:
        obs.disable()
    events = capture.events()
    explanations = len(capture.events("explanation"))

    # Per-call cost of a single violation explanation: the replayed
    # surveillance run plus the backward dependence slice.
    flowchart = library.gcd_program()
    policy = AllowPolicy([1], 2)
    explain_call = time_callable(
        lambda: obs.explain(flowchart, policy, (6, 4)), repeats=repeats)

    summarize_timing = time_callable(lambda: obs.summarize(events),
                                     repeats=repeats)
    tree_timing = time_callable(lambda: obs.build_span_tree(events),
                                repeats=repeats)
    forest = obs.build_span_tree(events)

    return {
        "programs": [program.name for program in programs],
        "pairs": sum(2 ** program.arity for program in programs),
        "sweep_plain_s": plain,
        "sweep_traced_s": traced,
        "sweep_explain_s": explained,
        "traced_overhead_pct": round(
            (traced["best"] / plain["best"] - 1.0) * 100, 2),
        "explain_overhead_pct": round(
            (explained["best"] / plain["best"] - 1.0) * 100, 2),
        "trace_events_per_sweep": len(events),
        "span_roots": len(forest.roots),
        "span_problems": len(forest.problems),
        "explanations_per_sweep": explanations,
        "explain_call_s": explain_call,
        "summarize_s": summarize_timing,
        "span_tree_s": tree_timing,
        "notes": (
            "Tracing and explanations are opt-in; the sweep numbers "
            "here quantify what a user pays for --trace and --explain. "
            "explain_call_s is one replayed surveillance run plus the "
            "backward label slice on gcd under allow(1)."),
    }


# ---------------------------------------------------------------------------
# Section 9: the serving tier — request latency and sustained throughput
# ---------------------------------------------------------------------------

def _serve_percentile(samples, fraction: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def bench_serving(smoke: bool) -> dict:
    """`repro serve` under load: /execute latency and sustained RPS.

    The server runs in-process (`serve_in_thread`) with the response
    cache *disabled* so every request is a real execution through the
    batch-coalescing path — cache hits would make the RPS claim
    vacuous.  Latency is measured on one keep-alive connection; the
    throughput phase aims a small fleet of keep-alive clients at the
    server so the 2ms coalescing window actually earns its keep.
    """
    import http.client
    import json as _json
    import threading

    from repro.serve import ServerConfig, serve_in_thread

    latency_n = 100 if smoke else 300
    clients = 8
    per_client = 50 if smoke else 150

    handle = serve_in_thread(ServerConfig(port=0, cache_size=0))
    try:
        def one_request(conn, i: int) -> None:
            conn.request("POST", "/execute", body=_json.dumps(
                {"library": "max", "inputs": [i % 50, (i * 7 + 3) % 50]}),
                headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            payload = _json.loads(response.read())
            if response.status != 200 or payload["value"] is None:
                raise RuntimeError(f"request {i} failed: {payload}")

        # Phase 1: sequential latency on one keep-alive connection.
        conn = http.client.HTTPConnection("127.0.0.1", handle.port,
                                          timeout=60)
        for i in range(20):  # warmup: compile caches, thread pool spinup
            one_request(conn, i)
        samples = []
        for i in range(latency_n):
            started = time.perf_counter()
            one_request(conn, i)
            samples.append(time.perf_counter() - started)
        conn.close()

        # Phase 2: sustained throughput from a concurrent client fleet.
        errors: list = []

        def client_body(seed: int) -> None:
            conn = http.client.HTTPConnection("127.0.0.1", handle.port,
                                              timeout=60)
            try:
                for i in range(per_client):
                    one_request(conn, seed * per_client + i)
            except Exception as error:  # recorded, fails the claim
                errors.append(repr(error))
            finally:
                conn.close()

        threads = [threading.Thread(target=client_body, args=(seed,))
                   for seed in range(clients)]
        wall_started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - wall_started
    finally:
        handle.stop()

    total = clients * per_client
    rps = total / wall if not errors else 0.0
    return {
        "latency_requests": latency_n,
        "latency_p50_ms": round(_serve_percentile(samples, 0.50) * 1e3, 3),
        "latency_p99_ms": round(_serve_percentile(samples, 0.99) * 1e3, 3),
        "throughput_clients": clients,
        "throughput_requests": total,
        "throughput_wall_s": round(wall, 3),
        "throughput_rps": round(rps, 1),
        "errors": errors,
        "sustains_200_rps": rps >= 200.0 and not errors,
        "notes": (
            "Response cache disabled (cache_size=0): every request is "
            "a real batch-tier execution.  Latency is sequential over "
            "one keep-alive connection, so p50 includes one full "
            "coalescing window (batch_window_ms=2); the concurrent "
            "fleet amortizes that window across its lanes."),
    }


def bench_audit(smoke: bool) -> dict:
    """The audit ledger's cost: serve p50/p99 and sweep wall, off vs on.

    Serve phase: two servers run concurrently — audit off and audit
    on (full sampling, ledger on disk) — with request bursts
    interleaved between them, cache disabled on both so every request
    both executes *and* appends.
    Sweep phase: a thread-pool sweep with and without ``audit=``
    (thread mode on both sides so the executor machinery is identical;
    a serial audit-off sweep would take the one-chunk-per-pair fast
    path and the comparison would measure scheduling, not ledgering).
    """
    import http.client
    import json as _json
    import tempfile

    from repro.flowchart.library import paper_figures
    from repro.obs.audit import load_ledger
    from repro.serve import ServerConfig, serve_in_thread
    from repro.verify.parallel import parallel_soundness_sweep

    # Each request costs ~3ms, so samples are cheap — and the effect
    # under measurement (tens of microseconds on a ~3ms p50) needs a
    # lot of them before the p50 estimate is tighter than the claim.
    latency_n = 300 if smoke else 1000
    burst = 10
    tmpdir = tempfile.mkdtemp(prefix="bench_audit_")

    # Both servers run concurrently and request bursts alternate
    # between them: the 3% effect under measurement is smaller than
    # the drift between two phases benchmarked tens of seconds apart,
    # but bursts interleaved on a sub-second cadence expose both arms
    # to the same machine conditions.  Two null experiments (both
    # arms audit-off) exposed two systematic biases this harness must
    # cancel: whichever arm is measured second within a burst pair
    # runs slower (hence the ABBA order), and whichever *server* was
    # created second runs slower (hence two phases with creation
    # order swapped, samples pooled per role).
    def one_request(conn, i: int) -> None:
        conn.request("POST", "/execute", body=_json.dumps(
            {"library": "max",
             "inputs": [i % 50, (i * 7 + 3) % 50]}),
            headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        payload = _json.loads(response.read())
        if response.status != 200 or payload["value"] is None:
            raise RuntimeError(f"request {i} failed: {payload}")

    off, on = [], []
    per_phase = latency_n // 2
    for phase in range(2):
        roles = [(None, off),
                 (os.path.join(tmpdir, f"serve_audit_{phase}.jsonl"), on)]
        if phase % 2:
            roles.reverse()
        handles = [serve_in_thread(ServerConfig(
            port=0, cache_size=0, audit_path=audit_path))
            for audit_path, _ in roles]
        try:
            arms = [(http.client.HTTPConnection(
                "127.0.0.1", handle.port, timeout=60), samples)
                for handle, (_, samples) in zip(handles, roles)]
            for conn, _ in arms:
                for i in range(20):
                    one_request(conn, i)
            for pair_index, start in enumerate(range(0, per_phase, burst)):
                ordered = arms if pair_index % 2 == 0 else arms[::-1]
                for conn, samples in ordered:
                    for i in range(start, min(start + burst, per_phase)):
                        started = time.perf_counter()
                        one_request(conn, i)
                        samples.append(time.perf_counter() - started)
            for conn, _ in arms:
                conn.close()
        finally:
            for handle in handles:
                handle.stop()

    off_p50 = _serve_percentile(off, 0.50)
    on_p50 = _serve_percentile(on, 0.50)
    serve_overhead_pct = (on_p50 - off_p50) / off_p50 * 100.0

    flowcharts = paper_figures()[:2 if smoke else 4]

    def sweep(audit_path):
        started = time.perf_counter()
        parallel_soundness_sweep(flowcharts, "surveillance",
                                 executor="thread", max_workers=2,
                                 chunk_size=64, audit=audit_path)
        return time.perf_counter() - started

    sweep_reps = 2 if smoke else 6
    sweep_path = os.path.join(tmpdir, "sweep_audit.jsonl")
    sweep_off = min(sweep(None) for _ in range(sweep_reps))
    sweep_on = min(sweep(sweep_path) for _ in range(sweep_reps))
    sweep_overhead_pct = (sweep_on - sweep_off) / sweep_off * 100.0
    # The relative number is dominated by how cheap the sweep itself
    # is (a couple of ms for the paper figures); the per-record cost
    # is the durable fact.
    sweep_records = len(load_ledger(sweep_path))
    sweep_us_per_record = ((sweep_on - sweep_off) / sweep_records * 1e6
                          if sweep_records else 0.0)

    return {
        "latency_requests": latency_n,
        "serve_off_p50_ms": round(off_p50 * 1e3, 3),
        "serve_on_p50_ms": round(on_p50 * 1e3, 3),
        "serve_off_p99_ms": round(_serve_percentile(off, 0.99) * 1e3, 3),
        "serve_on_p99_ms": round(_serve_percentile(on, 0.99) * 1e3, 3),
        "serve_overhead_pct": round(serve_overhead_pct, 2),
        "sweep_off_s": round(sweep_off, 4),
        "sweep_on_s": round(sweep_on, 4),
        "sweep_overhead_pct": round(sweep_overhead_pct, 2),
        "sweep_records": sweep_records,
        "sweep_us_per_record": round(sweep_us_per_record, 1),
        "audit_overhead_under_3pct": serve_overhead_pct < 3.0,
        "notes": (
            "Audited requests stage their canonically-serialized "
            "payload in memory; a periodic task chains, hashes, "
            "writes, and seals off the request path.  The serve "
            "comparison interleaves ABBA bursts between two "
            "concurrently running servers and repeats with creation "
            "order swapped, cancelling the two systematic biases null "
            "experiments exposed.  The sweep comparison holds "
            "executor machinery fixed (thread mode both sides) so "
            "the delta is ledgering, not scheduling; its relative "
            "overhead is large only because the paper-figure sweep "
            "itself is a few milliseconds."),
    }


def bench_distributed(smoke: bool) -> dict:
    """The multi-node runtime: serial vs distributed, clean and chaosed.

    A three-hop relay program runs serially (the reference row), then
    partitioned across OS processes over clean links, then under a
    seeded drop+dup+delay+kill schedule.  Every arm must produce the
    serial row bit-for-bit; the timings quantify what process spawn,
    message hops, and fault recovery cost on top of the serial run.
    """
    from repro.dist import run_distributed, serial_reference
    from repro.flowchart.parser import parse_program
    from repro.verify.chaos import FaultPlan

    source = """
    program relay3(x1, x2) {
        s := x1 + x2;
        send a(s);
        recv a(u);
        t := u * 2;
        send b(t);
        recv b(v);
        y := v + x1
    }
    """
    flowchart = parse_program(source).compile()
    inputs, allowed = (3, 4), (1, 2)
    reps = 1 if smoke else 3

    reference = serial_reference(flowchart, inputs, allowed)
    serial_s = time_callable(
        lambda: serial_reference(flowchart, inputs, allowed),
        reps, warmup=0)

    def run(nodes, plan=None):
        result = run_distributed(flowchart, inputs, allowed,
                                 nodes=nodes, plan=plan)
        timing = time_callable(
            lambda: run_distributed(flowchart, inputs, allowed,
                                    nodes=nodes, plan=plan),
            reps, warmup=0)
        return timing, result

    clean2_s, clean2 = run(2)
    clean3_s, clean3 = run(3)
    plan = FaultPlan(seed=1, msg_drop=0.3, msg_dup=0.2, msg_delay=0.3,
                     msg_delay_seconds=0.02, kill=0.08)
    chaos_s, chaosed = run(3, plan)

    rows_match = (clean2.row() == reference
                  and clean3.row() == reference
                  and chaosed.row() == reference)
    return {
        "flowchart": "relay3",
        "messages": clean3.messages_sent,
        "serial_s": serial_s,
        "dist_2node_s": clean2_s,
        "dist_3node_s": clean3_s,
        "chaos_3node_s": chaos_s,
        "chaos_plan": "seed=1,drop=0.3,dup=0.2,mdelay=0.3,"
                      "mdelay_s=0.02,kill=0.08",
        "chaos_crashes": chaosed.crashes,
        "chaos_recoveries": chaosed.recoveries,
        "chaos_messages_retried": chaosed.messages_retried,
        "rows_match_serial": rows_match,
        "notes": (
            "Distribution is a robustness feature, not a speedup: a "
            "single migrating control token keeps serial semantics by "
            "construction, so the distributed timings price process "
            "spawn, journal fsyncs, and message hops.  The chaosed arm "
            "additionally pays seeded retransmission backoff and "
            "journal-replay crash recovery, and still must reproduce "
            "the serial row bit-for-bit."),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: fewer reps, smaller program set")
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_PR10.json"),
                        help="output path (default: repo-root BENCH_PR10.json)")
    args = parser.parse_args(argv)

    repeats = 2 if args.smoke else 5
    started = time.perf_counter()

    micro = bench_micro_kernel(repeats)
    sweep = bench_soundness_sweep(repeats, args.smoke)
    # The lint-overhead claim is another cross-file min-statistic
    # comparison (vs BENCH_PR6's lint best), so it also needs enough
    # reps to reach the floor — and the micro kernel's interpreted
    # best as the machine-drift reference.
    interp_ref = micro["interpreted_s"]["best"]
    flowlint = bench_flowlint(max(repeats, 12), args.smoke,
                              interp_ref=interp_ref)
    per_program = bench_per_program(max(1, repeats - 1), args.smoke)
    # The telemetry claim compares best-of-N against a number recorded
    # in a different process run; a couple of smoke reps is too noisy
    # for a <3% assertion, so this section always gets enough reps
    # (best-of-N is a min statistic — the PR3 file itself shows ~6%
    # spread between two same-run measurements of this kernel, so N
    # must be large enough to reach the floor).
    telemetry = bench_telemetry(max(repeats, 16), interp_ref=interp_ref)
    # Same story for the guards claim: it compares against a number
    # recorded by a different process (BENCH_PR5), so it needs enough
    # reps to reach the min-statistic floor.
    guards = bench_guards(max(repeats, 16), interp_ref=interp_ref)
    # And for the batch 5x claim (vs the BENCH_PR5 sweep best).
    batch = bench_batch(max(repeats, 16))
    provenance = bench_provenance(max(2, repeats - 1))
    serving = bench_serving(args.smoke)
    audit = bench_audit(args.smoke)
    distributed = bench_distributed(args.smoke)

    claims = {
        "micro_speedup_at_least_3x": micro["speedup"] >= 3.0,
        "sweep_faster_than_seed": all(
            section["speedup_vs_seed"]["single_pass_compiled"] > 1.0
            for section in sweep["factories"].values()),
        "span_tree_single_rooted": provenance["span_roots"] == 1
        and provenance["span_problems"] == 0,
        "serve_sustains_200_rps": serving["sustains_200_rps"],
        "audit_overhead_under_3pct": audit["audit_overhead_under_3pct"],
        "distributed_rows_match_serial": distributed["rows_match_serial"],
    }
    if "noop_overhead_under_3pct" in telemetry:
        claims["telemetry_noop_overhead_under_3pct"] = (
            telemetry["noop_overhead_under_3pct"])
    if "noop_overhead_under_3pct_vs_pr5" in telemetry:
        claims["telemetry_noop_overhead_under_3pct_vs_pr5"] = (
            telemetry["noop_overhead_under_3pct_vs_pr5"])
    if "noop_overhead_under_3pct_vs_pr5" in guards:
        claims["guards_noop_overhead_under_3pct_vs_pr5"] = (
            guards["noop_overhead_under_3pct_vs_pr5"])
    if "sweep_speedup_at_least_5x_vs_pr5" in batch:
        claims["batch_sweep_speedup_at_least_5x_vs_pr5"] = (
            batch["sweep_speedup_at_least_5x_vs_pr5"])
    if "python_lanes_no_slower_than_compiled" in batch:
        claims["batch_python_no_slower_than_compiled"] = (
            batch["python_lanes_no_slower_than_compiled"])
    if "lint_overhead_under_10pct_vs_pr6" in flowlint:
        claims["flowlint_overhead_under_10pct_vs_pr6"] = (
            flowlint["lint_overhead_under_10pct_vs_pr6"])

    payload = {
        "meta": {
            "benchmark": ("PR10 robustness: distributed enforcement "
                          "over faulty typed channels"),
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
            "smoke": args.smoke,
            "total_wall_s": round(time.perf_counter() - started, 3),
        },
        "micro_sweep_kernel": micro,
        "soundness_sweep": sweep,
        "flowlint": flowlint,
        "per_program": per_program,
        "telemetry": telemetry,
        "guards": guards,
        "batch": batch,
        "provenance": provenance,
        "serving": serving,
        "audit": audit,
        "distributed": distributed,
        "claims": claims,
    }
    path = write_json(payload, args.out)

    print(f"wrote {path}")
    print(f"  micro kernel ({micro['flowchart']}, {micro['points']} pts): "
          f"{micro['speedup']}x compiled over interpreted")
    for factory_name, section in sweep["factories"].items():
        for variant, speedup in section["speedup_vs_seed"].items():
            print(f"  sweep[{factory_name}] {variant}: {speedup}x vs seed")
    print(f"  flowlint: {flowlint['pairs']} (program, policy) pairs in "
          f"{flowlint['lint_all_policies_s']['best']:.3f}s "
          f"({flowlint['lint_ms_per_pair']}ms/pair); precision harness "
          f"{flowlint['precision_harness_s']['best']:.3f}s")
    print(f"  telemetry: metrics-on overhead "
          f"{telemetry['metrics_overhead_pct']}%, traced "
          f"{telemetry['traced_overhead_pct']}%"
          + (f", no-op hooks vs PR1 baseline "
             f"{telemetry['noop_overhead_vs_pr1_pct']}%"
             if "noop_overhead_vs_pr1_pct" in telemetry else "")
          + (f", vs PR5 baseline "
             f"{telemetry['noop_overhead_vs_pr5_pct']}%"
             if "noop_overhead_vs_pr5_pct" in telemetry else ""))
    print(f"  guards: armed-cap overhead "
          f"{guards['armed_cap_overhead_pct']}% on the kernel, "
          f"{guards['sweep_armed_cap_overhead_pct']}% on the sweep"
          + (f", uncapped vs PR5 baseline "
             f"{guards['noop_overhead_vs_pr5_pct']}%"
             if "noop_overhead_vs_pr5_pct" in guards else ""))
    print("  batch: kernel "
          + ", ".join(f"{engine} {speedup}x"
                      for engine, speedup in batch["kernel_speedup"].items())
          + " vs compiled; sweep "
          + ", ".join(
              f"{engine} {speedup}x"
              for engine, speedup
              in batch["sweep_speedup_vs_compiled"].items())
          + " vs same-run compiled"
          + (f"; {batch['sweep_speedup_vs_pr5']}x vs PR5 sweep_uncapped"
             if "sweep_speedup_vs_pr5" in batch else ""))
    print(f"  provenance: --trace costs "
          f"{provenance['traced_overhead_pct']}%, --trace --explain "
          f"{provenance['explain_overhead_pct']}% on the serial sweep; "
          f"explain() {provenance['explain_call_s']['best'] * 1e6:.0f}us/"
          f"call, {provenance['trace_events_per_sweep']} events and "
          f"{provenance['explanations_per_sweep']} explanations per sweep")
    print(f"  serving: /execute p50 {serving['latency_p50_ms']}ms, "
          f"p99 {serving['latency_p99_ms']}ms; "
          f"{serving['throughput_rps']} req/s sustained across "
          f"{serving['throughput_clients']} clients")
    print(f"  audit: serve p50 {audit['serve_off_p50_ms']}ms off → "
          f"{audit['serve_on_p50_ms']}ms on "
          f"({audit['serve_overhead_pct']}%); sweep "
          f"{audit['sweep_off_s']}s → {audit['sweep_on_s']}s "
          f"({audit['sweep_us_per_record']}us per record, "
          f"{audit['sweep_records']} records)")
    print(f"  distributed: serial {distributed['serial_s']['best']:.4f}s, "
          f"3-node {distributed['dist_3node_s']['best']:.3f}s, chaosed "
          f"{distributed['chaos_3node_s']['best']:.3f}s "
          f"({distributed['chaos_crashes']} crashes, "
          f"{distributed['chaos_messages_retried']} retries); "
          f"rows match serial: {distributed['rows_match_serial']}")
    if not serving["sustains_200_rps"]:
        print("WARNING: served /execute throughput below the claimed "
              "200 req/s", file=sys.stderr)
    if not audit["audit_overhead_under_3pct"]:
        print("WARNING: audit-on serve p50 overhead above the claimed "
              "3% (noisy machine?)", file=sys.stderr)
    if telemetry.get("noop_overhead_under_3pct") is False:
        print("WARNING: disabled-hook overhead above the claimed 3% "
              "of the PR1 baseline (noisy machine?)", file=sys.stderr)
    if telemetry.get("noop_overhead_under_3pct_vs_pr5") is False:
        print("WARNING: disabled-hook overhead above the claimed 3% "
              "of the PR5 baseline (noisy machine?)", file=sys.stderr)
    if guards.get("noop_overhead_under_3pct_vs_pr5") is False:
        print("WARNING: uncapped guard overhead above the claimed 3% "
              "of the PR5 baseline (noisy machine?)", file=sys.stderr)
    if batch.get("sweep_speedup_at_least_5x_vs_pr5") is False:
        print("WARNING: batch sweep speedup below the claimed 5x over "
              "the PR5 sweep_uncapped baseline", file=sys.stderr)
    if batch.get("python_lanes_no_slower_than_compiled") is False:
        print("WARNING: pure-python batch lanes slower than the "
              "compiled per-point tier", file=sys.stderr)
    if not distributed["rows_match_serial"]:
        print("ERROR: a distributed run diverged from the serial row",
              file=sys.stderr)
        return 1
    if not payload["claims"]["micro_speedup_at_least_3x"] and not args.smoke:
        print("WARNING: micro kernel speedup below the claimed 3x",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
