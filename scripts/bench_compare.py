#!/usr/bin/env python3
"""Compare two BENCH_*.json files and fail on perf regressions.

Usage:
    python scripts/bench_compare.py BASELINE.json CURRENT.json \
        [--threshold 1.5] [--min-seconds 1e-3] [--json]

Walks both files for best-of-reps timing leaves (keys named ``best``
or ending in ``_best_s``), pairs the paths they have in common, and
reports the current/baseline ratio for each.  Exits 1 if any compared
ratio exceeds ``--threshold``.

The top-level ``claims`` blocks are diffed too: a claim key that was
``true`` in the baseline and is ``false`` in the current file is a
hard failure regardless of timings — a PR must not silently demote a
benchmark claim an earlier PR established.  (New claims appearing, or
a false claim turning true, are fine.)  ``--allow-demotion KEY``
waives one named demotion: the flip is still printed, but it no
longer fails the run.  The flag exists for *documented* historical
accidents — e.g. BENCH_PR5 records ``..._vs_pr3: false`` because that
claim's baseline was two PRs stale by the time PR5 measured it, a
fact PR5's own bench explains — and each use should cite its reason
where the flag is passed (the CI workflow does).

Noise floor: leaves faster than ``--min-seconds`` in the baseline are
reported but *not* gated.  Microsecond-scale per-program timings
bounce by 1.5x between otherwise-identical runs (measured across
BENCH_PR1 -> BENCH_PR3: sub-millisecond leaves drift up to 1.57x while
every leaf over 1 ms stays within 1.20x), so gating them would make
the CI smoke check flaky by construction.  The default floor of 1 ms
keeps the gate on the aggregate kernels, sweeps, and lint timings
where a regression is signal.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Tuple


def timing_leaves(node, path: str = "") -> Dict[str, float]:
    """All best-of-reps timing leaves, keyed by their /-joined path."""
    leaves: Dict[str, float] = {}
    if isinstance(node, dict):
        for key, value in node.items():
            child_path = f"{path}/{key}" if path else key
            if (isinstance(value, (int, float))
                    and not isinstance(value, bool)
                    and (key == "best" or key.endswith("_best_s"))):
                leaves[child_path] = float(value)
            else:
                leaves.update(timing_leaves(value, child_path))
    return leaves


def claims_regressions(baseline_doc, current_doc) -> List[Dict]:
    """Claim keys that were true in the baseline and false now.

    Reads the top-level ``claims`` objects (missing or malformed blocks
    compare as empty).  Only the true -> false direction fails: a claim
    the baseline never made, or one it made and the current file keeps,
    gates nothing.
    """
    baseline_claims = (baseline_doc.get("claims", {})
                       if isinstance(baseline_doc, dict) else {})
    current_claims = (current_doc.get("claims", {})
                      if isinstance(current_doc, dict) else {})
    if not isinstance(baseline_claims, dict):
        baseline_claims = {}
    if not isinstance(current_claims, dict):
        current_claims = {}
    regressed = []
    for key in sorted(baseline_claims):
        if (baseline_claims[key] is True and key in current_claims
                and current_claims[key] is False):
            regressed.append({"claim": key, "baseline": True,
                              "current": False})
    return regressed


def compare(baseline: Dict[str, float], current: Dict[str, float],
            threshold: float, min_seconds: float
            ) -> Tuple[List[Dict], List[Dict]]:
    """Pair common timing paths; return (all rows, gated regressions)."""
    rows: List[Dict] = []
    regressions: List[Dict] = []
    for path in sorted(set(baseline) & set(current)):
        base = baseline[path]
        cur = current[path]
        ratio = cur / base if base > 0 else float("inf")
        gated = base >= min_seconds
        row = {
            "path": path,
            "baseline_s": base,
            "current_s": cur,
            "ratio": round(ratio, 4),
            "gated": gated,
            "regressed": gated and ratio > threshold,
        }
        rows.append(row)
        if row["regressed"]:
            regressions.append(row)
    return rows, regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="diff two BENCH_*.json files; exit 1 past a "
                    "regression threshold")
    parser.add_argument("baseline", help="older BENCH_*.json")
    parser.add_argument("current", help="newer BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=1.5,
                        help="max allowed current/baseline ratio "
                             "(default 1.5)")
    parser.add_argument("--min-seconds", type=float, default=1e-3,
                        help="baseline leaves faster than this are "
                             "reported but not gated (default 1e-3; "
                             "sub-ms timings are noise)")
    parser.add_argument("--json", action="store_true",
                        help="machine-readable comparison on stdout")
    parser.add_argument("--allow-demotion", action="append", default=[],
                        metavar="KEY",
                        help="claim key whose true -> false flip is "
                             "reported but does not fail the run; "
                             "repeatable, for documented historical "
                             "accidents only")
    args = parser.parse_args(argv)

    with open(args.baseline, encoding="utf-8") as handle:
        baseline_doc = json.load(handle)
    with open(args.current, encoding="utf-8") as handle:
        current_doc = json.load(handle)
    baseline = timing_leaves(baseline_doc)
    current = timing_leaves(current_doc)

    rows, regressions = compare(baseline, current,
                                args.threshold, args.min_seconds)
    all_demoted = claims_regressions(baseline_doc, current_doc)
    waived = [entry for entry in all_demoted
              if entry["claim"] in args.allow_demotion]
    demoted = [entry for entry in all_demoted if entry not in waived]
    if not rows:
        print(f"no timing leaves in common between {args.baseline} and "
              f"{args.current}", file=sys.stderr)
        return 2

    if args.json:
        print(json.dumps({
            "baseline": args.baseline,
            "current": args.current,
            "threshold": args.threshold,
            "min_seconds": args.min_seconds,
            "compared": len(rows),
            "gated": sum(1 for row in rows if row["gated"]),
            "regressions": len(regressions),
            "claim_regressions": demoted,
            "claim_demotions_waived": waived,
            "rows": rows,
        }, indent=2, sort_keys=True))
    else:
        width = max(len(row["path"]) for row in rows)
        print(f"bench compare: {args.baseline} -> {args.current} "
              f"(threshold {args.threshold}x, floor {args.min_seconds}s)")
        for row in rows:
            marker = ("REGRESSED" if row["regressed"]
                      else "ok" if row["gated"] else "noise")
            print(f"  {row['path']:<{width}}  "
                  f"{row['baseline_s']:.6f}s -> {row['current_s']:.6f}s  "
                  f"x{row['ratio']:<8} {marker}")
        gated = sum(1 for row in rows if row["gated"])
        print(f"{len(rows)} common leaves, {gated} gated, "
              f"{len(regressions)} regression(s)")

    for entry in waived:
        print(f"claim demotion waived: {entry['claim']} was true in "
              f"{args.baseline} and is false in {args.current} "
              "(--allow-demotion)", file=sys.stderr)
    for entry in demoted:
        print(f"CLAIM REGRESSED: {entry['claim']} was true in "
              f"{args.baseline} but is false in {args.current}",
              file=sys.stderr)

    return 1 if regressions or demoted else 0


if __name__ == "__main__":
    sys.exit(main())
