#!/usr/bin/env bash
# Regenerate every reproduction artifact: tests, experiment benches, and
# the reproduced tables (benchmarks/results/summary.txt).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== installing (offline-safe) =="
python setup.py develop >/dev/null 2>&1 || pip install -e . >/dev/null

echo "== test suite =="
pytest tests/ 2>&1 | tee test_output.txt | tail -2

echo "== experiment benches (E01-E27 + micro) =="
pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt | tail -2

echo "== reproduced tables =="
echo "   benchmarks/results/summary.txt ($(grep -c '^E' benchmarks/results/summary.txt 2>/dev/null || echo '?') tables)"
echo "done."
