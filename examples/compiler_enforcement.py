#!/usr/bin/env python3
"""Compile-time enforcement: certification, transforms, per-policy builds.

Section 5's deployment model: the policy is known at compile time, so
enforcement can be static — certify the program, or transform it until
a (residual) mechanism certifies.  "A different compilation would be
required for each different security policy."

This script compiles one program for every allow(...) policy and shows
which compilations run check-free, which carry a residual runtime test,
and which are rejected outright — including the transforms' role
(Examples 7, 8, 9).

Run:  python examples/compiler_enforcement.py
"""

from repro.core import ProductDomain
from repro.flowchart.expr import Const, var
from repro.flowchart.structured import Assign, If, StructuredProgram
from repro.staticflow import analyse, certify, compile_per_policy
from repro.verify import all_allow_policies

GRID = ProductDomain.integer_grid(0, 2, 2)


def show_compilations(program):
    print(f"\n== compiling {program.name!r} for every policy")
    analysis = analyse(program)
    label = sorted(analysis.output_label(program))
    print(f"   static flow analysis: y depends on inputs {label}")
    outcomes = compile_per_policy(program, all_allow_policies(2), GRID)
    for policy_name, outcome in outcomes.items():
        accepted = len(outcome.mechanism.acceptance_set())
        if outcome.certificate.certified:
            mode = "certified: runs unmodified, zero runtime checks"
        elif accepted == len(GRID):
            mode = f"rescued by the {outcome.transform_used} transform"
        elif accepted > 0:
            mode = (f"residual mechanism via {outcome.transform_used}: "
                    f"accepts {accepted}/{len(GRID)} runs")
        else:
            mode = "rejected: pull the plug"
        print(f"   {policy_name:12s} -> {mode}")


def main():
    # Example 9's program: the transforming compiler finds the
    # duplication rewrite for allow(1).
    example9 = StructuredProgram(
        ["x1", "x2"],
        [If(var("x1").eq(0), [Assign("y", Const(0))],
            [Assign("y", var("x2"))])],
        name="example9")
    show_compilations(example9)

    # The page-49 constant-1 program: structured certification restores
    # the PC label at the join, so it certifies where flowchart
    # surveillance fails (compare experiment E07).
    reconvergence = StructuredProgram(
        ["x1", "x2"],
        [If(var("x1").eq(1), [Assign("r", Const(1))],
            [Assign("r", Const(2))]),
         Assign("y", Const(1))],
        name="reconvergence")
    show_compilations(reconvergence)

    # A program nothing can save for allow(1): y *is* x2.
    hopeless = StructuredProgram(["x1", "x2"], [Assign("y", var("x2"))],
                                 name="copy-x2")
    show_compilations(hopeless)

    print("\n(Theorem 4 reminder: no compiler can always find the maximal"
          " mechanism —")
    print(" the transform search is a heuristic, and must be.)")


if __name__ == "__main__":
    main()
