#!/usr/bin/env python3
"""Provenance-grade audit traces: spans, explanations, analytics.

The surveillance mechanism (Section 3) rejects a run when disallowed
input indices could have influenced what the user observes.  This
walkthrough turns that verdict into an audit trail:

1. ask *why* a single point was rejected (`obs.explain`);
2. get the same answer statically, without a point (`explain_static`);
3. run a traced sweep whose violations carry provenance and whose work
   is covered by hierarchical spans;
4. analyze the trace offline — summary, span tree, influence chains.

Run:  PYTHONPATH=src python examples/provenance_audit.py
"""

from repro import obs
from repro.core import allow
from repro.flowchart import library
from repro.verify import parallel_soundness_sweep


def main():
    flowchart = library.mixer_program()   # y := (x1 + x2) * 2
    policy = allow(1, arity=2)            # the user may learn x1 only

    # -- 1. Why was this point rejected? --------------------------------
    # The chain walks the offending indices from the inputs that
    # introduced them to the halt check that tested them against J.
    explanation = obs.explain(flowchart, policy, (1, 2))
    print(explanation.render())

    # -- 2. The same question, statically -------------------------------
    # flowlint's influence fixpoint justifies the rejection with no
    # concrete point at all: these are the sites that *may* carry x2.
    print()
    print(obs.explain_static(flowchart, policy).render())

    # -- 3. A traced sweep with provenance and spans --------------------
    # explain=True makes every mechanism rejection emit an
    # `explanation` event; tracing wraps the sweep in a span tree
    # (sweep > pair > chunk > point), reconstructable across a process
    # pool because span ids are pid-prefixed.
    ring = obs.RingBufferSink(capacity=65536)
    with obs.observed(sinks=[ring], reset=True, explain=True):
        parallel_soundness_sweep(
            [library.forgetting_program(), library.mixer_program()],
            "surveillance", executor="thread", max_workers=2)
    events = ring.events()

    # -- 4. Offline analytics over the captured trace -------------------
    summary = obs.summarize(events)
    print()
    print(f"trace: {summary['events']} events, "
          f"{summary['spans']['total']} spans, "
          f"{summary['spans']['roots']} root(s), "
          f"{summary['violations']} violations, "
          f"{summary['points_evaluated']} points "
          f"({summary['points_accepted']} accepted)")

    forest = obs.build_span_tree(events)
    assert forest.single_rooted and not forest.problems
    print()
    print(obs.render_tree(forest, max_children=2))

    print()
    for row in obs.slowest_spans(events, top=3):
        print(f"slowest: {row['op']:<6} {row['elapsed_s']:.6f}s "
              f"{row.get('program', '')}")

    # Recover the chain from step 1 out of the trace — the audit file
    # answers the same question the live API did.
    records = obs.find_explanations(events, point=[1, 2],
                                    program=flowchart.name)
    wanted = [record for record in records
              if record["policy"] == policy.name]
    print()
    print("recovered from the trace:")
    print(obs.render_explanation_event(wanted[0]))

    live = obs.explain(flowchart, policy, (1, 2))
    assert wanted[0]["chain"] == [step.to_dict() for step in live.chain]
    print()
    print("trace chain == live chain: audit trail verified")


if __name__ == "__main__":
    main()
