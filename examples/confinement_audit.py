#!/usr/bin/env python3
"""Auditing a file system's monitors for confinement (Examples 2, 4, 6).

Scenario: a small multi-user file system where each directory records
whether the current user may read its file.  Three candidate reference
monitors guard READFILE; the audit decides, for the paper's
content-dependent policy, which monitors are sound — and for the leaky
ones, *what* their violation notices reveal.

Run:  python examples/confinement_audit.py
"""

from repro.core import (check_soundness, distinguishable_pairs,
                        max_leaked_bits, program_as_mechanism)
from repro.channels.inference import analyse_notice_channel
from repro.filesystem import (content_leaking_monitor,
                              decision_leaking_monitor,
                              directory_gated_policy, filesystem_domain,
                              query_budget_policy, read_file_program,
                              reference_monitor, search_program,
                              sum_readable_program)


def audit(mechanism, policy):
    report = check_soundness(mechanism, policy)
    bits = max_leaked_bits(mechanism, policy)
    print(f"\n== {mechanism.name}")
    print(f"   sound: {report.sound}   worst-case leak: {bits:.2f} bits")
    if not report.sound:
        witness = report.witness
        print(f"   witness: states {witness.first} and {witness.second}")
        print(f"            look identical under the policy, but the "
              f"monitor answers")
        print(f"            {witness.first_output!r} vs "
              f"{witness.second_output!r}")
        channel = analyse_notice_channel(mechanism, policy)
        print(f"   notice channel: warns on {channel.notice_inputs} states,"
              f" quiet on {channel.quiet_inputs}")


def main():
    file_count = 2
    domain = filesystem_domain(file_count, 0, 2)
    policy = directory_gated_policy(file_count)
    readfile = read_file_program(1, file_count, domain)

    print(f"file system: {file_count} files, {len(domain)} states")
    print(f"policy: {policy.name} — a file is visible iff its directory"
          " grants")

    # The sound monitor, and Example 4's two leaky ones.
    audit(reference_monitor(readfile, 1), policy)
    audit(content_leaking_monitor(readfile, 1), policy)
    audit(decision_leaking_monitor(readfile, 1, threshold=1), policy)

    # Example 6's lesson: blocking READFILE is not information control.
    # SEARCH never calls READFILE yet reveals denied content.
    print("\n== SEARCH(needle) — access control vs information control")
    search = search_program(2, file_count, domain)
    report = check_soundness(program_as_mechanism(search), policy)
    print(f"   SEARCH sound for the gated policy: {report.sound}")
    leaks = list(distinguishable_pairs(program_as_mechanism(search),
                                       policy, limit=1))
    print(f"   e.g. {leaks[0].first} vs {leaks[0].second}: SEARCH answers "
          f"{leaks[0].first_output} vs {leaks[0].second_output}")

    # An aggregate that is fine: it only combines granted files.
    print("\n== SUM-READABLE — a content-dependent program that is sound")
    total = sum_readable_program(file_count, domain)
    print(f"   sound: "
          f"{check_soundness(program_as_mechanism(total), policy).sound}")

    # History-dependent policies (the paper's database remark).
    print("\n== query-budget sessions (history-dependent policy)")
    history = query_budget_policy(file_count, budget=1)
    session = history.session(2)
    state = ("YES", "NO", 1, 2)
    print(f"   two identical queries, budget 1: "
          f"{session(*(state + state))}")


if __name__ == "__main__":
    main()
