#!/usr/bin/env python3
"""Example 6, live: a capability system that blocks READFILE and leaks anyway.

A process is granted `read`+`stat` on its own object and — generously —
`stat` on a secret object, "because stat only shows metadata".  The
capability monitor enforces the access policy perfectly: READFILE on
the secret is refused every time.  The information policy, however...

Run:  python examples/capability_audit.py
"""

from repro.capability import (Capability, CList, ReadOp, Script, StatOp,
                              SumOp, capability_monitor,
                              information_audit, intended_policy)
from repro.core import check_soundness

OBJECTS = ("public", "secret")


def show_audit(script, clist):
    audit = information_audit(script, clist, OBJECTS)
    runs = "runs" if audit["access_granted"] else "BLOCKED"
    sound = "sound" if audit["sound"] else "LEAKS"
    escapes = (f" — contents of {audit['escaping_objects']} escape"
               if audit["escaping_objects"] else "")
    print(f"   {script.name:22s} {runs:8s} {sound}{escapes}")


def main():
    clist = CList([
        Capability("public", ["read", "stat"]),
        Capability("secret", ["stat"]),   # "just metadata"...
    ])
    print(f"C-list: {clist}")
    policy = intended_policy(clist, OBJECTS)
    print(f"intended information policy: {policy.name}"
          " (read rights only)\n")

    print("audit under the generous C-list:")
    show_audit(Script([ReadOp("secret")], name="READFILE(secret)"), clist)
    show_audit(Script([ReadOp("public")], name="READFILE(public)"), clist)
    show_audit(Script([StatOp("secret")], name="STAT(secret)"), clist)
    show_audit(Script([SumOp(["public", "secret"])], name="SUM(pub,sec)"),
               clist)

    print("\nExample 6's lesson: the monitor enforced the *access* policy"
          " flawlessly —")
    print("READFILE(secret) never ran — yet STAT and SUM are 'sequences of"
          " operations")
    print("excluding READFILE that have the same effect'.\n")

    tightened = clist.restrict("secret", ["stat"])
    print(f"tightened C-list: {tightened}")
    print("audit after revoking stat on the secret:")
    for script in (Script([StatOp("secret")], name="STAT(secret)"),
                   Script([SumOp(["public", "secret"])],
                          name="SUM(pub,sec)"),
                   Script([ReadOp("public")], name="READFILE(public)")):
        show_audit(script, tightened)

    print("\nformal check: the tightened monitor factors through the"
          " intended policy:")
    script = Script([StatOp("secret")], name="STAT(secret)")
    monitor = capability_monitor(script, tightened, OBJECTS)
    report = check_soundness(monitor, intended_policy(tightened, OBJECTS))
    print(f"   sound: {report.sound}")


if __name__ == "__main__":
    main()
