#!/usr/bin/env python3
"""History-dependent policies: a query-budgeted database session.

Section 2 notes that real policies can depend "upon a history of the
user's previous queries".  This script runs a two-query session against
the Example 2 file store under a budget policy, then demonstrates the
stateful trap: a gatekeeper whose lockout is triggered by *secret
content* turns its own refusals into a covert channel — across queries.

Run:  python examples/database_sessions.py
"""

from repro.core import (SecurityPolicy, budget_gatekeeper, check_soundness,
                        content_triggered_gatekeeper, is_violation, unroll)
from repro.filesystem import (filesystem_domain, read_file_program,
                              reference_monitor)

DOMAIN = filesystem_domain(1, 0, 1)          # one (directory, file) pair
PER_QUERY = read_file_program(1, 1, DOMAIN)  # READFILE(1)
MONITOR = reference_monitor(PER_QUERY, 1)


def drive_session(gatekeeper, queries):
    state = gatekeeper.initial_state
    print(f"   session with {gatekeeper.name}:")
    for query in queries:
        output, state = gatekeeper.answer_query(state, query)
        rendered = (f"notice: {output}" if is_violation(output)
                    else f"answer: {output}")
        print(f"     query {query} -> {rendered}")
    print()


def gated_session_policy(length, budget):
    def filter_fn(*flat):
        outputs = []
        for query_index in range(length):
            directory, content = flat[2 * query_index:2 * query_index + 2]
            if query_index < budget:
                outputs.append((directory,
                                content if directory == "YES" else None))
            else:
                outputs.append("exhausted")
        return tuple(outputs)

    return SecurityPolicy(filter_fn, 2 * length,
                          name=f"I-gated-budget[{budget}]")


def main():
    print("== the budget gatekeeper (refusals keyed on query count)")
    gate = budget_gatekeeper(MONITOR, budget=1)
    drive_session(gate, [("YES", 1), ("YES", 0)])

    unrolled = unroll(gate, PER_QUERY, length=2)
    policy = gated_session_policy(2, 1)
    report = check_soundness(unrolled, policy)
    print(f"   unrolled over all {len(unrolled.domain)} two-query"
          f" sessions: sound = {report.sound}\n")

    print("== the tripwire gatekeeper (lockout keyed on secret content)")
    tripwire = content_triggered_gatekeeper(
        MONITOR, trip=lambda directory, content: content == 1)
    drive_session(tripwire, [("NO", 1), ("YES", 0)])
    drive_session(tripwire, [("NO", 0), ("YES", 0)])
    print("   same policy view for both sessions (the denied file is"
          " filtered),")
    print("   different answers to query 2 — the lockout *is* the leak.\n")

    unrolled_trip = unroll(tripwire, PER_QUERY, length=2)
    report = check_soundness(unrolled_trip, gated_session_policy(2, 2))
    print(f"   unrolled: sound = {report.sound}")
    print(f"   witness:  {report.witness}")


if __name__ == "__main__":
    main()
