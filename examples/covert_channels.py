#!/usr/bin/env python3
"""The Observability Postulate in action: three covert channels.

Section 2's message is that *forgotten observables leak*.  This script
mounts the paper's three attacks:

1. the timing channel of a constant function (recover x from steps),
2. the one-way tape (sequential reads leak len(z1); tab(i) fixes it),
3. the password page-boundary attack (work factor n^k -> n*k).

Run:  python examples/covert_channels.py
"""

from repro.core import (allow, allow_none, check_soundness,
                        program_as_mechanism, ProductDomain)
from repro.channels.password import (brute_force_attack, logon_leak_bits,
                                     page_boundary_attack)
from repro.channels.tape import (per_cell_tab_reader, sequential_reader,
                                 tab_reader)
from repro.channels.timing import step_count_table, timing_attack
from repro.flowchart.interpreter import execute
from repro.flowchart.library import timing_loop


def demo_timing():
    print("== 1. The timing channel (Section 2's while-loop program)")
    flowchart = timing_loop()
    domain = ProductDomain.integer_grid(0, 15, 1)
    print("   Q(x) = 1 for every x — the *value* says nothing.")
    secret = 11
    observed = execute(flowchart, (secret,)).steps
    print(f"   ...but running the program on a secret x took {observed}"
          " steps.")
    recovered = timing_attack(flowchart, domain, observed)
    print(f"   inverting the step count: x = {recovered[0][0]}"
          f" (actual secret: {secret})")
    codebook = step_count_table(flowchart, domain)
    print(f"   the attacker's codebook has {len(set(codebook.values()))}"
          f" distinct times for {len(domain)} inputs — full recovery")
    from repro.channels.timing import quantized_leak_bits

    print("   with a coarser clock the channel degrades:")
    for quantum in (1, 4, 16, 64):
        bits = quantized_leak_bits(flowchart, domain, quantum)
        print(f"     clock quantum {quantum:3d} -> {bits:.2f} bits")
    print()


def demo_tape():
    print("== 2. The one-way tape and tab(i)")
    policy = allow(2, arity=2)
    for reader, label in (
            (sequential_reader(2, 2), "sequential read of z2"),
            (tab_reader(2, 2), "tab(2) in constant time"),
            (per_cell_tab_reader(2, 2), "tab(2) costing per skipped cell")):
        sound = check_soundness(program_as_mechanism(reader), policy).sound
        print(f"   {label:38s} sound for allow(2): {sound}")
    reader = sequential_reader(2, 2)
    _, t_short = reader((1,), (1, 0))
    _, t_long = reader((1, 1), (1, 0))
    print(f"   (same z2, different z1: {t_short} vs {t_long} steps —"
          " len(z1) is in the time)\n")


def demo_password():
    print("== 3. The password work factor (n^k vs n*k)")
    print(f"   logon is unsound but leaks only "
          f"{logon_leak_bits(['alice'], ['p', 'q']):.0f} bit/query"
          " (Example 5)\n")
    alphabet = [chr(ord('a') + i) for i in range(8)]
    secret = "fed"
    brute = brute_force_attack(secret, alphabet)
    paged = page_boundary_attack(secret, alphabet)
    n, k = len(alphabet), len(secret)
    print(f"   alphabet n = {n}, length k = {k}")
    print(f"   brute force:        {brute.guesses} guesses"
          f" (bound n^k = {n ** k})")
    print(f"   page-boundary atk:  {paged.guesses} guesses"
          f" (bound n*k = {n * k})")
    print(f"   recovered: {paged.recovered!r} — work factor cut by"
          f" {brute.guesses // paged.guesses}x")


def main():
    demo_timing()
    demo_tape()
    demo_password()


if __name__ == "__main__":
    main()
