#!/usr/bin/env python3
"""Quickstart: the paper's core concepts in ~5 minutes.

Walks the Section 2 pipeline end to end on the paper's own programs:
define a program, pick a policy, build mechanisms, decide soundness,
compare completeness, take unions, and construct the maximal mechanism.

Run:  python examples/quickstart.py
"""

from repro import (ProductDomain, allow, check_soundness, compare,
                   maximal_mechanism, null_mechanism, program_as_mechanism,
                   surveillance_mechanism, union)
from repro.core import mechanism_from_table
from repro.flowchart import library
from repro.flowchart.interpreter import as_program


def main():
    # -- 1. A program is a total function Q : D1 x ... x Dk -> E --------
    # The page-48 flowchart:  y := x1; if x2 = 0 then y := 0
    flowchart = library.forgetting_program()
    print(flowchart.pretty())

    domain = ProductDomain.integer_grid(0, 3, 2)
    q = as_program(flowchart, domain)
    print(f"\nQ(5-ish inputs): Q(1, 0) = {q(1, 0)}, Q(1, 2) = {q(1, 2)}")

    # -- 2. A policy is an information filter ---------------------------
    # allow(2): the user may learn x2 and *nothing* about x1.
    policy = allow(2, arity=2)
    print(f"\npolicy {policy.name}: I(1, 0) = {policy(1, 0)}")

    # -- 3. Mechanisms are gatekeepers -----------------------------------
    own = program_as_mechanism(q)          # "no protection at all"
    plug = null_mechanism(q)               # "pulling the plug"
    surveillance = surveillance_mechanism(flowchart, policy, domain,
                                          program=q)

    # -- 4. Soundness = factoring through the policy ---------------------
    for mechanism in (own, plug, surveillance):
        report = check_soundness(mechanism, policy)
        verdict = "sound" if report.sound else f"UNSOUND ({report.witness})"
        accepted = len(mechanism.acceptance_set())
        print(f"{mechanism.name:30s} {verdict:12s} accepts {accepted}"
              f"/{len(domain)}")

    # -- 5. Completeness orders sound mechanisms -------------------------
    comparison = compare(surveillance, plug)
    print(f"\nsurveillance vs plug-puller: {comparison.order}"
          f" (|A| = {comparison.first_accepts} vs"
          f" {comparison.second_accepts})")

    # -- 6. Theorem 1: union --------------------------------------------
    partial = mechanism_from_table(
        q, {point: q(*point) for point in domain if point[1] == 0},
        name="M-by-hand")
    joined = union(surveillance, partial)
    print(f"union accepts {len(joined.acceptance_set())} inputs, sound:"
          f" {check_soundness(joined, policy).sound}")

    # -- 7. Theorem 2: the maximal mechanism ------------------------------
    construction = maximal_mechanism(q, policy)
    print(f"maximal mechanism accepts"
          f" {len(construction.mechanism.acceptance_set())}/{len(domain)}"
          f" ({construction.constant_classes} constant policy classes,"
          f" {construction.evaluations} program evaluations)")


if __name__ == "__main__":
    main()
