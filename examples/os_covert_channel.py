#!/usr/bin/env python3
"""A confined process exfiltrates a secret through the page pool.

Section 2's remark — "information can be passed via resource usage
patterns" — staged on the miniature OS in :mod:`repro.osched`:

- a *sender* process holds a 6-bit secret; it has no file, pipe, or
  message channel to anyone;
- a *receiver* process merely tries to allocate memory each scheduler
  round and notes whether it succeeded;
- under a shared page pool the receiver decodes the secret exactly;
- giving every process a fixed quota closes the channel — the identical
  sender/receiver pair learns nothing.

Run:  python examples/os_covert_channel.py
"""

from repro.core import allow_none, check_soundness, program_as_mechanism
from repro.osched import (channel_report, decode, run_transmission,
                          secret_to_bits, system_program)


def show_transmission(secret: int, width: int, partitioned: bool) -> None:
    discipline = "partitioned (quota)" if partitioned else "shared pool"
    observations = run_transmission(secret, width, partitioned)
    bits = secret_to_bits(secret, width)
    print(f"   [{discipline}]")
    print(f"   sender's bits:          {bits}")
    print(f"   receiver's allocations: {observations}"
          "   (1 = probe succeeded)")
    if not partitioned:
        print(f"   decoded secret:         {decode(observations)}"
              f" (actual: {secret})")
    else:
        print("   decoded secret:         — observations carry nothing")
    print()


def main():
    secret, width = 0b101101, 6
    print(f"secret: {secret} = {secret:0{width}b}\n")
    show_transmission(secret, width, partitioned=False)
    show_transmission(secret, width, partitioned=True)

    print("formal verdicts (the OS as a protection mechanism):")
    for partitioned in (False, True):
        q = system_program(width=4, partitioned=partitioned)
        sound = check_soundness(program_as_mechanism(q),
                                allow_none(1)).sound
        print(f"   {q.name:24s} sound for allow(): {sound}")

    print("\nchannel capacity sweep (also bench E22):")
    for row in channel_report(width=4):
        print(f"   {row['discipline']:12s} leaks {row['leaked_bits']:.0f}"
              f" of {row['secret_bits']} bits; exact recovery:"
              f" {row['exact_recovery']}")

    print("\nwith a noisy neighbour holding 2 pages:")
    for row in channel_report(width=3, noise_working_set=2):
        print(f"   {row['discipline']:12s} leaks {row['leaked_bits']:.0f}"
              f" of {row['secret_bits']} bits")


if __name__ == "__main__":
    main()
