#!/usr/bin/env python3
"""One source program, two enforcement machines (Section 6's generality).

The same structured program is enforced twice:

1. as a flowchart under the surveillance mechanism of Section 3;
2. compiled to Fenton's data-mark Minsky machine (Example 1's model)
   and enforced by its marks.

Both are judged by the *same* soundness checker against the *same*
policy — the paper's claim that its framework "is not biased toward any
particular solution for providing security", demonstrated.  Along the
way: the compiler's three mark disciplines, including the one that is
quietly unsound.

Run:  python examples/cross_model_enforcement.py
"""

from repro.core import ProductDomain, allow, check_soundness
from repro.flowchart.parser import parse_program
from repro.minsky.fcompile import Discipline, compile_to_fenton
from repro.minsky.fenton import fenton_mechanism
from repro.surveillance import surveillance_mechanism

GRID = ProductDomain.integer_grid(0, 3, 2)
POLICY = allow(2, arity=2)   # x1 is secret everywhere below

SOURCE = """
program guarded_copy(x1, x2) {
    if x2 == 0 { y := x1 } else { y := 0 }
}
"""


def report(label, mechanism):
    verdict = check_soundness(mechanism, POLICY)
    accepted = len(mechanism.acceptance_set())
    flag = "sound" if verdict.sound else "UNSOUND"
    print(f"   {label:28s} {flag:8s} accepts {accepted}/{len(GRID)}")
    if not verdict.sound:
        print(f"      witness: {verdict.witness}")


def main():
    program = parse_program(SOURCE)
    print("source program:")
    print(SOURCE)
    print(f"policy: {POLICY.name} (x1 denied)\n")

    print("== model 1: flowchart + surveillance (Section 3)")
    surveillance = surveillance_mechanism(program.compile(), POLICY, GRID)
    report("surveillance", surveillance)

    print("\n== model 2: compiled to Fenton's data-mark machine (Example 1)")
    for discipline in Discipline:
        machine, registers = compile_to_fenton(program,
                                               discipline=discipline)
        mechanism = fenton_mechanism(machine, GRID,
                                     priv_registers=[registers["x1"]],
                                     check_output_mark=True)
        report(f"fenton / {discipline}", mechanism)

    print("""
The JOIN discipline restores the PC mark at loop joins but skips
Fenton's pre-marking of the region's write set — so a loop whose trip
count is secret exits with clean marks on the zero-trip path.  The
absence of a mark is the leak: the machine-level twin of the paper's
Example 1 critique of the halt statement.""")

    print("== where the models differ: a reconvergent branch")
    reconvergent = parse_program("""
        program reconvergent(x1, x2) {
            if x1 == 0 { r := 1 } else { r := 2 };
            y := x2
        }
    """)
    surveillance = surveillance_mechanism(reconvergent.compile(), POLICY,
                                          GRID)
    report("surveillance", surveillance)
    machine, registers = compile_to_fenton(reconvergent,
                                           discipline=Discipline.PREMARK)
    mechanism = fenton_mechanism(machine, GRID,
                                 priv_registers=[registers["x1"]],
                                 check_output_mark=True)
    report("fenton / premark", mechanism)
    print("""
Fenton's join restoration forgets the branch on x1 once the arms
reconverge — the dynamic twin of the static certifier's PC-label
restoration (compare experiments E07 and E18) — so the compiled
machine accepts runs the flowchart surveillance mechanism rejects.""")


if __name__ == "__main__":
    main()
